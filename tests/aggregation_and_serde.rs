//! Data-integration pipeline (site aggregation) and serialization
//! round-trips of the shared artefacts.

use hlm_corpus::aggregate::aggregate_sites;
use hlm_corpus::{Corpus, Month};
use hlm_datagen::{generate_sites, GeneratorConfig};
use hlm_tests::{quick_lda, test_corpus};

#[test]
fn site_roll_up_preserves_the_union_of_products() {
    let cfg = GeneratorConfig::with_size_and_seed(100, 41);
    let (vocab, sites) = generate_sites(&cfg);
    // Union of products over a parent's sites == aggregated install base.
    let mut union: std::collections::HashMap<u64, std::collections::BTreeSet<u16>> =
        std::collections::HashMap::new();
    for s in &sites {
        let e = union.entry(s.domestic_parent_duns).or_default();
        for ev in &s.events {
            e.insert(ev.product.0);
        }
    }
    let corpus = aggregate_sites(vocab, sites);
    for company in corpus.companies() {
        let expect = &union[&company.duns];
        let got: std::collections::BTreeSet<u16> =
            company.product_set().into_iter().map(|p| p.0).collect();
        assert_eq!(&got, expect, "company {}", company.duns);
    }
}

#[test]
fn aggregated_first_seen_is_min_across_sites() {
    let cfg = GeneratorConfig::with_size_and_seed(80, 42);
    let (vocab, sites) = generate_sites(&cfg);
    let mut min_seen: std::collections::HashMap<(u64, u16), Month> =
        std::collections::HashMap::new();
    for s in &sites {
        for ev in &s.events {
            let key = (s.domestic_parent_duns, ev.product.0);
            min_seen
                .entry(key)
                .and_modify(|m| *m = (*m).min(ev.first_seen))
                .or_insert(ev.first_seen);
        }
    }
    let corpus = aggregate_sites(vocab, sites);
    for company in corpus.companies() {
        for ev in company.events() {
            assert_eq!(ev.first_seen, min_seen[&(company.duns, ev.product.0)]);
        }
    }
}

#[test]
fn corpus_round_trips_through_json() {
    let corpus = test_corpus(50, 43);
    let json = serde_json::to_string(&corpus).expect("serialize corpus");
    let mut back: Corpus = serde_json::from_str(&json).expect("deserialize corpus");
    // The vocabulary index is rebuilt lazily after deserialization.
    assert_eq!(back.len(), corpus.len());
    for (a, b) in corpus.companies().iter().zip(back.companies()) {
        assert_eq!(a.product_set(), b.product_set());
        assert_eq!(a.industry, b.industry);
        assert_eq!(a.employees, b.employees);
    }
    // Vocabulary lookups work after an index rebuild.
    let vocab_names: Vec<String> = corpus.vocab().iter().map(|(_, n)| n.to_string()).collect();
    let mut vocab = back.vocab().clone();
    vocab.rebuild_index();
    for n in &vocab_names {
        assert!(vocab.id(n).is_some(), "lookup of {n} after round-trip");
    }
    let _ = &mut back;
}

#[test]
fn lda_model_round_trips_through_json() {
    let corpus = test_corpus(120, 44);
    let ids: Vec<_> = corpus.ids().collect();
    let (model, docs) = quick_lda(&corpus, &ids, 3);
    let json = serde_json::to_string(&model).expect("serialize model");
    let back: hlm_lda::LdaModel = serde_json::from_str(&json).expect("deserialize model");
    assert_eq!(back.phi(), model.phi());
    // Inference agrees exactly.
    assert_eq!(back.infer_theta(&docs[0]), model.infer_theta(&docs[0]));
}

#[test]
fn lstm_model_round_trips_through_json() {
    use hlm_lstm::{LstmConfig, LstmLm};
    let model = LstmLm::new(
        LstmConfig {
            vocab_size: 6,
            hidden_size: 5,
            n_layers: 2,
            dropout: 0.2,
            ..Default::default()
        },
        9,
    );
    let json = serde_json::to_string(&model).expect("serialize lstm");
    let back: LstmLm = serde_json::from_str(&json).expect("deserialize lstm");
    // Inference (dropout-free) must agree exactly.
    assert_eq!(
        back.predict_next(&[0, 3, 2]),
        model.predict_next(&[0, 3, 2])
    );
    assert_eq!(back.parameter_count(), model.parameter_count());
}

#[test]
fn ngram_and_chh_round_trip_through_json() {
    let corpus = test_corpus(100, 45);
    let ids: Vec<_> = corpus.ids().collect();
    let seqs = hlm_tests::index_sequences(&corpus, &ids);
    let m = corpus.vocab().len();

    let ngram = hlm_ngram::NgramLm::fit(hlm_ngram::NgramConfig::trigram(m), &seqs);
    let back: hlm_ngram::NgramLm =
        serde_json::from_str(&serde_json::to_string(&ngram).expect("ser")).expect("de");
    assert_eq!(
        back.predict_next(&seqs[0][..2]),
        ngram.predict_next(&seqs[0][..2])
    );

    let chh = hlm_chh::ExactChh::fit(2, m, &seqs);
    let back: hlm_chh::ExactChh =
        serde_json::from_str(&serde_json::to_string(&chh).expect("ser")).expect("de");
    assert_eq!(
        back.predict_next(&seqs[0][..2]),
        chh.predict_next(&seqs[0][..2])
    );
}
