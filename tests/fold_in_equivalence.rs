//! Statistical equivalence of the incremental fold-in path: a model
//! trained before a mid-stream product launch and *folded forward* (new
//! documents + grown vocabulary, base counts kept as pseudo-observations)
//! must model the grown market about as well as a full retrain on the
//! final corpus. As with the sampler-equivalence suite, the contract is
//! statistical, not bit-wise: over independent seeds, the folded model's
//! held-out document-completion perplexity must land within the full
//! retrain's bootstrap confidence interval. Every seed is fixed, so the
//! test is deterministic.

use hlm_corpus::{Corpus, Month};
use hlm_datagen::{generate_events, EventStreamConfig, LaunchSpec, StreamState};
use hlm_eval::bootstrap_mean_ci;
use hlm_lda::{
    document_completion_perplexity, fold_in, FoldInOptions, GibbsTrainer, LdaConfig, WeightedDoc,
};

const SEEDS: u64 = 6;
const N_COMPANIES: usize = 220;

fn lda_config(vocab_size: usize, seed: u64) -> LdaConfig {
    LdaConfig {
        n_topics: 8,
        vocab_size,
        n_iters: 120,
        burn_in: 60,
        sample_lag: 5,
        seed,
        beta: 0.1,
        ..Default::default()
    }
}

/// The stream scenario: a stable market whose vocabulary grows by one
/// product two years before the horizon.
fn scenario(seed: u64) -> (Corpus, Corpus, Month) {
    let mut cfg = EventStreamConfig::with_size_and_seed(N_COMPANIES, seed);
    let launch = cfg.base.horizon.plus_months(-24);
    cfg.launches.push(LaunchSpec {
        name: "edge_AI".into(),
        month: launch,
        adoption: 0.06,
    });
    let stream = generate_events(&cfg);
    let mut state = StreamState::new(stream.base_vocab.clone());
    let mut pre: Option<Corpus> = None;
    for ev in &stream.events {
        if pre.is_none() && ev.month() >= launch {
            pre = Some(state.corpus());
        }
        state.apply(ev);
    }
    (
        pre.expect("launch precedes horizon"),
        state.corpus(),
        launch,
    )
}

/// Binary install-base docs for every fifth company (test) and the rest
/// (train), over the given corpus.
fn split_docs(corpus: &Corpus) -> (Vec<WeightedDoc>, Vec<WeightedDoc>) {
    let ids: Vec<_> = corpus.ids().collect();
    let train: Vec<_> = ids
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 != 0)
        .map(|(_, &id)| id)
        .collect();
    let test: Vec<_> = ids
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 == 0)
        .map(|(_, &id)| id)
        .collect();
    (
        hlm_core::representations::binary_docs(corpus, &train),
        hlm_core::representations::binary_docs(corpus, &test),
    )
}

#[test]
fn fold_in_perplexity_matches_full_retrain_within_bootstrap_ci() {
    let mut fold_ppl = Vec::new();
    let mut full_ppl = Vec::new();
    let mut grown_vocab = 0usize;
    for seed in 0..SEEDS {
        let (pre_corpus, full_corpus, _) = scenario(seed);
        assert!(
            full_corpus.vocab().len() > pre_corpus.vocab().len(),
            "the launch grew the vocabulary"
        );
        grown_vocab = full_corpus.vocab().len();
        let (pre_train, _) = split_docs(&pre_corpus);
        let (final_train, final_test) = split_docs(&full_corpus);

        // Full retrain: the reference model sees the final corpus.
        let full_model =
            GibbsTrainer::new(lda_config(full_corpus.vocab().len(), 300 + seed)).fit(&final_train);
        full_ppl.push(document_completion_perplexity(&full_model, &final_test));

        // Fold-in: train before the launch, then fold the final training
        // docs that mention post-launch vocabulary (or arrived late) into
        // the grown vocabulary. The prior mass equals the base corpus's
        // token weight, so new evidence competes honestly.
        let base_model =
            GibbsTrainer::new(lda_config(pre_corpus.vocab().len(), 300 + seed)).fit(&pre_train);
        let old_vocab = pre_corpus.vocab().len();
        let new_docs: Vec<WeightedDoc> = final_train
            .iter()
            .filter(|d| d.iter().any(|&(w, _)| w >= old_vocab))
            .cloned()
            .collect();
        let prior_tokens: f64 = pre_train.iter().flatten().map(|&(_, wgt)| wgt).sum();
        let folded = fold_in(
            &base_model,
            &new_docs,
            full_corpus.vocab().len(),
            &FoldInOptions {
                n_sweeps: 30,
                prior_tokens,
                seed: 400 + seed,
            },
        );
        fold_ppl.push(document_completion_perplexity(&folded, &final_test));
    }

    let full = bootstrap_mean_ci(&full_ppl, 0.95, 2000, 42);
    let fold = bootstrap_mean_ci(&fold_ppl, 0.95, 2000, 43);
    assert!(full.mean.is_finite() && fold.mean.is_finite());

    // Two-sample overlap, exactly as the sampler-equivalence suite: the
    // means must sit within each other's combined half-widths.
    let diff = (fold.mean - full.mean).abs();
    let tol = fold.half_width + full.half_width;
    assert!(
        diff <= tol,
        "fold-in perplexity {:.4} ± {:.4} is not within the full retrain's \
         bootstrap CI {:.4} ± {:.4} (diff {:.4} > tol {:.4})",
        fold.mean,
        fold.half_width,
        full.mean,
        full.half_width,
        diff,
        tol
    );

    // Both must actually model the data: better than uniform over the
    // grown vocabulary.
    assert!(fold.mean < grown_vocab as f64 && full.mean < grown_vocab as f64);
}

/// The vocabulary-growth guard end to end: a model trained on the 38-way
/// base vocabulary scores companies from a corpus whose vocabulary grew to
/// 39 mid-stream — products it never saw are skipped, nothing panics, and
/// the numbers stay finite.
#[test]
fn pre_launch_model_scores_grown_corpus_without_panicking() {
    let (pre_corpus, full_corpus, _) = scenario(99);
    assert_eq!(pre_corpus.vocab().len(), 38);
    assert_eq!(full_corpus.vocab().len(), 39);

    let (pre_train, _) = split_docs(&pre_corpus);
    let model = GibbsTrainer::new(lda_config(38, 5)).fit(&pre_train);

    let ids: Vec<_> = full_corpus.ids().collect();
    let docs = hlm_core::representations::binary_docs(&full_corpus, &ids);
    assert!(
        docs.iter().any(|d| d.iter().any(|&(w, _)| w == 38)),
        "somebody owns the launched product"
    );
    for doc in &docs {
        let theta = model.infer_theta(doc);
        assert_eq!(theta.len(), model.n_topics());
        assert!(theta.iter().all(|t| t.is_finite() && *t >= 0.0));
    }
    let ppl = document_completion_perplexity(&model, &docs);
    assert!(ppl.is_finite() && ppl > 0.0);
}
