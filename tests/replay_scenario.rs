//! End-to-end replay scenario: a five-year-old market with a planted
//! product-mix shift and a mid-stream product launch is replayed month by
//! month against a live in-process server. The drift-triggered policy must
//! catch the shift, retrain through the checkpointed resilient fit path,
//! and hot-swap the serving model through `POST /admin/swap`; the launch
//! must be served through the incremental fold-in path without a retrain.
//!
//! The replay is part of the determinism contract: for a fixed seed the
//! outcome is bit-identical at any thread count, and a replay killed in the
//! middle of a retrain resumes from its checkpoints into exactly the run
//! that was never interrupted.

use hlm_datagen::{EventStreamConfig, LaunchSpec, MixShift};
use hlm_serve::{replay, FitAbort, ReplayAction, ReplayConfig, ReplayOutcome, RetrainPolicy};
use std::path::PathBuf;

const SERVE_MONTHS: u32 = 18;

fn scenario_stream() -> EventStreamConfig {
    let mut cfg = EventStreamConfig::with_size_and_seed(150, 11);
    let horizon = cfg.base.horizon;
    // Launched inside the serve window, before the shift, with a slow
    // adoption curve: the vocabulary grows while the acquisition mix is
    // still stable, so the driver must fold in rather than retrain.
    cfg.launches.push(LaunchSpec {
        name: "edge_AI".into(),
        month: horizon.plus_months(-16),
        adoption: 0.02,
    });
    cfg.shift = Some(MixShift {
        month: horizon.plus_months(-9),
        products: vec!["retail".into(), "media".into()],
        monthly_rate: 0.2,
    });
    cfg
}

fn scenario_config(checkpoint_dir: Option<PathBuf>) -> ReplayConfig {
    let mut cfg = ReplayConfig::new(scenario_stream());
    cfg.serve_months = SERVE_MONTHS;
    cfg.policy = RetrainPolicy::DriftTriggered;
    cfg.lda.n_topics = 3;
    cfg.lda.n_iters = 24;
    cfg.lda.burn_in = 12;
    cfg.lda.sample_lag = 5;
    cfg.lda.seed = 17;
    cfg.checkpoint_dir = checkpoint_dir;
    cfg
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hlm_replay_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The comparable surface of an outcome (everything except wall-clock).
fn fingerprint(o: &ReplayOutcome) -> Vec<(String, u64, u64, u64, String, u64, bool)> {
    o.rows
        .iter()
        .map(|r| {
            (
                r.month.to_string(),
                r.events,
                r.evaluated,
                r.hits,
                format!("{:?}", r.action),
                r.version,
                r.drifted,
            )
        })
        .collect()
}

#[test]
fn drift_triggered_replay_retrains_folds_in_and_hot_swaps() {
    let dir = tmp_dir("scenario");
    let cfg = scenario_config(Some(dir.clone()));
    let outcome = replay(&cfg).expect("replay completes");

    assert_eq!(outcome.rows.len(), SERVE_MONTHS as usize);
    assert!(outcome.events > 0, "events were applied");
    assert!(outcome.drift_checks > 0, "drift was checked");
    assert!(
        outcome.retrains >= 1,
        "the planted shift triggered at least one retrain: {outcome:?}"
    );
    assert!(
        outcome.fold_ins >= 1,
        "the launch was folded in without a retrain: {outcome:?}"
    );
    assert!(
        outcome.swaps >= outcome.retrains + outcome.fold_ins,
        "every new model was hot-swapped into the server"
    );
    assert_eq!(outcome.vocab_len, 39, "the launch grew the vocabulary");
    assert!(
        outcome
            .rows
            .iter()
            .any(|r| r.action == ReplayAction::Retrain && r.drifted),
        "some retrain was drift-triggered"
    );
    assert!(
        outcome
            .rows
            .iter()
            .any(|r| r.action == ReplayAction::FoldIn),
        "some month folded in vocabulary growth"
    );
    // Versions are monotone and end at the swap count.
    let final_version = outcome.rows.last().expect("rows nonempty").version;
    assert_eq!(final_version, outcome.swaps);

    // The CSV artifact covers every month plus a header.
    let csv = outcome.csv();
    assert_eq!(csv.lines().count(), SERVE_MONTHS as usize + 1);
    assert!(csv.starts_with("month,events,evaluated,hits,hit_rate"));

    // Checkpoints landed per fit: the initial fit plus one per retrain.
    let fit_dirs = std::fs::read_dir(&dir)
        .expect("checkpoint root exists")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().starts_with("fit-"))
        .count();
    assert_eq!(fit_dirs as u64, 1 + outcome.retrains);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_is_bit_identical_at_any_thread_count() {
    let before = hlm_engine::effective_threads();
    let cfg = scenario_config(None);
    hlm_engine::set_threads(1);
    let serial = replay(&cfg).expect("serial replay completes");
    hlm_engine::set_threads(4);
    let parallel = replay(&cfg).expect("parallel replay completes");
    hlm_engine::set_threads(before);

    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    assert_eq!(serial.retrains, parallel.retrains);
    assert_eq!(serial.fold_ins, parallel.fold_ins);
    assert_eq!(serial.swaps, parallel.swaps);
    assert_eq!(serial.csv(), parallel.csv());
}

#[test]
fn replay_killed_mid_retrain_resumes_into_the_uninterrupted_run() {
    let baseline_dir = tmp_dir("baseline");
    let resumed_dir = tmp_dir("resumed");

    let baseline = replay(&scenario_config(Some(baseline_dir.clone())))
        .expect("uninterrupted replay completes");
    assert!(
        baseline.retrains >= 1,
        "scenario must retrain to be a drill"
    );

    // Kill the first retrain (fit 1) halfway through its sweeps.
    let mut killed = scenario_config(Some(resumed_dir.clone()));
    killed.abort = Some(FitAbort {
        fit_index: 1,
        iteration: 12,
    });
    let err = replay(&killed).expect_err("the watchdog kills the retrain");
    assert!(
        err.is_interruption(),
        "the abort surfaces as an interruption, got: {err}"
    );

    // Resume: completed fits fast-forward from their final checkpoints, the
    // killed fit continues from sweep 12, and the replay re-drives into the
    // exact uninterrupted outcome.
    let mut resumed_cfg = scenario_config(Some(resumed_dir.clone()));
    resumed_cfg.resume = true;
    let resumed = replay(&resumed_cfg).expect("resumed replay completes");

    assert_eq!(fingerprint(&baseline), fingerprint(&resumed));
    assert_eq!(baseline.retrains, resumed.retrains);
    assert_eq!(baseline.swaps, resumed.swaps);
    assert_eq!(baseline.csv(), resumed.csv());

    let _ = std::fs::remove_dir_all(&baseline_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
}
