//! The drift detector over sliding windows — the contract the replay
//! driver's retraining trigger rests on. Two claims:
//!
//! 1. **Specificity.** On a stable stream (no injected shift), sliding a
//!    12-month reference / 6-month recent window pair across the tail of
//!    the stream fires at most at the test's own significance level, over
//!    ten independent seeds. A trigger-happy detector would turn the
//!    drift-triggered policy into the periodic policy with extra steps.
//! 2. **Sensitivity.** With an injected product-mix shift, the detector
//!    fires within three monthly windows of the shift becoming visible —
//!    fast enough that the replay driver retrains while the shifted regime
//!    is still young.
//!
//! Every seed is fixed, so both tests are deterministic.

use hlm_corpus::{Month, TimeWindow};
use hlm_datagen::{generate_events, EventStreamConfig, MixShift, StreamState};
use hlm_eval::drift::detect_drift;

const SIGNIFICANCE: f64 = 0.05;
const REFERENCE_MONTHS: i32 = 12;
const RECENT_MONTHS: i32 = 6;

/// Builds the full corpus of a stream and the month range to slide over.
fn full_corpus(cfg: &EventStreamConfig) -> (hlm_corpus::Corpus, Month, Month) {
    let stream = generate_events(cfg);
    let mut state = StreamState::new(stream.base_vocab.clone());
    for ev in &stream.events {
        state.apply(ev);
    }
    (state.corpus(), stream.start, stream.end)
}

/// Slides the window pair monthly over `[from, to)` and returns, per
/// cursor month, whether a *valid* check reported drift.
fn slide(corpus: &hlm_corpus::Corpus, from: Month, to: Month) -> Vec<(Month, bool, bool)> {
    let mut out = Vec::new();
    let mut cursor = from;
    while cursor < to {
        let reference = TimeWindow {
            start: cursor.plus_months(-(REFERENCE_MONTHS + RECENT_MONTHS)),
            end: cursor.plus_months(-RECENT_MONTHS),
        };
        let recent = TimeWindow {
            start: cursor.plus_months(-RECENT_MONTHS),
            end: cursor,
        };
        let rep = detect_drift(corpus, reference, recent, SIGNIFICANCE);
        out.push((cursor, rep.is_valid(), rep.drifted));
        cursor = cursor.plus_months(1);
    }
    out
}

#[test]
fn stable_stream_stays_under_the_significance_level_across_seeds() {
    let mut checks = 0u32;
    let mut fired = 0u32;
    for seed in 0..10 {
        let cfg = EventStreamConfig::with_size_and_seed(250, seed);
        let (corpus, _, end) = full_corpus(&cfg);
        // The last two years: companies are founded and the market matures
        // earlier, so this is the stationary regime the null describes.
        for (month, valid, drifted) in slide(&corpus, end.plus_months(-24), end) {
            assert!(valid, "windows in the mature regime have data ({month})");
            checks += 1;
            if drifted {
                fired += 1;
            }
        }
    }
    let rate = f64::from(fired) / f64::from(checks);
    assert!(
        rate <= SIGNIFICANCE,
        "false-positive rate {rate:.3} ({fired}/{checks}) exceeds the {SIGNIFICANCE} significance level"
    );
}

#[test]
fn injected_shift_is_detected_within_three_windows() {
    for seed in 0..10 {
        let mut cfg = EventStreamConfig::with_size_and_seed(250, 100 + seed);
        let shift_month = cfg.base.horizon.plus_months(-12);
        cfg.shift = Some(MixShift {
            month: shift_month,
            products: vec!["retail".into(), "media".into()],
            monthly_rate: 0.2,
        });
        let (corpus, _, end) = full_corpus(&cfg);

        // The first cursor whose recent window contains a shifted month is
        // shift + 1; detection must come within three windows of that.
        let detected = slide(&corpus, shift_month.plus_months(1), end)
            .into_iter()
            .find(|&(_, valid, drifted)| valid && drifted)
            .map(|(month, _, _)| month);
        let deadline = shift_month.plus_months(3);
        match detected {
            Some(month) => assert!(
                month <= deadline,
                "seed {seed}: drift first detected at {month}, after the deadline {deadline}"
            ),
            None => panic!("seed {seed}: injected shift at {shift_month} never detected"),
        }
    }
}
