//! Property-based invariants across crate boundaries.

use hlm_chh::ExactChh;
use hlm_corpus::{Corpus, Split};
use hlm_eval::stats::{binomial_sf, five_number_summary, mean_ci};
use hlm_ngram::{NgramConfig, NgramLm};
use hlm_resilience::Checkpoint;
use proptest::prelude::*;

/// Arbitrary product sequences over a small vocabulary.
fn sequences_strategy(vocab: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0..vocab, 1..10), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_is_always_a_partition(n in 1usize..200, seed in 0u64..1000) {
        let corpus = tiny_corpus(n);
        let split = Split::new(&corpus, 0.7, 0.1, seed);
        let mut all: Vec<u32> = split
            .train
            .iter()
            .chain(&split.valid)
            .chain(&split.test)
            .map(|id| id.0)
            .collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn ngram_predictions_are_distributions(
        seqs in sequences_strategy(6),
        order in 1usize..4,
        hist in prop::collection::vec(0usize..6, 0..4),
    ) {
        let lm = NgramLm::fit(
            NgramConfig { order, vocab_size: 6, lambdas: None, add_k: 0.5 },
            &seqs,
        );
        let d = lm.predict_next(&hist);
        prop_assert_eq!(d.len(), 6);
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&p| p >= 0.0));
        // Token-level distribution is proper too.
        let full = lm.predict_next_tokens(&hist);
        prop_assert!((full.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chh_conditionals_sum_to_one_on_observed_contexts(
        seqs in sequences_strategy(5),
    ) {
        let chh = ExactChh::fit(2, 5, &seqs);
        // Any context actually observed must carry a proper conditional.
        for seq in &seqs {
            for w in seq.windows(2) {
                let ctx = &w[..1];
                if chh.context_support(ctx) > 0 {
                    let total: f64 =
                        (0..5).map(|i| chh.conditional_probability(ctx, i)).sum();
                    prop_assert!((total - 1.0).abs() < 1e-9, "ctx {ctx:?} sums to {total}");
                }
            }
        }
    }

    #[test]
    fn binomial_sf_is_monotone_in_k(n in 1u64..500, p in 0.01f64..0.99, k in 0u64..500) {
        let k = k.min(n);
        let a = binomial_sf(k, n, p);
        let b = binomial_sf(k + 1, n, p);
        prop_assert!(b <= a + 1e-12, "sf must fall with k: {a} -> {b}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
    }

    #[test]
    fn five_number_summary_is_ordered(xs in prop::collection::vec(-100.0f64..100.0, 1..60)) {
        let f = five_number_summary(&xs);
        prop_assert!(f.min <= f.q1 + 1e-12);
        prop_assert!(f.q1 <= f.median + 1e-12);
        prop_assert!(f.median <= f.q3 + 1e-12);
        prop_assert!(f.q3 <= f.max + 1e-12);
    }

    #[test]
    fn mean_ci_contains_the_mean(xs in prop::collection::vec(-50.0f64..50.0, 2..40)) {
        let ci = mean_ci(&xs, 0.95);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((ci.mean - m).abs() < 1e-9);
        prop_assert!(ci.low() <= m + 1e-9 && m <= ci.high() + 1e-9);
    }

    #[test]
    fn lda_theta_is_always_a_distribution(
        doc in prop::collection::vec((0usize..8, 0.1f64..5.0), 0..12),
    ) {
        // A fixed small model; any weighted document must yield a simplex θ.
        let phi = {
            let mut m = hlm_linalg::Matrix::from_fn(2, 8, |k, w| ((k + w) % 3 + 1) as f64);
            m.normalize_rows();
            m
        };
        let model = hlm_lda::LdaModel::new(phi, 0.2, 0.1);
        let theta = model.infer_theta(&doc);
        prop_assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(theta.iter().all(|&x| x >= 0.0));
        let pred = model.predictive_distribution(&theta);
        prop_assert!((pred.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_roundtrips_for_any_payload(
        kind_idx in 0usize..4,
        iteration in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let kind = ["lstm", "lda-gibbs", "lda-vb", "bpmf"][kind_idx];
        let ckpt = Checkpoint::new(kind, iteration, payload);
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        prop_assert_eq!(decoded, ckpt);
    }

    #[test]
    fn any_single_flipped_byte_invalidates_a_checkpoint(
        payload in prop::collection::vec(0u8..=255, 1..256),
        iteration in 0u64..1_000_000,
        pos_seed in 0usize..usize::MAX,
        mask in 1u8..=255,
    ) {
        let bytes = Checkpoint::new("lda-gibbs", iteration, payload).encode();
        let pos = pos_seed % bytes.len();
        let mut damaged = bytes.clone();
        damaged[pos] ^= mask;
        prop_assert!(
            Checkpoint::decode(&damaged).is_err(),
            "flipping byte {} with mask {:#04x} went undetected",
            pos,
            mask
        );
        // The pristine encoding still decodes (the damage, not the format,
        // is what's rejected).
        prop_assert!(Checkpoint::decode(&bytes).is_ok());
    }

    #[test]
    fn csv_roundtrips_hostile_company_names(
        raw_names in prop::collection::vec(prop::collection::vec(32u8..127, 1..20), 1..8),
    ) {
        // Printable-ASCII names — including commas, quotes, and leading or
        // trailing spaces — survive a CSV write/parse cycle byte for byte.
        use hlm_corpus::{io, Company, InstallEvent, Month, ProductId, Sic2, Vocabulary};
        let names: Vec<String> = raw_names
            .iter()
            .map(|bs| bs.iter().map(|&b| b as char).collect())
            .collect();
        let companies: Vec<Company> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut c = Company::new(i as u64, name.clone(), Sic2(7), 1);
                c.add_event(InstallEvent::at(ProductId(0), Month::from_ym(2005, 3)));
                c
            })
            .collect();
        let corpus = Corpus::new(Vocabulary::new(["prod, \"x\""]), companies);
        let (c_csv, e_csv) = io::to_csv(&corpus);
        let back = io::from_csv(corpus.vocab().clone(), &c_csv, &e_csv).unwrap();
        prop_assert_eq!(back.len(), corpus.len());
        for (orig, parsed) in corpus.companies().iter().zip(back.companies()) {
            prop_assert_eq!(&orig.name, &parsed.name);
            prop_assert_eq!(orig.events(), parsed.events());
        }
        // The lenient parser agrees on clean input and quarantines nothing.
        let (lenient, report) = io::from_csv_lenient(
            corpus.vocab().clone(),
            &c_csv,
            &e_csv,
            &io::LenientOptions::default(),
        )
        .unwrap();
        prop_assert!(report.is_empty());
        prop_assert_eq!(lenient.len(), corpus.len());
    }
}

fn tiny_corpus(n: usize) -> Corpus {
    use hlm_corpus::{Company, Sic2, Vocabulary};
    let companies = (0..n)
        .map(|i| Company::new(i as u64, format!("c{i}"), Sic2(1), 0))
        .collect();
    Corpus::new(Vocabulary::new(["a"]), companies)
}
