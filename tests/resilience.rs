//! Cross-crate resilience suite: kill/resume equivalence for every
//! checkpointed trainer, corruption recovery through seeded fault injection,
//! and degraded-mode serving. Everything here is deterministic — faults fire
//! by write count or iteration, never by wall clock.

use hlm_bpmf::{BpmfConfig, Rating, BPMF_CHECKPOINT_KIND};
use hlm_corpus::Month;
use hlm_engine::{Engine, LdaEstimator, ModelSpec, ServeOptions, TrainPlan};
use hlm_lda::{unit_weights, GibbsTrainer, LdaConfig, GIBBS_CHECKPOINT_KIND};
use hlm_lstm::{LstmConfig, LstmLm, TrainOptions, Trainer, LSTM_CHECKPOINT_KIND};
use hlm_ngram::NgramConfig;
use hlm_resilience::{
    Checkpoint, CheckpointStore, Fault, FaultPlan, FaultyIo, MemIo, RunGuard, TrainControl,
};
use hlm_tests::{index_sequences, test_corpus, test_split};

fn lda_cfg(seed: u64, vocab_size: usize) -> LdaConfig {
    LdaConfig {
        n_topics: 3,
        vocab_size,
        n_iters: 60,
        burn_in: 30,
        sample_lag: 5,
        seed,
        ..Default::default()
    }
}

/// Documents plus the vocabulary size they are indexed against.
fn corpus_docs() -> (Vec<hlm_lda::WeightedDoc>, usize) {
    let corpus = test_corpus(80, 17);
    let ids: Vec<_> = corpus.ids().collect();
    let docs = unit_weights(
        &index_sequences(&corpus, &ids)
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>(),
    );
    (docs, corpus.vocab().len())
}

#[test]
fn lda_gibbs_kill_resume_perplexity_matches_uninterrupted() {
    let (docs, vocab) = corpus_docs();
    let trainer = GibbsTrainer::new(lda_cfg(41, vocab));
    let full = trainer.fit(&docs);

    let store = CheckpointStore::new(Box::new(MemIo::new()));
    let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
        .with_guard(RunGuard::unlimited().abort_at_iteration(37));
    assert!(trainer
        .fit_resumable(&docs, &mut ctrl, None)
        .unwrap_err()
        .is_interruption());

    let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
    assert_eq!(ckpt.iteration, 37);
    let resumed = trainer
        .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
        .unwrap();

    let full_ppl = hlm_lda::document_completion_perplexity(&full, &docs);
    let resumed_ppl = hlm_lda::document_completion_perplexity(&resumed, &docs);
    assert!(
        (full_ppl - resumed_ppl).abs() < 1e-9,
        "perplexity diverged: {full_ppl} vs {resumed_ppl}"
    );
}

#[test]
fn lstm_kill_resume_perplexity_matches_uninterrupted() {
    let corpus = test_corpus(40, 23);
    let split = test_split(&corpus);
    let train = index_sequences(&corpus, &split.train);
    let test: Vec<Vec<usize>> = index_sequences(&corpus, &split.test)
        .into_iter()
        .filter(|s| s.len() >= 2)
        .collect();
    let cfg = LstmConfig {
        vocab_size: corpus.vocab().len(),
        hidden_size: 8,
        n_layers: 1,
        dropout: 0.1,
        ..Default::default()
    };
    let opts = TrainOptions {
        epochs: 5,
        batch_size: 8,
        patience: 0,
        seed: 3,
        verbose: false,
        ..Default::default()
    };
    let trainer = Trainer::new(opts);

    let mut full = LstmLm::new(cfg.clone(), 9);
    trainer.fit(&mut full, &train, &[]);

    let store = CheckpointStore::new(Box::new(MemIo::new()));
    let mut interrupted = LstmLm::new(cfg.clone(), 9);
    let mut ctrl = TrainControl::new(LSTM_CHECKPOINT_KIND, &store)
        .with_guard(RunGuard::unlimited().abort_at_iteration(3));
    assert!(trainer
        .fit_resumable(&mut interrupted, &train, &[], &mut ctrl, None)
        .unwrap_err()
        .is_interruption());

    let ckpt = store.latest_good(LSTM_CHECKPOINT_KIND).unwrap().unwrap();
    assert_eq!(ckpt.iteration, 3);
    let mut resumed = LstmLm::new(cfg, 9);
    trainer
        .fit_resumable(
            &mut resumed,
            &train,
            &[],
            &mut TrainControl::noop(),
            Some(&ckpt),
        )
        .unwrap();

    let full_ppl = full.perplexity(&test);
    let resumed_ppl = resumed.perplexity(&test);
    assert!(
        (full_ppl - resumed_ppl).abs() < 1e-9,
        "perplexity diverged: {full_ppl} vs {resumed_ppl}"
    );
}

fn bpmf_ratings() -> Vec<Rating> {
    // A deterministic low-rank-ish grid with a planted block structure.
    let mut ratings = Vec::new();
    for row in 0..12 {
        for col in 0..8 {
            if (row + 2 * col) % 3 == 0 {
                let value = if (row < 6) == (col < 4) { 4.0 } else { 1.0 };
                ratings.push(Rating { row, col, value });
            }
        }
    }
    ratings
}

#[test]
fn bpmf_kill_resume_predictions_match_uninterrupted() {
    let cfg = BpmfConfig {
        n_factors: 2,
        n_iters: 30,
        burn_in: 10,
        seed: 77,
        ..Default::default()
    };
    let ratings = bpmf_ratings();
    let full = hlm_bpmf::fit(12, 8, &ratings, &cfg, Some((1.0, 5.0)));

    let store = CheckpointStore::new(Box::new(MemIo::new()));
    let mut ctrl = TrainControl::new(BPMF_CHECKPOINT_KIND, &store)
        .with_guard(RunGuard::unlimited().abort_at_iteration(18));
    assert!(
        hlm_bpmf::fit_resumable(12, 8, &ratings, &cfg, Some((1.0, 5.0)), &mut ctrl, None)
            .unwrap_err()
            .is_interruption()
    );

    let ckpt = store.latest_good(BPMF_CHECKPOINT_KIND).unwrap().unwrap();
    let resumed = hlm_bpmf::fit_resumable(
        12,
        8,
        &ratings,
        &cfg,
        Some((1.0, 5.0)),
        &mut TrainControl::noop(),
        Some(&ckpt),
    )
    .unwrap();

    for row in 0..12 {
        let a = full.predict_row(row);
        let b = resumed.predict_row(row);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "row {row}: {x} vs {y}");
        }
    }
}

#[test]
fn corrupted_checkpoints_fall_back_and_resume_matches_uninterrupted() {
    // The two newest checkpoints are damaged at write time (a torn write and
    // a silent bit flip); resume must fall back to the last good one and the
    // finished run must still match the uninterrupted model exactly.
    let (docs, vocab) = corpus_docs();
    let trainer = GibbsTrainer::new(lda_cfg(59, vocab));
    let full = trainer.fit(&docs);

    let dir = std::env::temp_dir().join(format!("hlm-resilience-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan::none()
        .with(Fault::TruncateWrite {
            nth: 39,
            at_byte: 64,
        })
        .with(Fault::FlipByte {
            nth: 38,
            offset: 200,
            mask: 0x40,
        });
    let io = FaultyIo::new(hlm_resilience::FsIo::new(&dir).unwrap(), plan);
    let store = CheckpointStore::new(Box::new(io));

    let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store)
        .with_guard(RunGuard::unlimited().abort_at_iteration(39));
    assert!(trainer
        .fit_resumable(&docs, &mut ctrl, None)
        .unwrap_err()
        .is_interruption());

    // Writes 38 (flipped) and 39 (aborted before it happened; write 39 was
    // never attempted — truncation hits nothing) leave iteration 37 as the
    // newest intact snapshot... unless the truncated write did land, in which
    // case it must be skipped too. Either way `latest_good` returns an
    // earlier, *valid* checkpoint.
    let ckpt = store.latest_good(GIBBS_CHECKPOINT_KIND).unwrap().unwrap();
    assert!(ckpt.iteration <= 37, "damaged snapshots must be skipped");
    assert!(Checkpoint::decode(&ckpt.encode()).is_ok());

    let resumed = trainer
        .fit_resumable(&docs, &mut TrainControl::noop(), Some(&ckpt))
        .unwrap();
    let full_ppl = hlm_lda::document_completion_perplexity(&full, &docs);
    let resumed_ppl = hlm_lda::document_completion_perplexity(&resumed, &docs);
    assert!(
        (full_ppl - resumed_ppl).abs() < 1e-9,
        "recovery changed the model: {full_ppl} vs {resumed_ppl}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_write_is_invisible_to_the_store() {
    // An atomic (.tmp + rename) store plus checksums means a crash mid-write
    // can at worst lose the newest snapshot, never corrupt the resume.
    let io = FaultyIo::new(
        MemIo::new(),
        FaultPlan::none().with(Fault::TruncateWrite {
            nth: 3,
            at_byte: 10,
        }),
    );
    let store = CheckpointStore::new(Box::new(io));
    for iter in 1..=3u64 {
        let _ = store.save(&Checkpoint::new("demo", iter, vec![iter as u8; 32]));
    }
    let latest = store.latest_good("demo").unwrap().unwrap();
    assert_eq!(latest.iteration, 2, "torn newest write must be skipped");
}

#[test]
fn engine_resilient_training_resumes_through_the_facade() {
    let corpus = test_corpus(60, 31);
    let ids: Vec<_> = corpus.ids().collect();
    let vocab = corpus.vocab().len();
    let cutoff = Month::from_ym(2030, 1);
    let engine = Engine::new(corpus);
    let spec = ModelSpec::Lda {
        config: lda_cfg(13, vocab),
        estimator: LdaEstimator::Gibbs,
    };

    let dir = std::env::temp_dir().join(format!("hlm-resilience-eng-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let killed = TrainPlan::new()
        .on_disk(&dir)
        .unwrap()
        .with_guard(RunGuard::unlimited().abort_at_iteration(25));
    let err = engine
        .train_resilient(&spec, &ids, cutoff, killed)
        .unwrap_err();
    assert!(err.is_interruption());

    let resumed = engine
        .train_resilient(
            &spec,
            &ids,
            cutoff,
            TrainPlan::new().on_disk(&dir).unwrap().resume(true),
        )
        .unwrap();
    assert_eq!(resumed.resumed_from, Some(25));
    assert!(resumed.rolled_back.is_none());

    let plain = engine
        .train_resilient(&spec, &ids, cutoff, TrainPlan::new())
        .unwrap();
    let seqs: Vec<Vec<usize>> = index_sequences(engine.corpus(), &ids)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect();
    let a = resumed.model.perplexity(&seqs).unwrap();
    let b = plain.model.perplexity(&seqs).unwrap();
    assert!((a - b).abs() < 1e-9, "resumed {a} vs plain {b}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_serving_answers_from_the_fallback_when_the_primary_cannot() {
    let corpus = test_corpus(50, 43);
    let ids: Vec<_> = corpus.ids().collect();
    let cutoff = Month::from_ym(2030, 1);
    let vocab = corpus.vocab().len();
    let engine = Engine::new(corpus);

    // A healthy n-gram primary serves untagged responses.
    let healthy = engine
        .serve_resilient(
            &ModelSpec::Ngram(NgramConfig {
                order: 2,
                vocab_size: vocab,
                lambdas: None,
                add_k: 0.5,
            }),
            &ids,
            cutoff,
            ServeOptions::default(),
        )
        .unwrap();
    let served = healthy.recommend(&[0, 1]);
    assert!(!served.is_degraded(), "{:?}", served.degraded);
    assert_eq!(served.value.len(), vocab);

    // CHH cannot answer perplexity at all: the response comes from the
    // unigram fallback and says so.
    let chh = engine
        .serve_resilient(
            &ModelSpec::ChhExact {
                depth: 2,
                vocab_size: vocab,
            },
            &ids,
            cutoff,
            ServeOptions::default(),
        )
        .unwrap();
    let seqs = index_sequences(engine.corpus(), &ids);
    let ppl = chh.perplexity(&seqs);
    assert!(ppl.is_degraded());
    assert!(ppl.value.is_finite(), "fallback perplexity must be usable");
    assert!(
        ppl.degraded.as_deref().unwrap().contains("primary"),
        "{:?}",
        ppl.degraded
    );
}

#[test]
fn failed_checkpoint_write_widens_the_resume_gap_but_does_not_abort() {
    let (docs, vocab) = corpus_docs();
    let trainer = GibbsTrainer::new(lda_cfg(67, vocab));

    let io = FaultyIo::new(
        MemIo::new(),
        FaultPlan::none().with(Fault::FailWrite { nth: 20 }),
    );
    let store = CheckpointStore::new(Box::new(io));
    let mut ctrl = TrainControl::new(GIBBS_CHECKPOINT_KIND, &store);
    let model = trainer.fit_resumable(&docs, &mut ctrl, None).unwrap();
    assert!(hlm_lda::document_completion_perplexity(&model, &docs).is_finite());
    assert_eq!(ctrl.sink_failures().len(), 1);
    assert_eq!(ctrl.sink_failures()[0].0, 20);
    assert_eq!(ctrl.saves(), 59, "every other sweep checkpointed");
}
