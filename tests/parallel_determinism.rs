//! Thread-count invariance of the parallel runtime: every parallel hot path
//! must produce bit-identical results whether it runs on 1, 2 or 7 worker
//! threads. This is the determinism contract of `hlm-par` (DESIGN.md §3.3):
//! chunk boundaries are a function of the data size only, reductions fold in
//! chunk order, and RNG streams are split per chunk/company — never per
//! worker — so the thread count can only change the wall-clock.
//!
//! Everything lives in one test function: the thread override is process
//! global, and the default multi-threaded test harness would otherwise race
//! two tests' overrides against each other.

use hlm_bpmf::{BpmfConfig, Rating};
use hlm_lda::{
    document_completion_perplexity, GibbsTrainer, LdaConfig, MemDocShards, SamplerChoice,
    ShardedGibbsTrainer, SHARDED_GIBBS_CHECKPOINT_KIND,
};
use hlm_resilience::{CheckpointStore, MemIo, RunGuard, TrainControl};
use hlm_tests::{index_sequences, quick_lda, test_corpus, test_split};

/// Runs `f` once per thread count and asserts all outcomes are identical.
/// The outcome type uses plain `==`; callers pass bit-preserving
/// representations (e.g. `f64::to_bits`) where rounding could hide drift.
fn invariant_across_thread_counts<T: PartialEq + std::fmt::Debug>(
    what: &str,
    f: impl Fn() -> T,
) -> T {
    let baseline = {
        hlm_engine::set_threads(1);
        f()
    };
    for threads in [2usize, 7] {
        hlm_engine::set_threads(threads);
        assert_eq!(hlm_engine::effective_threads(), threads);
        let run = f();
        assert_eq!(
            run, baseline,
            "{what}: {threads}-thread run differs from the serial run"
        );
    }
    hlm_engine::set_threads(0); // restore the HLM_THREADS / auto default
    baseline
}

#[test]
fn parallel_hot_paths_are_bit_identical_across_thread_counts() {
    // Force the cost model's hand: these corpora are far below the real
    // parallelism threshold, and a serial run at every thread count would
    // pass vacuously. Threshold 0 makes every budgeted call engage the
    // persistent pool.
    hlm_par::set_par_threshold(Some(0));

    // Corpus generation: per-company RNG streams, ordered site-id assignment.
    let corpus = invariant_across_thread_counts("datagen", || {
        let c = test_corpus(250, 71);
        c.companies()
            .iter()
            .map(|co| {
                (
                    co.events().to_vec(),
                    co.revenue_musd.to_bits(),
                    co.site_count,
                )
            })
            .collect::<Vec<_>>()
    });
    assert!(!corpus.is_empty());

    let corpus = test_corpus(250, 71);
    let split = test_split(&corpus);
    let test_docs = hlm_core::representations::binary_docs(&corpus, &split.test);

    // LDA collapsed Gibbs (document-sliced sweep, deterministic count merge)
    // + parallel document-completion perplexity. The perplexity comparison
    // is on raw bits: parallel folding must equal serial to the last ulp.
    invariant_across_thread_counts("lda gibbs + perplexity", || {
        let (model, _) = quick_lda(&corpus, &split.train, 3);
        let phi: Vec<u64> = model.phi().as_slice().iter().map(|x| x.to_bits()).collect();
        let ppl = document_completion_perplexity(&model, &test_docs).to_bits();
        (phi, ppl)
    });

    // Alias-MH kernel (LightLDA-style O(1) proposals): the MH accept/reject
    // uniforms live inside the same per-chunk RNG streams, so the exact
    // invariance must hold for it too — and the sharded trainer, which
    // rebuilds the per-sweep alias tables from the identical sweep-start
    // snapshot, must reproduce the in-memory bits, including across a
    // mid-sweep kill/resume.
    let train_docs = hlm_core::representations::binary_docs(&corpus, &split.train);
    let alias_cfg = LdaConfig {
        n_topics: 24,
        vocab_size: corpus.vocab().len(),
        n_iters: 40,
        burn_in: 20,
        sample_lag: 4,
        seed: 13,
        beta: 0.1,
        sampler: SamplerChoice::AliasMh,
        ..Default::default()
    };
    let alias_phi = invariant_across_thread_counts("lda alias-MH gibbs", || {
        let model = GibbsTrainer::new(alias_cfg.clone()).fit(&train_docs);
        model
            .phi()
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>()
    });
    hlm_engine::set_threads(2);
    let dir = std::env::temp_dir().join(format!("hlm_par_det_alias_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let source = MemDocShards::new(&train_docs, 3);
    let trainer = ShardedGibbsTrainer::new(alias_cfg.clone(), &dir);
    let sharded_bits: Vec<u64> = trainer
        .fit(&source)
        .phi()
        .as_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(
        sharded_bits, alias_phi,
        "sharded alias-MH must be bit-identical to the in-memory trainer"
    );
    // Kill mid-sweep (shard 1 of sweep 12, past the alias-table rebuild at
    // shard 0) and resume from the latest good checkpoint.
    let store = CheckpointStore::new(Box::new(MemIo::new()));
    let abort_step = 12 * 3 + 1;
    let mut ctrl = TrainControl::new(SHARDED_GIBBS_CHECKPOINT_KIND, &store)
        .with_guard(RunGuard::unlimited().abort_at_iteration(abort_step));
    let err = trainer.fit_resumable(&source, &mut ctrl, None).unwrap_err();
    assert!(err.is_interruption());
    let ckpt = store
        .latest_good(SHARDED_GIBBS_CHECKPOINT_KIND)
        .unwrap()
        .unwrap();
    assert_eq!(ckpt.iteration, abort_step);
    let resumed_bits: Vec<u64> = trainer
        .fit_resumable(&source, &mut TrainControl::noop(), Some(&ckpt))
        .unwrap()
        .phi()
        .as_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(
        resumed_bits, alias_phi,
        "killed-and-resumed sharded alias-MH must be bit-identical"
    );
    std::fs::remove_dir_all(&dir).ok();

    // BPMF conditional draws (per-row chunk RNG streams).
    let ratings: Vec<Rating> = corpus
        .companies()
        .iter()
        .take(60)
        .enumerate()
        .flat_map(|(row, c)| {
            c.product_set().into_iter().map(move |p| Rating {
                row,
                col: p.index(),
                value: 1.0,
            })
        })
        .collect();
    invariant_across_thread_counts("bpmf", || {
        let cfg = BpmfConfig {
            n_factors: 4,
            n_iters: 12,
            burn_in: 4,
            seed: 9,
            ..Default::default()
        };
        let model = hlm_bpmf::fit(60, corpus.vocab().len(), &ratings, &cfg, Some((0.0, 1.0)));
        model
            .all_scores()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>()
    });

    // LSTM minibatch training (chunked gradient accumulation, ordered merge).
    let ids: Vec<_> = corpus.ids().collect();
    let seqs = index_sequences(&corpus, &ids);
    invariant_across_thread_counts("lstm", || {
        use hlm_lstm::{AdamOptions, LstmConfig, LstmLm, TrainOptions, Trainer};
        let mut m = LstmLm::new(
            LstmConfig {
                vocab_size: corpus.vocab().len(),
                hidden_size: 8,
                n_layers: 1,
                dropout: 0.3,
                ..Default::default()
            },
            17,
        );
        Trainer::new(TrainOptions {
            epochs: 1,
            batch_size: 8,
            adam: AdamOptions::default(),
            patience: 0,
            seed: 5,
            verbose: false,
            ..Default::default()
        })
        .fit(&mut m, &seqs, &[]);
        m.predict_next(&[0, 3])
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>()
    });

    // Cost-model serial fallback: with the threshold forced above any
    // budget, a 7-thread run must take the serial path and still produce
    // the same bits — the serial/parallel choice is an optimization, never
    // a behaviour change.
    let lda_bits = || {
        let (model, _) = quick_lda(&corpus, &split.train, 3);
        let ppl = document_completion_perplexity(&model, &test_docs).to_bits();
        (
            model
                .phi()
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            ppl,
        )
    };
    hlm_par::set_par_threshold(Some(0));
    hlm_engine::set_threads(7);
    let engaged = lda_bits();
    hlm_par::set_par_threshold(Some(u64::MAX));
    let serial_fallback = lda_bits();
    assert_eq!(
        engaged, serial_fallback,
        "the cost model's serial fallback must be bit-identical to the pooled run"
    );

    // Persistent pool reuse: repeated engine training runs must dispatch to
    // the already-spawned workers instead of spawning fresh ones. The
    // counters come from the recorder, which observes without perturbing.
    hlm_par::set_par_threshold(Some(0));
    hlm_engine::set_threads(2);
    hlm_obs::install(hlm_obs::Recorder::enabled());
    let ids: Vec<_> = corpus.ids().collect();
    let specs = vec![
        hlm_engine::ModelSpec::Ngram(hlm_ngram::NgramConfig::unigram(corpus.vocab().len())),
        hlm_engine::ModelSpec::Ngram(hlm_ngram::NgramConfig::trigram(corpus.vocab().len())),
    ];
    let engine = hlm_engine::Engine::new(corpus.clone());
    for _ in 0..3 {
        let results = engine.train_many(&specs, &ids, hlm_corpus::Month(i32::MAX));
        assert!(results.iter().all(Result::is_ok));
    }
    let snap = hlm_obs::global().snapshot();
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(
        counter("par.pool_reused") >= 2,
        "later dispatches must reuse the persistent pool's workers"
    );
    assert!(
        counter("par.pool_spawned") <= 6,
        "workers spawn at most once per slot (≤6 background workers for 7 threads)"
    );
    hlm_obs::install(hlm_obs::Recorder::noop());

    // Restore the process-global knobs for any later process reuse.
    hlm_par::set_par_threshold(None);
    hlm_engine::set_threads(0);
}
