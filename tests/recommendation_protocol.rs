//! Invariants of the sliding-window recommendation evaluation across model
//! families.

use hlm_corpus::{Month, SlidingWindows};
use hlm_eval::{evaluate_recommender, RandomRecommender, RecEvalConfig};
use hlm_ngram::NgramConfig;
use hlm_tests::{quick_lda_config, test_corpus, test_split};

fn protocol() -> RecEvalConfig {
    RecEvalConfig {
        windows: SlidingWindows::new(Month::from_ym(2013, 1), 12, 4, 4).collect(),
        thresholds: vec![0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8],
        retrain_per_window: false,
        require_history: true,
    }
}

#[test]
fn counting_invariants_hold_for_every_method() {
    let corpus = test_corpus(400, 21);
    let split = test_split(&corpus);
    let cfg = protocol();
    let m = corpus.vocab().len();

    let lda = hlm_core::LdaRecommenderFactory::new(quick_lda_config(3, m));
    let chh = hlm_core::ChhRecommenderFactory { depth: 2 };
    let ngram = hlm_core::NgramRecommenderFactory::new(NgramConfig::bigram(m));
    let random = RandomRecommender::new(m);

    for factory in [
        &lda as &dyn hlm_eval::RecommenderFactory,
        &chh,
        &ngram,
        &random,
    ] {
        let pts = evaluate_recommender(factory, &corpus, &split.train, &split.test, &cfg);
        assert_eq!(pts.len(), cfg.thresholds.len(), "{}", factory.name());
        for p in &pts {
            // correct <= retrieved, correct <= relevant.
            assert!(
                p.correct.mean <= p.retrieved.mean + 1e-9,
                "{}: correct {} > retrieved {}",
                factory.name(),
                p.correct.mean,
                p.retrieved.mean
            );
            assert!(
                p.correct.mean <= p.relevant.mean + 1e-9,
                "{}: correct beyond relevant",
                factory.name()
            );
            // Measures in range.
            for v in [p.recall.mean, p.f1.mean] {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&v),
                    "{}: out of range",
                    factory.name()
                );
            }
        }
        // Retrieval is monotone non-increasing in the threshold.
        for pair in pts.windows(2) {
            assert!(
                pair[1].retrieved.mean <= pair[0].retrieved.mean + 1e-9,
                "{}: retrieval not monotone",
                factory.name()
            );
        }
        // phi = 0 retrieves every unowned product: recall is 1.
        assert!(
            (pts[0].recall.mean - 1.0).abs() < 1e-9,
            "{}: recall at phi 0 is {}",
            factory.name(),
            pts[0].recall.mean
        );
    }
}

#[test]
fn trained_models_beat_random_on_precision() {
    let corpus = test_corpus(500, 22);
    let split = test_split(&corpus);
    let cfg = protocol();
    let m = corpus.vocab().len();

    // Random precision at phi=0 = base rate of relevant among unowned.
    let random = evaluate_recommender(
        &RandomRecommender::new(m),
        &corpus,
        &split.train,
        &split.test,
        &cfg,
    );
    let base_rate = random[0].precision.mean;

    let lda = hlm_core::LdaRecommenderFactory::new(quick_lda_config(3, m));
    let pts = evaluate_recommender(&lda, &corpus, &split.train, &split.test, &cfg);
    // At phi = 0.05 LDA should be selective and beat the base rate.
    let p_lda = pts[2].precision.mean;
    assert!(
        p_lda > base_rate * 1.3,
        "LDA precision {p_lda} should beat random base rate {base_rate}"
    );
}

#[test]
fn paper_windows_are_thirteen() {
    let windows: Vec<_> = SlidingWindows::paper_evaluation().collect();
    assert_eq!(windows.len(), 13);
    // The harness accepts them directly.
    let corpus = test_corpus(150, 23);
    let split = test_split(&corpus);
    let cfg = RecEvalConfig {
        windows,
        thresholds: vec![0.1],
        retrain_per_window: false,
        require_history: true,
    };
    let chh = hlm_core::ChhRecommenderFactory { depth: 2 };
    let pts = evaluate_recommender(&chh, &corpus, &split.train, &split.test, &cfg);
    assert_eq!(pts[0].retrieved.n, 13, "one observation per window");
}

#[test]
fn bpmf_counts_are_consistent_too() {
    let corpus = test_corpus(200, 24);
    let ids: Vec<_> = corpus.ids().take(80).collect();
    let windows: Vec<_> = SlidingWindows::new(Month::from_ym(2013, 1), 12, 6, 2).collect();
    let cfg = hlm_bpmf::BpmfConfig {
        n_iters: 20,
        burn_in: 8,
        n_factors: 4,
        ..Default::default()
    };
    let eval = hlm_core::evaluate_bpmf(&corpus, &ids, &windows, &[0.5, 0.9, 0.99], &cfg, false);
    for p in &eval.points {
        assert!(p.correct.mean <= p.retrieved.mean + 1e-9);
        assert!(p.correct.mean <= p.relevant.mean + 1e-9);
    }
    assert!(eval.scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
}
