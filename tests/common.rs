//! Shared fixtures for the cross-crate integration tests.

use hlm_corpus::{CompanyId, Corpus, Split};
use hlm_datagen::GeneratorConfig;
use hlm_lda::{GibbsTrainer, LdaConfig, LdaModel, WeightedDoc};

/// A small but structured corpus: enough companies for every model to find
/// signal, fast enough for CI.
pub fn test_corpus(n: usize, seed: u64) -> Corpus {
    hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(n, seed))
}

/// The paper's 70/10/20 split with a fixed seed.
pub fn test_split(corpus: &Corpus) -> Split {
    Split::paper(corpus, 99)
}

/// Quick LDA settings for integration tests.
pub fn quick_lda_config(n_topics: usize, vocab_size: usize) -> LdaConfig {
    LdaConfig {
        n_topics,
        vocab_size,
        n_iters: 80,
        burn_in: 40,
        sample_lag: 5,
        seed: 7,
        alpha: None,
        beta: 0.1,
        ..Default::default()
    }
}

/// Trains a quick LDA on the given companies' full install bases.
pub fn quick_lda(
    corpus: &Corpus,
    ids: &[CompanyId],
    n_topics: usize,
) -> (LdaModel, Vec<WeightedDoc>) {
    let docs = hlm_core::representations::binary_docs(corpus, ids);
    let model = GibbsTrainer::new(quick_lda_config(n_topics, corpus.vocab().len())).fit(&docs);
    (model, docs)
}

/// Product sequences (as index vectors) for the given companies.
pub fn index_sequences(corpus: &Corpus, ids: &[CompanyId]) -> Vec<Vec<usize>> {
    ids.iter()
        .map(|&id| {
            corpus
                .company(id)
                .product_sequence()
                .into_iter()
                .map(|p| p.index())
                .collect()
        })
        .collect()
}
