//! Seed-to-output determinism across the whole stack: identical seeds must
//! give bit-identical corpora, models, and evaluation numbers; different
//! seeds must differ. This is what makes every reproduced table
//! re-generable.

use hlm_lda::document_completion_perplexity;
use hlm_tests::{index_sequences, quick_lda, test_corpus, test_split};

#[test]
fn corpus_generation_is_bit_deterministic() {
    let a = test_corpus(200, 61);
    let b = test_corpus(200, 61);
    for (ca, cb) in a.companies().iter().zip(b.companies()) {
        assert_eq!(ca.events(), cb.events());
        assert_eq!(ca.revenue_musd, cb.revenue_musd);
        assert_eq!(ca.site_count, cb.site_count);
    }
}

#[test]
fn splits_and_lda_perplexities_are_deterministic() {
    let corpus = test_corpus(300, 62);
    let s1 = test_split(&corpus);
    let s2 = test_split(&corpus);
    assert_eq!(s1.train, s2.train);

    let (m1, _) = quick_lda(&corpus, &s1.train, 3);
    let (m2, _) = quick_lda(&corpus, &s2.train, 3);
    assert_eq!(
        m1.phi(),
        m2.phi(),
        "Gibbs chains with equal seeds must agree"
    );

    let test_docs = hlm_core::representations::binary_docs(&corpus, &s1.test);
    let p1 = document_completion_perplexity(&m1, &test_docs);
    let p2 = document_completion_perplexity(&m2, &test_docs);
    assert_eq!(p1, p2);
}

#[test]
fn different_seeds_change_the_corpus_and_the_models() {
    let a = test_corpus(200, 63);
    let b = test_corpus(200, 64);
    let differs = a
        .companies()
        .iter()
        .zip(b.companies())
        .any(|(x, y)| x.product_set() != y.product_set());
    assert!(differs);
}

#[test]
fn full_recommendation_run_is_reproducible() {
    use hlm_corpus::{Month, SlidingWindows};
    use hlm_eval::{evaluate_recommender, RecEvalConfig};

    let corpus = test_corpus(300, 65);
    let split = test_split(&corpus);
    let cfg = RecEvalConfig {
        windows: SlidingWindows::new(Month::from_ym(2013, 1), 12, 6, 3).collect(),
        thresholds: vec![0.05, 0.1],
        retrain_per_window: false,
        require_history: true,
    };
    let factory =
        hlm_core::LdaRecommenderFactory::new(hlm_tests::quick_lda_config(3, corpus.vocab().len()));
    let run = || {
        evaluate_recommender(&factory, &corpus, &split.train, &split.test, &cfg)
            .into_iter()
            .map(|p| (p.recall.mean, p.f1.mean, p.retrieved.mean))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn lstm_training_is_reproducible() {
    use hlm_lstm::{AdamOptions, LstmConfig, LstmLm, TrainOptions, Trainer};
    let corpus = test_corpus(150, 66);
    let ids: Vec<_> = corpus.ids().collect();
    let seqs = index_sequences(&corpus, &ids);
    let train = |seed: u64| {
        let mut m = LstmLm::new(
            LstmConfig {
                vocab_size: 38,
                hidden_size: 10,
                n_layers: 1,
                dropout: 0.3,
                ..Default::default()
            },
            seed,
        );
        Trainer::new(TrainOptions {
            epochs: 2,
            batch_size: 8,
            adam: AdamOptions::default(),
            patience: 0,
            seed: 5,
            verbose: false,
            ..Default::default()
        })
        .fit(&mut m, &seqs, &[]);
        m.predict_next(&[0, 5])
    };
    assert_eq!(train(9), train(9));
    assert_ne!(train(9), train(10));
}
