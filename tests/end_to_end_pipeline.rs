//! End-to-end pipeline: generate → split → train every model family →
//! compare goodness of fit, reproducing the paper's Table-1 ordering at
//! integration-test scale.

use hlm_lda::document_completion_perplexity;
use hlm_lstm::{AdamOptions, LstmConfig, LstmLm, TrainOptions, Trainer};
use hlm_ngram::{NgramConfig, NgramLm};
use hlm_tests::{index_sequences, quick_lda_config, test_corpus, test_split};

#[test]
fn perplexity_ordering_matches_table_1() {
    let corpus = test_corpus(600, 11);
    let split = test_split(&corpus);
    let m = corpus.vocab().len();

    // LDA (3 topics, binary input).
    let train_docs = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test_docs = hlm_core::representations::binary_docs(&corpus, &split.test);
    let lda = hlm_lda::GibbsTrainer::new(quick_lda_config(3, m)).fit(&train_docs);
    let ppl_lda = document_completion_perplexity(&lda, &test_docs);

    // Sequence models.
    let train_seqs = index_sequences(&corpus, &split.train);
    let test_seqs = index_sequences(&corpus, &split.test);
    let ppl_uni = NgramLm::fit(NgramConfig::unigram(m), &train_seqs).perplexity(&test_seqs);
    let ppl_bi = NgramLm::fit(NgramConfig::bigram(m), &train_seqs).perplexity(&test_seqs);

    let mut lstm = LstmLm::new(
        LstmConfig {
            vocab_size: m,
            hidden_size: 64,
            n_layers: 1,
            dropout: 0.1,
            ..Default::default()
        },
        5,
    );
    Trainer::new(TrainOptions {
        epochs: 5,
        batch_size: 16,
        adam: AdamOptions {
            learning_rate: 5e-3,
            ..Default::default()
        },
        patience: 0,
        seed: 3,
        verbose: false,
        ..Default::default()
    })
    .fit(&mut lstm, &train_seqs, &[]);
    let ppl_lstm = lstm.perplexity(&test_seqs);

    // Table 1 ordering: LDA < LSTM < n-gram < unigram.
    assert!(
        ppl_lda < ppl_lstm,
        "LDA {ppl_lda} must beat LSTM {ppl_lstm} (paper Table 1)"
    );
    assert!(
        ppl_lstm < ppl_uni,
        "LSTM {ppl_lstm} must beat unigram {ppl_uni}"
    );
    assert!(
        ppl_bi < ppl_uni,
        "bigram {ppl_bi} must beat unigram {ppl_uni}"
    );
    // And the margin between LDA and the unigram baseline is large, as in
    // the paper's 8.5 vs 19.5.
    assert!(
        ppl_lda * 1.5 < ppl_uni,
        "LDA {ppl_lda} vs unigram {ppl_uni}"
    );
}

#[test]
fn lda_topics_recover_planted_profile_structure() {
    let corpus = test_corpus(500, 12);
    let ids: Vec<_> = corpus.ids().collect();
    let (model, _) = hlm_tests::quick_lda(&corpus, &ids, 3);

    // Each planted profile has an anchor product; the trained topics should
    // separate at least two anchors into different argmax topics.
    let anchor = |name: &str| corpus.vocab().id(name).expect("standard category").index();
    let topic_of = |w: usize| -> usize {
        let col: Vec<f64> = (0..3).map(|k| model.phi().get(k, w)).collect();
        hlm_linalg::vector::argmax(&col).expect("3 topics")
    };
    let t_hw = topic_of(anchor("server_HW"));
    let t_sw = topic_of(anchor("DBMS"));
    let t_comms = topic_of(anchor("telephony"));
    let distinct: std::collections::HashSet<usize> = [t_hw, t_sw, t_comms].into_iter().collect();
    assert!(
        distinct.len() >= 2,
        "anchors should split across topics: hw={t_hw} sw={t_sw} comms={t_comms}"
    );
}

#[test]
fn sequence_models_pick_up_generator_order() {
    // After seeing a foundational product, sequence models should rank
    // same-stage/next-stage products above late-stage cloud products.
    let corpus = test_corpus(800, 13);
    let ids: Vec<_> = corpus.ids().collect();
    let seqs = index_sequences(&corpus, &ids);
    let os = corpus.vocab().id("OS").unwrap().index();
    let cloud = corpus.vocab().id("cloud_infrastructure").unwrap().index();
    let server = corpus.vocab().id("server_HW").unwrap().index();

    let bigram = NgramLm::fit(NgramConfig::bigram(corpus.vocab().len()), &seqs);
    let d = bigram.predict_next(&[os]);
    assert!(
        d[server] > d[cloud],
        "after OS, server_HW ({}) should outrank cloud ({})",
        d[server],
        d[cloud]
    );

    let chh = hlm_chh::ExactChh::fit(2, corpus.vocab().len(), &seqs);
    let d2 = chh.predict_next(&[os]);
    assert!(
        d2[server] > d2[cloud],
        "CHH agrees: {} vs {}",
        d2[server],
        d2[cloud]
    );
}

#[test]
fn every_model_produces_proper_score_vectors() {
    let corpus = test_corpus(300, 14);
    let ids: Vec<_> = corpus.ids().collect();
    let seqs = index_sequences(&corpus, &ids);
    let m = corpus.vocab().len();
    let history: Vec<usize> = seqs
        .iter()
        .find(|s| s.len() >= 3)
        .expect("non-trivial history")[..3]
        .to_vec();

    let check = |name: &str, scores: Vec<f64>| {
        assert_eq!(scores.len(), m, "{name} length");
        assert!(
            scores.iter().all(|&s| (0.0..=1.0 + 1e-9).contains(&s)),
            "{name} range"
        );
        assert!(scores.iter().all(|s| s.is_finite()), "{name} finite");
    };
    let (lda, _) = hlm_tests::quick_lda(&corpus, &ids, 3);
    check("LDA", {
        let doc: Vec<(usize, f64)> = history.iter().map(|&w| (w, 1.0)).collect();
        lda.predict_products(&doc)
    });
    check(
        "ngram",
        NgramLm::fit(NgramConfig::trigram(m), &seqs).predict_next(&history),
    );
    check(
        "CHH",
        hlm_chh::ExactChh::fit(2, m, &seqs).predict_next(&history),
    );
    let lstm = LstmLm::new(
        LstmConfig {
            vocab_size: m,
            hidden_size: 12,
            n_layers: 1,
            dropout: 0.0,
            ..Default::default()
        },
        1,
    );
    check("LSTM", lstm.predict_next(&history));
}
