//! The observability contract (DESIGN.md §3.4): the recorder is a read-only
//! observer. Enabling it — at any thread count — must leave every model
//! output bit-identical, and the counter totals it collects must themselves
//! be deterministic across thread counts (they are a function of the work,
//! not of the schedule). Per-worker histograms (busy time, tasks per
//! worker, queue depth) and the pool-lifecycle counters
//! (`par.pool_spawned` / `par.pool_reused`, which depend on how many
//! workers earlier runs already left parked) are wall-clock/schedule
//! dependent by nature and are deliberately excluded from the cross-thread
//! equality.
//!
//! Also pins the JSONL event-log schema (version, record types, required
//! keys, bucket labels) so downstream consumers can rely on it, and checks
//! both sink formats never emit non-finite numbers.
//!
//! Everything lives in one test function: the thread override and the
//! recorder registry are process-global, and the default multi-threaded
//! test harness would otherwise race two tests' installs against each other.

use hlm_lda::document_completion_perplexity;
use hlm_tests::{quick_lda, test_corpus, test_split};
use serde::Value;

/// Field lookup on a parsed JSON object (the vendored `Value` keeps maps as
/// ordered pairs).
fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// LDA train + perplexity, summarized as raw bits so `==` is bit-identity.
fn workload(corpus: &hlm_corpus::Corpus, split: &hlm_corpus::Split) -> (Vec<u64>, u64) {
    let (model, _) = quick_lda(corpus, &split.train, 3);
    let test_docs = hlm_core::representations::binary_docs(corpus, &split.test);
    let phi: Vec<u64> = model.phi().as_slice().iter().map(|x| x.to_bits()).collect();
    let ppl = document_completion_perplexity(&model, &test_docs).to_bits();
    (phi, ppl)
}

#[test]
fn recorder_is_a_pure_observer_and_sinks_keep_their_schema() {
    let corpus = test_corpus(200, 71);
    let split = test_split(&corpus);

    // Engage the pool even on this deliberately small workload, so the
    // parallel paths are the ones being observed.
    hlm_par::set_par_threshold(Some(0));

    // Baseline: recorder disabled (the default no-op), serial run.
    hlm_engine::set_threads(1);
    let baseline = workload(&corpus, &split);

    // Recorder enabled at 1, 2 and 7 threads: outputs must stay bit-identical
    // to the instrumented-off baseline, and counter totals must agree across
    // thread counts.
    let mut counter_sets: Vec<Vec<(String, u64)>> = Vec::new();
    let mut last_snapshot = None;
    for threads in [1usize, 2, 7] {
        hlm_engine::set_threads(threads);
        assert_eq!(hlm_engine::effective_threads(), threads);
        hlm_obs::install(hlm_obs::Recorder::enabled());
        let out = workload(&corpus, &split);
        assert_eq!(
            out, baseline,
            "{threads}-thread run with recorder enabled differs from baseline"
        );
        let snap = hlm_obs::global().snapshot();
        counter_sets.push(
            snap.counters
                .iter()
                .filter(|(k, _)| !k.starts_with("par.pool_"))
                .cloned()
                .collect(),
        );
        last_snapshot = Some(snap);
    }
    // Restore globals for any later process reuse.
    hlm_obs::install(hlm_obs::Recorder::noop());
    hlm_engine::set_threads(0);
    hlm_par::set_par_threshold(None);

    // Counters are totals over the work done, not over the schedule: every
    // thread count must produce the same set with the same values
    // (pool-lifecycle counters excluded above — how many workers spawn vs.
    // get reused depends on what earlier dispatches left parked).
    assert_eq!(
        counter_sets[0], counter_sets[1],
        "counter totals differ between 1 and 2 threads"
    );
    assert_eq!(
        counter_sets[0], counter_sets[2],
        "counter totals differ between 1 and 7 threads"
    );
    let counter = |name: &str| -> u64 {
        counter_sets[0]
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing counter {name:?}"))
    };
    assert!(counter("par.runs") > 0);
    assert!(counter("par.tasks") > 0);
    assert_eq!(counter("lda.gibbs.sweeps"), 80);

    let snap = last_snapshot.expect("at least one snapshot");
    assert!(
        snap.traces
            .iter()
            .any(|t| t.name == "lda.gibbs.log_likelihood" && t.value.is_finite()),
        "per-sweep log-likelihood trace missing"
    );

    // --- JSONL golden schema -------------------------------------------
    let jsonl = snap.to_jsonl();
    hlm_obs::json::check_finite(&jsonl).expect("JSONL must contain only finite numbers");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(!lines.is_empty());
    let meta: Value = serde_json::from_str(lines[0]).expect("meta line is valid JSON");
    assert_eq!(get(&meta, "type").and_then(as_str), Some("meta"));
    assert_eq!(
        get(&meta, "schema").and_then(as_u64),
        Some(u64::from(hlm_obs::SCHEMA_VERSION))
    );
    for key in ["spans", "counters", "gauges", "histograms", "traces"] {
        assert!(
            get(&meta, key).and_then(as_u64).is_some(),
            "meta is missing {key:?}: {:?}",
            lines[0]
        );
    }
    for line in &lines[1..] {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("invalid JSONL line {line:?}: {e}"));
        let kind = get(&v, "type").and_then(as_str).expect("record has a type");
        let required: &[&str] = match kind {
            "span" => &["seq", "path", "start_ms", "duration_ms"],
            "counter" => &["name", "value"],
            "gauge" => &["name", "value"],
            "histogram" => &["name", "count", "sum", "min", "max", "buckets"],
            "trace" => &["seq", "name", "iteration", "value"],
            other => panic!("unknown record type {other:?} in {line:?}"),
        };
        for key in required {
            match get(&v, key) {
                None | Some(Value::Null) => {
                    panic!("record {line:?} is missing or nulls {key:?}")
                }
                Some(_) => {}
            }
        }
        if kind == "histogram" {
            let Some(Value::Seq(buckets)) = get(&v, "buckets") else {
                panic!("buckets is not an array in {line:?}");
            };
            assert_eq!(buckets.len(), hlm_obs::BUCKET_BOUNDS.len() + 1);
            let le = |b: &Value| get(b, "le").and_then(as_str).map(str::to_string);
            assert_eq!(le(&buckets[0]).as_deref(), Some("1e-6"));
            assert_eq!(le(buckets.last().unwrap()).as_deref(), Some("+Inf"));
        }
    }
    // Counter records in the log match the snapshot totals (the snapshot
    // includes the pool-lifecycle counters the equality check filtered).
    let logged_counters = lines[1..]
        .iter()
        .filter(|l| l.contains("\"type\":\"counter\""))
        .count();
    assert_eq!(logged_counters, snap.counters.len());

    // --- Prometheus snapshot -------------------------------------------
    let prom = snap.to_prometheus();
    assert!(prom.contains("hlm_par_tasks"), "{prom}");
    assert!(prom.contains("hlm_lda_gibbs_sweeps 80"), "{prom}");
    assert!(
        prom.lines().any(|l| l.starts_with("# TYPE")),
        "prometheus output must carry TYPE comments"
    );
    for token in ["NaN", "inf"] {
        assert!(
            !prom.contains(token),
            "prometheus output contains non-finite token {token:?}"
        );
    }
}
