//! Integration coverage for the pattern-mining family (Apriori vs CHH on
//! generated data) and the CSV interchange path at realistic scale.

use hlm_chh::{AprioriConfig, AprioriModel, ExactChh};
use hlm_corpus::io::{from_csv, to_csv};
use hlm_tests::{index_sequences, test_corpus};

#[test]
fn apriori_mines_profile_structure_from_generated_corpus() {
    let corpus = test_corpus(600, 71);
    let ids: Vec<_> = corpus.ids().collect();
    let baskets = index_sequences(&corpus, &ids);
    let model = AprioriModel::mine(
        corpus.vocab().len(),
        &baskets,
        &AprioriConfig {
            min_support: 0.05,
            min_confidence: 0.3,
            max_len: 3,
        },
    );
    assert!(
        model.rules().len() > 10,
        "rich rule set expected, got {}",
        model.rules().len()
    );

    // Rules with high lift should connect same-profile products: check that
    // at least one high-lift rule pairs two datacenter-profile categories.
    let id_of = |name: &str| corpus.vocab().id(name).expect("standard category").index();
    let datacenter: Vec<usize> = [
        "server_HW",
        "storage_HW",
        "mainframs",
        "midrange",
        "data_archiving",
    ]
    .iter()
    .map(|n| id_of(n))
    .collect();
    let has_profile_rule = model.rules().iter().any(|r| {
        r.lift > 1.5
            && r.antecedent.iter().all(|i| datacenter.contains(i))
            && datacenter.contains(&r.consequent)
    });
    assert!(has_profile_rule, "expected a high-lift datacenter rule");

    // Every reported rule satisfies the thresholds and basic identities.
    for r in model.rules() {
        assert!(r.support >= 0.05 - 1e-12);
        assert!(r.confidence >= 0.3 - 1e-12);
        assert!(r.confidence <= 1.0 + 1e-12);
        assert!(r.lift > 0.0);
        // support(rule) <= support(antecedent): confidence = s/s_ant <= 1.
        let s_ant = model
            .support_of(&r.antecedent)
            .expect("antecedent frequent");
        assert!(r.support <= s_ant + 1e-12);
    }
}

#[test]
fn apriori_and_chh_agree_on_strong_pairwise_structure() {
    // The two Section-3.2 miners look at different views (sets vs order),
    // but a near-deterministic pair should surface in both.
    let corpus = test_corpus(600, 72);
    let ids: Vec<_> = corpus.ids().collect();
    let seqs = index_sequences(&corpus, &ids);
    let m = corpus.vocab().len();

    let apriori = AprioriModel::mine(
        m,
        &seqs,
        &AprioriConfig {
            min_support: 0.05,
            min_confidence: 0.4,
            max_len: 2,
        },
    );
    let chh = ExactChh::fit(1, m, &seqs);
    let chh_rules = chh.heavy_hitters(1, 0.2, 20);

    // For each CHH rule context->item, the itemset {context, item} should be
    // frequent in the Apriori sense reasonably often.
    let mut both = 0usize;
    for rule in chh_rules.iter().take(20) {
        let mut itemset = vec![rule.context[0], rule.item];
        itemset.sort_unstable();
        if apriori.support_of(&itemset).is_some() {
            both += 1;
        }
    }
    assert!(
        both >= chh_rules.len().min(20) / 2,
        "at least half of the strong CHH pairs are frequent itemsets ({both})"
    );
}

#[test]
fn csv_round_trip_preserves_a_generated_corpus_exactly() {
    let corpus = test_corpus(400, 73);
    let (companies_csv, events_csv) = to_csv(&corpus);
    let back = from_csv(corpus.vocab().clone(), &companies_csv, &events_csv)
        .expect("generated corpus parses back");
    assert_eq!(back.len(), corpus.len());
    assert_eq!(back.total_tokens(), corpus.total_tokens());
    for (a, b) in corpus.companies().iter().zip(back.companies()) {
        assert_eq!(a.events(), b.events(), "events of {}", a.name);
        assert_eq!(a.site_count, b.site_count);
        assert_eq!(a.country, b.country);
    }
    // Derived structures match exactly too.
    assert_eq!(back.document_frequencies(), corpus.document_frequencies());
    assert_eq!(back.unigram_distribution(), corpus.unigram_distribution());
}

#[test]
fn csv_is_stable_under_double_round_trip() {
    let corpus = test_corpus(150, 74);
    let (c1, e1) = to_csv(&corpus);
    let back = from_csv(corpus.vocab().clone(), &c1, &e1).expect("first parse");
    let (c2, e2) = to_csv(&back);
    assert_eq!(c1, c2, "companies CSV must be a fixed point");
    assert_eq!(e1, e2, "events CSV must be a fixed point");
}

#[test]
fn streaming_chh_tracks_exact_on_generated_sequences() {
    let corpus = test_corpus(500, 75);
    let ids: Vec<_> = corpus.ids().collect();
    let seqs = index_sequences(&corpus, &ids);
    let m = corpus.vocab().len();

    let exact = ExactChh::fit(1, m, &seqs);
    let mut stream = hlm_chh::StreamingChh::new(1, m, 64, 8);
    for s in &seqs {
        stream.observe_sequence(s);
    }
    // The strongest exact rules must survive the budgeted sketch with
    // approximately correct probabilities.
    let top = exact.heavy_hitters(1, 0.15, 20);
    assert!(!top.is_empty(), "strong rules exist at this scale");
    let mut tracked = 0usize;
    for rule in top.iter().take(5) {
        let p = stream.conditional_probability(&rule.context, rule.item);
        if p > 0.0 {
            tracked += 1;
            assert!(
                (p - rule.probability).abs() < 0.25,
                "sketch p {p} vs exact {} for {:?}->{}",
                rule.probability,
                rule.context,
                rule.item
            );
        }
    }
    assert!(
        tracked >= 3,
        "sketch should keep most of the top rules ({tracked}/5)"
    );
}
