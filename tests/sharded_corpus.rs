//! Out-of-core sharded pipeline, end to end (PR 6).
//!
//! The contract under test, at every layer:
//!
//! * **Datagen**: streaming shard generation writes *exactly* the companies
//!   of the in-memory generator, bit for bit, at any shard count.
//! * **Training**: sharded collapsed Gibbs over a disk [`ShardStore`]
//!   produces the same model — to the last ulp — as the in-memory trainer
//!   on `binary_docs`; online VB is deterministic for a fixed shard layout
//!   across backing stores.
//! * **Resilience**: killing a sharded run mid-pass and resuming from the
//!   checkpoint store reproduces the uninterrupted run exactly.

use hlm_corpus::{CorpusSource, MemShardSource, ShardStore};
use hlm_datagen::GeneratorConfig;
use hlm_engine::{
    fit_lda, fit_lda_sharded_gibbs, fit_lda_sharded_online_vb, LdaEstimator, TrainPlan,
};
use hlm_lda::{LdaConfig, OnlineVbOptions};
use hlm_resilience::RunGuard;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hlm_shard_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn lda_config(vocab_size: usize) -> LdaConfig {
    LdaConfig {
        n_topics: 3,
        vocab_size,
        n_iters: 30,
        burn_in: 15,
        sample_lag: 5,
        seed: 11,
        ..Default::default()
    }
}

#[test]
fn sharded_datagen_is_bit_identical_to_in_memory_at_any_shard_count() {
    let cfg = GeneratorConfig::with_size_and_seed(250, 31);
    let reference = hlm_datagen::generate(&cfg);
    for n_shards in [1usize, 2, 4] {
        let dir = tmp_dir(&format!("datagen_{n_shards}"));
        let store = hlm_datagen::generate_sharded(&cfg, n_shards, &dir).expect("stream-generate");
        assert!(store.vocab().iter().eq(reference.vocab().iter()));
        assert_eq!(store.n_companies(), reference.len());
        let mut streamed = Vec::new();
        for s in 0..store.n_shards() {
            streamed.extend(store.read_shard(s).expect("shard reads back"));
        }
        assert_eq!(
            streamed,
            reference.companies(),
            "shard count {n_shards} changed the corpus"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sharded_gibbs_over_disk_matches_in_memory_to_the_last_ulp() {
    let cfg = GeneratorConfig::with_size_and_seed(220, 33);
    let corpus = hlm_datagen::generate(&cfg);
    let ids: Vec<_> = corpus.ids().collect();
    let docs = hlm_core::representations::binary_docs(&corpus, &ids);
    let lda = lda_config(corpus.vocab().len());

    let reference = fit_lda(lda.clone(), LdaEstimator::Gibbs, &docs).expect("in-memory fit");

    for n_shards in [1usize, 3] {
        let dir = tmp_dir(&format!("gibbs_{n_shards}"));
        let store = hlm_datagen::generate_sharded(&cfg, n_shards, &dir).expect("stream-generate");
        let fit =
            fit_lda_sharded_gibbs(lda.clone(), &store, dir.join("work"), TrainPlan::default())
                .expect("sharded fit");
        assert_eq!(
            fit.model.phi().as_slice(),
            reference.phi().as_slice(),
            "phi diverged at {n_shards} shards"
        );
        assert_eq!(fit.model.alpha(), reference.alpha());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn online_vb_is_identical_across_backing_stores() {
    let cfg = GeneratorConfig::with_size_and_seed(220, 35);
    let corpus = hlm_datagen::generate(&cfg);
    let lda = lda_config(corpus.vocab().len());
    let opts = OnlineVbOptions {
        epochs: 2,
        ..OnlineVbOptions::default()
    };

    let dir = tmp_dir("vb_stores");
    let store = hlm_datagen::generate_sharded(&cfg, 3, &dir).expect("stream-generate");
    let from_disk =
        fit_lda_sharded_online_vb(lda.clone(), opts.clone(), &store, TrainPlan::default())
            .expect("online VB over disk shards");

    // Same layout served from RAM: the backing store must not matter.
    let mem = MemShardSource::new(&corpus, store.manifest().shard_size as usize);
    let from_ram = fit_lda_sharded_online_vb(lda, opts, &mem, TrainPlan::default())
        .expect("online VB over in-memory shards");

    assert_eq!(
        from_disk.model.phi().as_slice(),
        from_ram.model.phi().as_slice()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_sharded_gibbs_resumes_to_the_uninterrupted_result() {
    let cfg = GeneratorConfig::with_size_and_seed(256, 37);
    let lda = lda_config(38);
    let dir = tmp_dir("kill_resume");
    let store = hlm_datagen::generate_sharded(&cfg, 4, &dir).expect("stream-generate");
    let n_shards = store.n_shards();

    let uninterrupted = fit_lda_sharded_gibbs(
        lda.clone(),
        &store,
        dir.join("work_ref"),
        TrainPlan::default(),
    )
    .expect("uninterrupted fit");

    // Kill mid-sweep (shard 2 of 4 in sweep 20), past burn-in so the phi
    // accumulator state is live when the process dies.
    let ckpt = dir.join("ckpt");
    let killed = fit_lda_sharded_gibbs(
        lda.clone(),
        &store,
        dir.join("work"),
        TrainPlan::default()
            .on_disk(&ckpt)
            .expect("checkpoint dir")
            .with_guard(RunGuard::unlimited().abort_at_iteration(20 * n_shards as u64 + 2)),
    );
    let err = killed.expect_err("guard kills the run");
    assert!(err.to_string().contains("cancelled"), "{err}");

    let resumed = fit_lda_sharded_gibbs(
        lda,
        &store,
        dir.join("work"),
        TrainPlan::default()
            .on_disk(&ckpt)
            .expect("checkpoint dir")
            .resume(true),
    )
    .expect("resumed fit");
    assert!(resumed.resumed_from.is_some());
    assert_eq!(
        resumed.model.phi().as_slice(),
        uninterrupted.model.phi().as_slice(),
        "kill/resume changed the model"
    );
    assert_eq!(resumed.model.alpha(), uninterrupted.model.alpha());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_online_vb_resumes_to_the_uninterrupted_result() {
    let cfg = GeneratorConfig::with_size_and_seed(256, 39);
    let lda = lda_config(38);
    let opts = OnlineVbOptions {
        epochs: 3,
        ..OnlineVbOptions::default()
    };
    let dir = tmp_dir("vb_kill_resume");
    let store = hlm_datagen::generate_sharded(&cfg, 4, &dir).expect("stream-generate");

    let uninterrupted =
        fit_lda_sharded_online_vb(lda.clone(), opts.clone(), &store, TrainPlan::default())
            .expect("uninterrupted fit");

    let ckpt = dir.join("ckpt");
    let killed = fit_lda_sharded_online_vb(
        lda.clone(),
        opts.clone(),
        &store,
        TrainPlan::default()
            .on_disk(&ckpt)
            .expect("checkpoint dir")
            .with_guard(RunGuard::unlimited().abort_at_iteration(6)),
    );
    assert!(killed.is_err(), "guard kills the run");

    let resumed = fit_lda_sharded_online_vb(
        lda,
        opts,
        &store,
        TrainPlan::default()
            .on_disk(&ckpt)
            .expect("checkpoint dir")
            .resume(true),
    )
    .expect("resumed fit");
    assert!(resumed.resumed_from.is_some());
    assert_eq!(
        resumed.model.phi().as_slice(),
        uninterrupted.model.phi().as_slice(),
        "kill/resume changed the online-VB model"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_store_exposes_stats_without_loading_companies() {
    // `hlm stats` on a sharded corpus reads only the manifest: check the
    // manifest alone carries the numbers stats prints.
    let cfg = GeneratorConfig::with_size_and_seed(250, 41);
    let dir = tmp_dir("manifest_stats");
    let store = hlm_datagen::generate_sharded(&cfg, 4, &dir).expect("stream-generate");
    let manifest = ShardStore::open(&dir).expect("reopen").manifest().clone();
    assert_eq!(manifest.n_companies, 250);
    assert_eq!(manifest.vocab.len(), 38);
    assert_eq!(
        manifest.shards.iter().map(|s| s.tokens).sum::<u64>(),
        manifest.total_tokens
    );
    let events: usize = (0..store.n_shards())
        .flat_map(|s| store.read_shard(s).expect("shard reads back"))
        .map(|c| c.events().len())
        .sum();
    assert_eq!(events as u64, manifest.total_tokens);
    let _ = std::fs::remove_dir_all(&dir);
}
