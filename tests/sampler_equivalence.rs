//! Statistical equivalence of the Gibbs sampler kernels: the alias-MH
//! sampler approximates the collapsed conditional with sweep-stale topic
//! totals and corrects with Metropolis–Hastings, so it is *not*
//! bit-identical to the exact kernels — the contract is statistical.
//! Fitted on the same corpus over independent seeds, its held-out
//! document-completion perplexity must land within the exact bucket
//! sampler's bootstrap confidence interval (EXPERIMENTS.md, sampler
//! equivalence). Every seed is fixed, so the test is deterministic: it
//! either demonstrates the equivalence or the kernel changed.

use hlm_eval::bootstrap_mean_ci;
use hlm_lda::{document_completion_perplexity, GibbsTrainer, LdaConfig, SamplerChoice};
use hlm_tests::{test_corpus, test_split};

const SEEDS: u64 = 8;

#[test]
fn alias_mh_perplexity_matches_bucket_within_bootstrap_ci() {
    let corpus = test_corpus(400, 3);
    let split = test_split(&corpus);
    let train = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test = hlm_core::representations::binary_docs(&corpus, &split.test);

    // K = 32 sits in the bucket regime for `Auto`; forcing both kernels at
    // the same K compares samplers, not topic counts.
    let ppl = |sampler: SamplerChoice, seed: u64| {
        let cfg = LdaConfig {
            n_topics: 32,
            vocab_size: corpus.vocab().len(),
            n_iters: 160,
            burn_in: 80,
            sample_lag: 5,
            seed,
            beta: 0.1,
            sampler,
            ..Default::default()
        };
        document_completion_perplexity(&GibbsTrainer::new(cfg).fit(&train), &test)
    };

    let bucket: Vec<f64> = (0..SEEDS)
        .map(|i| ppl(SamplerChoice::Bucket, 100 + i))
        .collect();
    let alias: Vec<f64> = (0..SEEDS)
        .map(|i| ppl(SamplerChoice::AliasMh, 200 + i))
        .collect();

    let b = bootstrap_mean_ci(&bucket, 0.95, 2000, 42);
    let a = bootstrap_mean_ci(&alias, 0.95, 2000, 43);
    assert!(b.mean.is_finite() && a.mean.is_finite());

    // Two-sample overlap: the interval around each mean must cover the
    // other mean's distance. This is the claim BENCH_pr8.json's speedup
    // numbers rest on — faster is only a win if the model is as good.
    let diff = (a.mean - b.mean).abs();
    let tol = a.half_width + b.half_width;
    assert!(
        diff <= tol,
        "alias-MH perplexity {:.4} ± {:.4} is not within the bucket sampler's \
         bootstrap CI {:.4} ± {:.4} (diff {:.4} > tol {:.4})",
        a.mean,
        a.half_width,
        b.mean,
        b.half_width,
        diff,
        tol
    );

    // Both must also actually model the data: better than the uniform
    // baseline over the vocabulary.
    let uniform = corpus.vocab().len() as f64;
    assert!(a.mean < uniform && b.mean < uniform);
}
