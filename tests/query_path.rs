//! The PR-10 serving read path, end to end: cell-major `RepStore` remap
//! round-trips, byte-identical exact rankings through every entry point,
//! thread-count-independent fan-out, and the f32 recall-equivalence gate.

use hlm_core::{
    top_k_similar_scalar, ClusteredIndex, CompanyFilter, DistanceMetric, SalesApplication,
    StorePrecision,
};
use hlm_corpus::CompanyId;
use hlm_linalg::Matrix;
use std::sync::Arc;

/// Gaussian-ish blobs around `centers` well-separated centroids — the shape
/// IVF assumes, with nearest-neighbour gaps large enough that f32 rounding
/// cannot flip the top-10 boundary.
fn blob_matrix(rows: usize, dims: usize, centers: usize, seed: u64) -> Matrix {
    let mut state = seed.max(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let centroids: Vec<Vec<f64>> = (0..centers)
        .map(|_| (0..dims).map(|_| next() * 10.0).collect())
        .collect();
    let mut m = Matrix::zeros(rows, dims);
    for i in 0..rows {
        let c = &centroids[i % centers];
        for (j, &cj) in c.iter().enumerate() {
            m.set(i, j, cj + (next() - 0.5) * 0.5);
        }
    }
    m
}

/// The cell-major remap must round-trip (store row → original CompanyId →
/// store row) and pruned queries must surface *original* row ids — checked
/// at 1 and 3 probes against a brute-force scan restricted to the probed
/// rows' ids.
#[test]
fn cell_major_remap_round_trips_at_one_and_three_probes() {
    let mut reps = blob_matrix(300, 8, 6, 42);
    // Degenerate shapes ride along: a zero row and a duplicate pair.
    for j in 0..8 {
        reps.set(5, j, 0.0);
        let v = reps.get(10, j);
        reps.set(11, j, v);
    }
    for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
        let index = ClusteredIndex::build(reps.clone(), 6, metric, 7).expect("valid cell count");
        let store = index.store();
        assert_eq!(store.n_cells(), 6);
        assert_eq!(store.len(), 300);
        for orig in 0..300 {
            let s = store.store_row(orig);
            assert_eq!(store.original_row(s), orig, "store row {s} must map back");
            assert_eq!(
                store.row_by_original(orig),
                reps.row(orig),
                "row {orig}: reordered data must hold the original vector"
            );
        }
        for n_probe in [1usize, 3] {
            for q in [0usize, 5, 11, 299] {
                let got = index.query_row(q, 10, n_probe);
                // Every returned id is an original row, not a store row:
                // recompute its distance from the original matrix and demand
                // bit-equality.
                for &(r, d) in &got {
                    assert_ne!(r, q);
                    let expect = metric.distance(reps.row(q), reps.row(r));
                    assert_eq!(
                        d.to_bits(),
                        expect.to_bits(),
                        "{metric:?} probe={n_probe} q={q} r={r}"
                    );
                }
                // Ascending with deterministic tie-breaks.
                for pair in got.windows(2) {
                    assert!(
                        pair[0].1 < pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0)
                    );
                }
            }
        }
        // Full probe is byte-identical to the pre-store scalar scan.
        for q in [0usize, 5, 11, 299] {
            let exact = top_k_similar_scalar(&reps, q, 10, metric);
            let full = index.query_row(q, 10, index.n_cells());
            assert_eq!(exact.len(), full.len());
            for (e, f) in exact.iter().zip(&full) {
                assert_eq!(e.0, f.0, "{metric:?} q={q}");
                assert_eq!(e.1.to_bits(), f.1.to_bits(), "{metric:?} q={q}");
            }
        }
    }
}

/// The application's exact paths — single scan, filtered scan, blocked
/// batch — all return byte-identical rankings to the scalar reference.
#[test]
fn application_read_path_is_byte_identical_to_scalar_reference() {
    let corpus = hlm_datagen::generate(&hlm_datagen::GeneratorConfig::with_size_and_seed(250, 13));
    let reps = Arc::new(blob_matrix(250, 8, 5, 99));
    let app = SalesApplication::new(Arc::new(corpus), Arc::clone(&reps), DistanceMetric::Cosine)
        .expect("matching rows");
    let queries: Vec<CompanyId> = (0..40).map(CompanyId).collect();
    let batch = app
        .find_similar_batch(&queries, 10, &CompanyFilter::default())
        .expect("in range");
    for (i, &q) in queries.iter().enumerate() {
        let reference = top_k_similar_scalar(&reps, q.index(), 10, DistanceMetric::Cosine);
        let single = app
            .find_similar(q, 10, &CompanyFilter::default())
            .expect("in range");
        assert_eq!(single.len(), reference.len());
        for (s, &(r, d)) in single.iter().zip(&reference) {
            assert_eq!(s.id.index(), r);
            assert_eq!(s.distance.to_bits(), d.to_bits());
        }
        assert_eq!(batch[i], single, "blocked batch == single for query {q:?}");
    }
}

/// The hlm-par fan-out over probed cells is bit-identical at any thread
/// count (the PR-3 contract), even with the parallelism threshold forced
/// to zero so the pool genuinely engages.
#[test]
fn scan_fan_out_is_thread_count_independent() {
    let reps = blob_matrix(2_000, 8, 16, 5);
    let index = ClusteredIndex::build(reps, 16, DistanceMetric::Cosine, 3).expect("valid");
    hlm_par::set_par_threshold(Some(0));
    hlm_par::set_threads(1);
    let serial: Vec<_> = (0..20).map(|q| index.query_row(q * 97, 10, 16)).collect();
    hlm_par::set_threads(4);
    let parallel: Vec<_> = (0..20).map(|q| index.query_row(q * 97, 10, 16)).collect();
    hlm_par::set_threads(0);
    hlm_par::set_par_threshold(None);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.len(), p.len());
        for (a, b) in s.iter().zip(p) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }
}

/// The f32 store's equivalence gate: on clustered data at realistic scale,
/// recall@10 of the reduced-precision scan against the exact f64 ranking
/// must be at least 0.999 — the same bar the CI perf job enforces on the
/// benchmark output.
#[test]
fn f32_store_recall_at_10_meets_the_gate() {
    let reps = blob_matrix(4_000, 16, 32, 20190326);
    for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
        let index =
            ClusteredIndex::build_with_precision(reps.clone(), 32, metric, 11, StorePrecision::F32)
                .expect("valid");
        let queries: Vec<usize> = (0..4_000).step_by(40).collect();
        // Full probe isolates precision loss (no IVF pruning in the way).
        let recall = index.recall_at_k(&queries, 10, index.n_cells());
        assert!(
            recall >= 0.999,
            "{metric:?}: f32 recall@10 = {recall}, below the 0.999 gate"
        );
    }
}

/// `recall_at_k_many` must agree with the one-width diagnostic while
/// computing the exact set once, and both must keep the NaN-on-empty
/// contract.
#[test]
fn recall_diagnostics_agree_across_forms() {
    let reps = blob_matrix(600, 8, 8, 77);
    let index = ClusteredIndex::build(reps, 8, DistanceMetric::Cosine, 2).expect("valid");
    let queries: Vec<usize> = (0..600).step_by(23).collect();
    let many = index.recall_at_k_many(&queries, 10, &[1, 4, 8]);
    assert_eq!(many[0], index.recall_at_k(&queries, 10, 1));
    assert_eq!(many[1], index.recall_at_k(&queries, 10, 4));
    assert!((many[2] - 1.0).abs() < 1e-12, "full probe is exact");
    assert!(
        index.recall_at_k(&[], 10, 1).is_nan(),
        "NaN on empty queries"
    );
}
