//! Representations → clustering → silhouette, the Figure-7 pipeline, plus
//! the t-SNE product-map pipeline of Figures 8–9.

use hlm_cluster::{kmeans, silhouette_score, tsne, KmeansOptions, TsneOptions};
use hlm_core::representations as reps;
use hlm_corpus::tfidf::TfIdf;
use hlm_tests::{quick_lda, test_corpus, test_split};

#[test]
fn figure_7_ordering_lda_beats_tfidf_beats_raw() {
    let corpus = test_corpus(400, 31);
    let split = test_split(&corpus);
    let sample: Vec<_> = split.train.iter().copied().take(250).collect();
    let tfidf = TfIdf::fit(&corpus, &split.train);

    let raw = reps::raw_binary(&corpus, &sample);
    let raw_tfidf = reps::raw_tfidf(&corpus, &sample, &tfidf);
    let (lda, docs) = quick_lda(&corpus, &sample, 3);
    let lda_b = reps::lda_representations(&lda, &docs);

    let sil = |m: &hlm_linalg::Matrix, k: usize| {
        let res = kmeans(m, &KmeansOptions::new(k));
        silhouette_score(m, &res.assignments)
    };
    for k in [10usize, 30] {
        let s_raw = sil(&raw, k);
        let s_tfidf = sil(&raw_tfidf, k);
        let s_lda = sil(&lda_b, k);
        assert!(
            s_lda > s_raw,
            "k={k}: lda {s_lda} must beat raw {s_raw} (paper Fig. 7)"
        );
        assert!(
            s_lda > s_tfidf,
            "k={k}: lda {s_lda} must beat raw tfidf {s_tfidf}"
        );
    }
}

#[test]
fn lda_topic_space_clusters_align_with_dominant_topic() {
    let corpus = test_corpus(300, 32);
    let ids: Vec<_> = corpus.ids().collect();
    let (lda, docs) = quick_lda(&corpus, &ids, 3);
    let b = reps::lda_representations(&lda, &docs);
    let res = kmeans(&b, &KmeansOptions::new(3));

    // Companies sharing a cluster should mostly share their argmax topic.
    let argmax_topic: Vec<usize> = (0..b.rows())
        .map(|i| hlm_linalg::vector::argmax(b.row(i)).expect("3 topics"))
        .collect();
    let mut agree = 0usize;
    let mut total = 0usize;
    for c in 0..3 {
        let members: Vec<usize> = (0..b.rows()).filter(|&i| res.assignments[i] == c).collect();
        if members.len() < 2 {
            continue;
        }
        // Majority topic of the cluster.
        let mut counts = [0usize; 3];
        for &i in &members {
            counts[argmax_topic[i]] += 1;
        }
        let majority = counts.iter().copied().max().unwrap();
        agree += majority;
        total += members.len();
    }
    let purity = agree as f64 / total as f64;
    assert!(purity > 0.8, "cluster/topic purity {purity}");
}

#[test]
fn tsne_on_lda_product_embeddings_is_stable_and_structured() {
    let corpus = test_corpus(400, 33);
    let ids: Vec<_> = corpus.ids().collect();
    let (lda, _) = quick_lda(&corpus, &ids, 3);
    let emb = lda.product_embeddings();
    assert_eq!(emb.shape(), (38, 3));

    let coords = tsne(
        &emb,
        &TsneOptions {
            perplexity: 5.0,
            n_iters: 300,
            ..Default::default()
        },
    );
    assert_eq!(coords.shape(), (38, 2));
    assert!(coords.is_finite());

    // Products with the same argmax topic should sit closer together than
    // products from different topics, on average.
    let topic: Vec<usize> = (0..38)
        .map(|w| hlm_linalg::vector::argmax(emb.row(w)).expect("topics"))
        .collect();
    let mut intra = (0.0, 0usize);
    let mut inter = (0.0, 0usize);
    for i in 0..38 {
        for j in i + 1..38 {
            let d = hlm_linalg::vector::euclidean_distance(coords.row(i), coords.row(j));
            if topic[i] == topic[j] {
                intra.0 += d;
                intra.1 += 1;
            } else {
                inter.0 += d;
                inter.1 += 1;
            }
        }
    }
    let intra_mean = intra.0 / intra.1.max(1) as f64;
    let inter_mean = inter.0 / inter.1.max(1) as f64;
    assert!(
        inter_mean > intra_mean,
        "same-topic products should co-locate: intra {intra_mean} vs inter {inter_mean}"
    );
}

#[test]
fn lstm_embeddings_feed_clustering_without_degenerate_output() {
    use hlm_lstm::{LstmConfig, LstmLm};
    let corpus = test_corpus(120, 34);
    let ids: Vec<_> = corpus.ids().collect();
    let model = LstmLm::new(
        LstmConfig {
            vocab_size: 38,
            hidden_size: 8,
            n_layers: 1,
            dropout: 0.0,
            ..Default::default()
        },
        4,
    );
    let b = reps::lstm_representations(&model, &corpus, &ids);
    let res = kmeans(&b, &KmeansOptions::new(5));
    let mut distinct = res.assignments.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        distinct.len() >= 2,
        "LSTM embeddings must not collapse to one point"
    );
    let s = silhouette_score(&b, &res.assignments);
    assert!(s.is_finite());
}

#[test]
fn oculur_style_nmf_coclusters_recover_profiles_but_share_popular_products() {
    // Section 3.1: factorization-based co-clustering on the raw binary
    // matrix. The components align with the planted profiles (so NMF is not
    // useless), yet the near-ubiquitous products load on several components
    // at once — the popularity-dominance effect that pushed the paper to
    // learned LDA features.
    use hlm_cluster::{nmf, NmfOptions};
    let corpus = hlm_tests::test_corpus(400, 35);
    let ids: Vec<_> = corpus.ids().collect();
    let binary = reps::raw_binary(&corpus, &ids);
    let fit = nmf(&binary, &NmfOptions::new(3));
    assert!(fit.relative_error < 0.9, "error {}", fit.relative_error);

    let ccs = fit.overlapping_coclusters(0.4);
    let os = corpus.vocab().id("OS").unwrap().index();
    let in_n = |p: usize| ccs.iter().filter(|c| c.cols.contains(&p)).count();
    // OS (ubiquitous) appears in at least two of the three co-clusters.
    assert!(
        in_n(os) >= 2,
        "OS should load on multiple co-clusters, got {}",
        in_n(os)
    );
    // A niche profile product appears in fewer co-clusters than OS.
    let niche = corpus.vocab().id("product_lifecycle").unwrap().index();
    assert!(
        in_n(niche) <= in_n(os),
        "niche {} vs OS {}",
        in_n(niche),
        in_n(os)
    );

    // Profile anchors separate across components: server_HW and DBMS do not
    // share all their co-clusters.
    let server = corpus.vocab().id("server_HW").unwrap().index();
    let dbms = corpus.vocab().id("DBMS").unwrap().index();
    let comps = |p: usize| -> Vec<usize> {
        ccs.iter()
            .filter(|c| c.cols.contains(&p))
            .map(|c| c.component)
            .collect()
    };
    assert_ne!(comps(server), comps(dbms), "profile anchors must differ");
}
