//! The Section-6 sales application, end to end: LDA representations feeding
//! similar-company search with filters and whitespace recommendations.

use hlm_core::representations::lda_representations;
use hlm_core::{CompanyFilter, CoreError, DistanceMetric, SalesApplication};
use hlm_corpus::CompanyId;
use hlm_engine::{Engine, EngineError, ModelKind};
use hlm_tests::{quick_lda, test_corpus};

fn build_app(n: usize, seed: u64) -> SalesApplication {
    let corpus = test_corpus(n, seed);
    let ids: Vec<_> = corpus.ids().collect();
    let (lda, docs) = quick_lda(&corpus, &ids, 3);
    let reps = lda_representations(&lda, &docs);
    Engine::new(corpus)
        .sales_app(reps, DistanceMetric::Cosine)
        .expect("representations match the corpus")
}

#[test]
fn similar_companies_share_the_install_base_profile() {
    let app = build_app(400, 51);
    // Queries with substantial install bases so overlap is meaningful. The
    // property is aggregate: averaged over several queries, the top-10
    // similar companies must have a higher Jaccard overlap with the query's
    // install base than the average company does (Jaccard controls for
    // install-base size, unlike a raw shared-product count). A single query
    // can lose narrowly — the 3-topic LDA representation is lossy — but the
    // mean over many queries cannot.
    let queries: Vec<CompanyId> = app
        .corpus()
        .iter()
        .filter(|(_, c)| c.product_count() >= 10)
        .map(|(id, _)| id)
        .take(10)
        .collect();
    assert!(queries.len() >= 5, "substantial companies exist");

    let mut sim_mean_total = 0.0;
    let mut all_mean_total = 0.0;
    for &query in &queries {
        let similar = app
            .find_similar(query, 10, &CompanyFilter::default())
            .expect("id in range");
        assert_eq!(similar.len(), 10);
        let query_set: std::collections::HashSet<_> = app
            .corpus()
            .company(query)
            .product_set()
            .into_iter()
            .collect();
        let jaccard = |id: CompanyId| -> f64 {
            let other: std::collections::HashSet<_> =
                app.corpus().company(id).product_set().into_iter().collect();
            let inter = query_set.intersection(&other).count() as f64;
            let union = query_set.union(&other).count() as f64;
            inter / union
        };
        sim_mean_total += similar.iter().map(|s| jaccard(s.id)).sum::<f64>() / similar.len() as f64;
        all_mean_total += app
            .corpus()
            .ids()
            .filter(|&id| id != query)
            .map(jaccard)
            .sum::<f64>()
            / (app.corpus().len() - 1) as f64;
    }
    let sim_mean = sim_mean_total / queries.len() as f64;
    let all_mean = all_mean_total / queries.len() as f64;
    assert!(
        sim_mean > all_mean,
        "similar Jaccard {sim_mean} must beat corpus average {all_mean}"
    );
}

#[test]
fn whitespace_recommendations_match_similar_company_inventories() {
    let app = build_app(400, 52);
    let query = CompanyId(11);
    let recs = app
        .recommend_whitespace(query, 15, &CompanyFilter::default())
        .expect("id in range");
    assert!(!recs.is_empty());
    let similar = app
        .find_similar(query, 15, &CompanyFilter::default())
        .expect("id in range");
    // Every recommended product is owned by at least one similar company.
    for r in &recs {
        let owners = similar
            .iter()
            .filter(|s| app.corpus().company(s.id).owns(r.product))
            .count();
        assert_eq!(
            owners, r.owners_among_similar,
            "owner count for {}",
            r.product
        );
        assert!(owners >= 1);
    }
}

#[test]
fn filters_compose() {
    let app = build_app(600, 53);
    let query = CompanyId(0);
    let all = app
        .find_similar(query, 600, &CompanyFilter::default())
        .expect("id in range");
    let country = app.corpus().company(all[0].id).country;
    let industry = app.corpus().company(all[0].id).industry;

    let filtered = app
        .find_similar(
            query,
            600,
            &CompanyFilter {
                country: Some(country),
                industry: Some(industry),
                ..Default::default()
            },
        )
        .expect("id in range");
    assert!(
        !filtered.is_empty(),
        "the closest match itself satisfies the filter"
    );
    for s in &filtered {
        let c = app.corpus().company(s.id);
        assert_eq!(c.country, country);
        assert_eq!(c.industry, industry);
    }
    assert!(filtered.len() < all.len());

    // Employee-range filter.
    let big_only = app
        .find_similar(
            query,
            600,
            &CompanyFilter {
                employees: Some((500, u32::MAX)),
                ..Default::default()
            },
        )
        .expect("id in range");
    for s in &big_only {
        assert!(app.corpus().company(s.id).employees >= 500);
    }
}

#[test]
fn results_are_deterministic() {
    let a = build_app(200, 54);
    let b = build_app(200, 54);
    let fa = a
        .find_similar(CompanyId(3), 5, &CompanyFilter::default())
        .expect("id in range");
    let fb = b
        .find_similar(CompanyId(3), 5, &CompanyFilter::default())
        .expect("id in range");
    assert_eq!(
        fa.iter().map(|s| s.id).collect::<Vec<_>>(),
        fb.iter().map(|s| s.id).collect::<Vec<_>>()
    );
    let ra = a
        .recommend_whitespace(CompanyId(3), 10, &CompanyFilter::default())
        .expect("id in range");
    let rb = b
        .recommend_whitespace(CompanyId(3), 10, &CompanyFilter::default())
        .expect("id in range");
    assert_eq!(
        ra.iter().map(|r| r.product).collect::<Vec<_>>(),
        rb.iter().map(|r| r.product).collect::<Vec<_>>()
    );
}

#[test]
fn bad_inputs_surface_typed_errors_not_panics() {
    let corpus = test_corpus(120, 55);
    let n = corpus.len();
    let ids: Vec<_> = corpus.ids().collect();
    let (lda, docs) = quick_lda(&corpus, &ids, 3);
    let reps = lda_representations(&lda, &docs);
    let engine = Engine::new(corpus);

    // Representation matrix with the wrong number of rows.
    let truncated = hlm_linalg::Matrix::zeros(n - 1, 3);
    match engine.sales_app(truncated, DistanceMetric::Cosine) {
        Err(EngineError::Core(CoreError::RepresentationMismatch { rows, companies })) => {
            assert_eq!((rows, companies), (n - 1, n));
        }
        _ => panic!("mismatched rows must yield RepresentationMismatch"),
    }

    // Queries outside the corpus fail with the offending id.
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .expect("shapes match");
    let bogus = CompanyId(n as u32);
    match app.find_similar(bogus, 5, &CompanyFilter::default()) {
        Err(CoreError::CompanyOutOfRange { id, len }) => {
            assert_eq!((id, len), (n as u32, n));
        }
        _ => panic!("out-of-range query must yield CompanyOutOfRange"),
    }
    assert!(app
        .recommend_whitespace(bogus, 5, &CompanyFilter::default())
        .is_err());

    // Unknown model names are rejected with the offending string preserved.
    match "markov-chain".parse::<ModelKind>() {
        Err(EngineError::UnknownModelKind(name)) => assert_eq!(name, "markov-chain"),
        _ => panic!("unknown model kinds must be rejected"),
    }
}

#[test]
fn serving_cache_memoizes_and_is_invalidated_on_retrain() {
    let corpus = test_corpus(250, 63);
    let ids: Vec<_> = corpus.ids().collect();
    let (lda, docs) = quick_lda(&corpus, &ids, 3);
    let reps = lda_representations(&lda, &docs);
    let engine = Engine::new(corpus);
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .expect("shapes match");
    let query = CompanyId(7);
    let filter = CompanyFilter::default();

    // First query populates the shared cache; the replayed answer is
    // identical to the computed one.
    assert!(engine.serving_cache().is_empty());
    let cold = app.find_similar(query, 5, &filter).expect("id in range");
    assert_eq!(engine.serving_cache().len(), 1);
    let warm = app.find_similar(query, 5, &filter).expect("id in range");
    assert_eq!(cold, warm, "cache hit must replay the computed answer");
    assert_eq!(engine.serving_cache().len(), 1, "a hit must not re-insert");

    // Any training run invalidates: the generation advances and every
    // memoized entry is dropped, so post-retrain applications can never
    // serve rankings computed against the old model.
    let generation = engine.serving_cache().generation();
    let spec =
        hlm_engine::ModelSpec::Ngram(hlm_ngram::NgramConfig::unigram(app.corpus().vocab().len()));
    engine.train_full(&spec).expect("unigram spec is valid");
    assert!(engine.serving_cache().generation() > generation);
    assert!(engine.serving_cache().is_empty());

    // A fresh application built after the retrain gets correct answers and
    // repopulates the cache under the new generation; the pre-retrain app
    // still answers correctly (recomputing under its stale generation).
    let app2 = engine
        .sales_app(
            hlm_core::representations::raw_binary(app.corpus(), &ids),
            DistanceMetric::Cosine,
        )
        .expect("shapes match");
    let fresh = app2.find_similar(query, 5, &filter).expect("id in range");
    assert_eq!(engine.serving_cache().len(), 1);
    assert_eq!(
        fresh,
        app2.find_similar(query, 5, &filter).expect("id in range")
    );
    let stale = app.find_similar(query, 5, &filter).expect("id in range");
    assert_eq!(stale, cold, "stale app recomputes the same answer");
}
