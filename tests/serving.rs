//! Crash-recovery drill for the serving stack (PR 7): a real server
//! process is SIGKILLed mid-load, restarted, and must warm-start from the
//! latest good checkpoint with **bit-identical** answers; a corrupted
//! latest checkpoint must degrade to the previous good one, not kill the
//! restart.
//!
//! The server runs in a genuinely separate OS process so the kill is a
//! real kill (no atexit, no Drop, no flush). The child is this same test
//! binary re-invoked with `--exact child_server_process` and a directory
//! handed over via the `HLM_SERVING_CHILD_DIR` env var — the standard
//! self-spawn trick for process-level drills without a helper binary.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hlm_core::representations::binary_docs;
use hlm_core::DistanceMetric;
use hlm_corpus::io::{from_csv, to_csv};
use hlm_corpus::Vocabulary;
use hlm_datagen::GeneratorConfig;
use hlm_engine::{Engine, LdaEstimator, ServeOptions, TrainPlan};
use hlm_lda::LdaConfig;
use hlm_resilience::CheckpointStore;
use hlm_serve::{bundle_from_checkpoint, Server, ServerConfig};

const CHILD_ENV: &str = "HLM_SERVING_CHILD_DIR";
const N_ITERS: usize = 30;

/// The one LDA shape parent (trainer) and child (server) agree on.
fn lda_config(vocab_size: usize) -> LdaConfig {
    LdaConfig {
        n_topics: 3,
        vocab_size,
        n_iters: N_ITERS,
        burn_in: N_ITERS / 2,
        sample_lag: 5,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// The child: a server process that only ever dies by signal
// ---------------------------------------------------------------------------

/// Not a test in the usual sense: a no-op unless `HLM_SERVING_CHILD_DIR`
/// is set, in which case this process becomes the server under drill.
#[test]
fn child_server_process() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        return;
    };
    let dir = PathBuf::from(dir);
    let companies = std::fs::read_to_string(dir.join("companies.csv")).expect("child: corpus");
    let events = std::fs::read_to_string(dir.join("events.csv")).expect("child: events");
    let corpus = from_csv(Vocabulary::standard(), &companies, &events).expect("child: parse");
    let config = lda_config(corpus.vocab().len());
    let store = CheckpointStore::on_disk(dir.join("ck")).expect("child: store");
    let engine = Arc::new(Engine::new(corpus));
    let opts = ServeOptions {
        request_budget_millis: Some(30_000),
        ..ServeOptions::default()
    };
    let bundle = bundle_from_checkpoint(&engine, &config, &store, DistanceMetric::Cosine, opts)
        .expect("child: warm start from latest good checkpoint");
    // Tell the parent which checkpoint we warmed from, then where we listen.
    std::fs::write(dir.join("iter"), bundle.checkpoint_iteration.to_string()).expect("child: iter");
    let server = Server::bind(ServerConfig::default(), engine, bundle, None).expect("child: bind");
    let addr = server.local_addr();
    let handle = server.start();
    std::fs::write(dir.join("port"), addr.port().to_string()).expect("child: port file");
    // Serve until killed; self-destruct eventually so a crashed parent
    // cannot leak a process.
    std::thread::sleep(Duration::from_secs(120));
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Parent-side helpers
// ---------------------------------------------------------------------------

/// A spawned child server that is SIGKILLed on drop, so no panic path can
/// leak a process.
struct ChildServer {
    child: std::process::Child,
    port: u16,
    iteration: u64,
}

impl Drop for ChildServer {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(dir: &Path) -> ChildServer {
    let _ = std::fs::remove_file(dir.join("port"));
    let _ = std::fs::remove_file(dir.join("iter"));
    let exe = std::env::current_exe().expect("test binary path");
    let child = std::process::Command::new(exe)
        .args(["--exact", "child_server_process", "--nocapture"])
        .env(CHILD_ENV, dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("child spawns");
    // The port file appears only after bind + start: its presence is the
    // readiness signal.
    let deadline = Instant::now() + Duration::from_secs(120);
    let port: u16 = loop {
        if let Ok(s) = std::fs::read_to_string(dir.join("port")) {
            if let Ok(p) = s.trim().parse() {
                break p;
            }
        }
        assert!(Instant::now() < deadline, "child server never came up");
        std::thread::sleep(Duration::from_millis(25));
    };
    let iteration: u64 = std::fs::read_to_string(dir.join("iter"))
        .expect("child reported its checkpoint iteration")
        .trim()
        .parse()
        .expect("iteration parses");
    ChildServer {
        child,
        port,
        iteration,
    }
}

/// One-shot GET returning the full raw response (status line through body).
fn fetch(port: u16, path: &str) -> String {
    let mut conn = TcpStream::connect(("127.0.0.1", port)).expect("server accepts");
    conn.set_read_timeout(Some(Duration::from_secs(30))).ok();
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("full response");
    buf
}

/// The fixed query set whose answers must survive a crash bit-identically.
fn probe_paths() -> Vec<String> {
    let mut paths: Vec<String> = (0..5)
        .map(|c| format!("/v1/similar?company={}&k=5&deadline_ms=30000", c * 17))
        .collect();
    paths.push("/v1/whitespace?company=33&k=8&deadline_ms=30000".to_string());
    paths.push("/v1/recommend?history=0,2,5&top=5&deadline_ms=30000".to_string());
    paths
}

// ---------------------------------------------------------------------------
// The drill
// ---------------------------------------------------------------------------

#[test]
fn sigkill_mid_load_then_restart_serves_bit_identical_answers() {
    // --- Setup: corpus on disk + checkpointed training run. -------------
    let dir = std::env::temp_dir().join(format!("hlm_serving_drill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(120, 11));
    let (companies_csv, events_csv) = to_csv(&corpus);
    std::fs::write(dir.join("companies.csv"), companies_csv).unwrap();
    std::fs::write(dir.join("events.csv"), events_csv).unwrap();

    let ids: Vec<_> = corpus.ids().collect();
    let docs = binary_docs(&corpus, &ids);
    let plan = TrainPlan::new().on_disk(dir.join("ck")).expect("plan");
    let fit = hlm_engine::fit_lda_resilient(
        lda_config(corpus.vocab().len()),
        LdaEstimator::Gibbs,
        &docs,
        plan,
    )
    .expect("training with checkpoints");
    assert_eq!(fit.checkpoints_written, N_ITERS as u64);

    // --- Round 1: serve, baseline the answers, SIGKILL mid-load. --------
    let server = spawn_server(&dir);
    assert_eq!(
        server.iteration, N_ITERS as u64,
        "server warms from the final checkpoint"
    );
    let baseline: Vec<String> = probe_paths()
        .iter()
        .map(|p| fetch(server.port, p))
        .collect();
    for (p, resp) in probe_paths().iter().zip(&baseline) {
        assert!(resp.starts_with("HTTP/1.1 200"), "{p}: {resp}");
    }

    // Sustained load from a second thread; the kill lands while requests
    // are in flight, not during a quiet moment.
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicUsize::new(0));
    let load = {
        let stop = Arc::clone(&stop);
        let sent = Arc::clone(&sent);
        let port = server.port;
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::SeqCst) {
                // Requests after the kill fail to connect or mid-read;
                // both are expected — the drill only requires that *this*
                // thread never hangs.
                let conn = TcpStream::connect(("127.0.0.1", port));
                let Ok(mut conn) = conn else { continue };
                conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
                let path = format!("/v1/similar?company={}&k=5&deadline_ms=30000", i % 120);
                let _ = write!(
                    conn,
                    "GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"
                );
                let mut buf = String::new();
                let _ = conn.read_to_string(&mut buf);
                sent.fetch_add(1, Ordering::SeqCst);
                i += 1;
            }
        })
    };
    // Let the load become real traffic, then kill without ceremony.
    let t0 = Instant::now();
    while sent.load(Ordering::SeqCst) < 20 {
        assert!(t0.elapsed() < Duration::from_secs(60), "load never ramped");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(server); // SIGKILL + reap
    stop.store(true, Ordering::SeqCst);
    load.join()
        .expect("load thread exits cleanly after the kill");

    // --- Round 2: restart; answers must be bit-identical. ---------------
    let server = spawn_server(&dir);
    assert_eq!(server.iteration, N_ITERS as u64);
    for (p, expected) in probe_paths().iter().zip(&baseline) {
        let got = fetch(server.port, p);
        assert_eq!(&got, expected, "post-restart answer differs for {p}");
    }
    drop(server);

    // --- Round 3: corrupt the newest checkpoint; the restart must fall
    // back to the previous good one and keep serving. --------------------
    let newest = dir.join("ck").join(format!("ckpt-{:012}.hlm", N_ITERS));
    let mut bytes = std::fs::read(&newest).expect("newest checkpoint exists");
    let mid = bytes.len() / 2;
    let end = (mid + 32).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xff;
    }
    std::fs::write(&newest, bytes).unwrap();

    let server = spawn_server(&dir);
    assert_eq!(
        server.iteration,
        N_ITERS as u64 - 1,
        "corrupt newest checkpoint falls back to the previous good one"
    );
    let resp = fetch(server.port, "/v1/similar?company=3&k=5&deadline_ms=30000");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("\"results\""), "{resp}");
    drop(server);

    let _ = std::fs::remove_dir_all(&dir);
}
