//! Model comparison on one corpus: perplexity of every generative model
//! family (a miniature Table 1) plus the sequentiality statistics the paper
//! quotes from [19].
//!
//! ```sh
//! cargo run -p hlm-examples --release --bin model_comparison
//! ```

use hlm_corpus::Split;
use hlm_engine::{LdaEstimator, ModelSpec};
use hlm_eval::report::{fmt_f, Table};
use hlm_eval::sequentiality_report;
use hlm_examples::{example_corpus, header};
use hlm_lda::{document_completion_perplexity, LdaConfig};
use hlm_lstm::{AdamOptions, LstmConfig, TrainOptions};
use hlm_ngram::NgramConfig;

fn main() {
    let corpus = example_corpus();
    let split = Split::paper(&corpus, 2019);
    let m = corpus.vocab().len();

    header("Sequential structure (the [19] check the paper quotes)");
    let ids: Vec<_> = corpus.ids().collect();
    let product_seqs = corpus.sequences_for(&ids);
    for order in [2usize, 3] {
        let rep = sequentiality_report(&product_seqs, order, 0.05);
        println!(
            "  {}-grams: {}/{} significantly non-i.i.d. ({:.1}%)",
            order,
            rep.significant,
            rep.distinct_ngrams,
            100.0 * rep.significant_fraction
        );
    }

    header("Perplexity per product on the held-out 20% (lower is better)");
    let train_docs = hlm_core::representations::binary_docs(&corpus, &split.train);
    let test_docs = hlm_core::representations::binary_docs(&corpus, &split.test);
    let seqs = |ids: &[hlm_corpus::CompanyId]| -> Vec<Vec<usize>> {
        ids.iter()
            .map(|&id| {
                corpus
                    .company(id)
                    .product_sequence()
                    .into_iter()
                    .map(|p| p.index())
                    .collect()
            })
            .collect()
    };
    let train_seqs = seqs(&split.train);
    let valid_seqs = seqs(&split.valid);
    let test_seqs = seqs(&split.test);

    let mut rows: Vec<(String, f64)> = Vec::new();
    for k in [2usize, 3, 4] {
        eprintln!("training LDA{k}…");
        let config = LdaConfig {
            n_topics: k,
            vocab_size: m,
            n_iters: 150,
            burn_in: 75,
            sample_lag: 5,
            seed: 2019,
            alpha: None,
            beta: 0.1,
            ..Default::default()
        };
        let model =
            hlm_engine::fit_lda(config, LdaEstimator::Gibbs, &train_docs).expect("valid LDA spec");
        rows.push((
            format!("LDA{k}"),
            document_completion_perplexity(&model, &test_docs),
        ));
    }
    eprintln!("training LSTM 1×100…");
    let lstm_spec = ModelSpec::Lstm {
        config: LstmConfig {
            vocab_size: m,
            hidden_size: 100,
            n_layers: 1,
            dropout: 0.2,
            ..Default::default()
        },
        train: TrainOptions {
            epochs: 6,
            batch_size: 16,
            adam: AdamOptions {
                learning_rate: 5e-3,
                ..Default::default()
            },
            patience: 3,
            seed: 2019,
            verbose: false,
            ..Default::default()
        },
        seed: 2019,
    };
    let lstm = lstm_spec
        .fit_sequences(&train_seqs, &valid_seqs)
        .expect("valid LSTM spec");
    rows.push((
        "LSTM (1 layer × 100)".into(),
        lstm.perplexity(&test_seqs)
            .expect("LSTMs support perplexity"),
    ));
    for (name, cfg) in [
        ("trigram", NgramConfig::trigram(m)),
        ("bigram", NgramConfig::bigram(m)),
        ("unigram bag-of-words", NgramConfig::unigram(m)),
    ] {
        let trained = ModelSpec::Ngram(cfg)
            .fit_sequences(&train_seqs, &[])
            .expect("valid n-gram spec");
        let ppl = trained
            .perplexity(&test_seqs)
            .expect("n-grams support perplexity");
        rows.push((name.into(), ppl));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    let mut table = Table::new("", &["rank", "model", "test perplexity"]);
    for (i, (name, ppl)) in rows.iter().enumerate() {
        table.add_row(vec![(i + 1).to_string(), name.clone(), fmt_f(*ppl, 2)]);
    }
    println!("{}", table.render());
    println!("Paper Table 1 ordering: LDA < LSTM < n-grams < unigram.");
}
