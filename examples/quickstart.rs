//! Quickstart: generate an install-base corpus, train the paper's winning
//! model (3-topic LDA), inspect the learned topics, and get similar
//! companies plus product recommendations for one customer.
//!
//! ```sh
//! cargo run -p hlm-examples --release --bin quickstart
//! ```

use hlm_core::representations::lda_representations;
use hlm_core::{CompanyFilter, DistanceMetric};
use hlm_corpus::CompanyId;
use hlm_engine::Engine;
use hlm_examples::{describe, example_corpus, example_lda, header};

fn main() {
    header("1. Simulated HG-Data-style corpus");
    let corpus = example_corpus();
    println!(
        "{} companies over {} product categories, {} industries, {:.1} products/company",
        corpus.len(),
        corpus.vocab().len(),
        corpus.industries().len(),
        corpus.mean_products_per_company()
    );

    header("2. Train LDA (3 latent topics — the paper's best setting)");
    let (lda, docs) = example_lda(&corpus, 3);
    for k in 0..lda.n_topics() {
        let tops: Vec<String> = lda
            .top_products(k, 6)
            .into_iter()
            .map(|(w, p)| {
                format!(
                    "{} ({:.2})",
                    corpus.vocab().name(hlm_corpus::ProductId(w as u16)),
                    p
                )
            })
            .collect();
        println!("topic {k}: {}", tops.join(", "));
    }

    header("3. Company representations and similarity search");
    let reps = lda_representations(&lda, &docs);
    let engine = Engine::new(corpus);
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .expect("representations match the corpus");
    let customer = CompanyId(42);
    println!("customer: {}", describe(app.corpus(), customer));
    println!("most similar companies:");
    let similar = app
        .find_similar(customer, 5, &CompanyFilter::default())
        .expect("customer id in range");
    for s in similar {
        println!("  d={:.4}  {}", s.distance, describe(app.corpus(), s.id));
    }

    header("4. Whitespace recommendations");
    let recs = app
        .recommend_whitespace(customer, 20, &CompanyFilter::default())
        .expect("customer id in range");
    for rec in recs.iter().take(5) {
        println!(
            "  {} (score {:.2}, owned by {}/20 similar companies)",
            app.corpus().vocab().name(rec.product),
            rec.score,
            rec.owners_among_similar
        );
    }
}
