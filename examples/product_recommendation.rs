//! Product recommendation shoot-out: LDA3, CHH and a bigram model evaluated
//! on the paper's sliding-window protocol (Section 4.3) at example scale.
//!
//! ```sh
//! cargo run -p hlm-examples --release --bin product_recommendation
//! ```

use hlm_corpus::Split;
use hlm_engine::{LdaEstimator, ModelSpec};
use hlm_eval::report::{fmt_ci, fmt_f, Table};
use hlm_eval::{evaluate_recommender, RandomRecommender, RecEvalConfig};
use hlm_examples::{example_corpus, header};
use hlm_lda::LdaConfig;
use hlm_ngram::NgramConfig;

fn main() {
    let corpus = example_corpus();
    let split = Split::paper(&corpus, 2019);
    let m = corpus.vocab().len();
    let cfg = RecEvalConfig {
        windows: hlm_corpus::SlidingWindows::paper_evaluation().collect(),
        thresholds: vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5],
        retrain_per_window: false,
        require_history: true,
    };

    header(&format!(
        "Sliding-window evaluation: {} windows of 12 months, {} test companies",
        cfg.windows.len(),
        split.test.len()
    ));

    let lda = ModelSpec::Lda {
        config: LdaConfig {
            n_topics: 3,
            vocab_size: m,
            n_iters: 150,
            burn_in: 75,
            sample_lag: 5,
            seed: 2019,
            alpha: None,
            beta: 0.1,
            ..Default::default()
        },
        estimator: LdaEstimator::Gibbs,
    }
    .factory()
    .expect("registry covers LDA");
    let chh = ModelSpec::ChhExact {
        depth: 2,
        vocab_size: m,
    }
    .factory()
    .expect("registry covers CHH");
    let bigram = ModelSpec::Ngram(NgramConfig::bigram(m))
        .factory()
        .expect("registry covers n-grams");
    let random = RandomRecommender::new(m);

    let mut table = Table::new(
        "Recall and F1 vs threshold φ (mean ± 95% CI over windows)",
        &[
            "phi",
            "Recall_LDA3",
            "F1_LDA3",
            "Recall_CHH",
            "F1_CHH",
            "Recall_bigram",
            "Recall_random",
        ],
    );
    let run = |f: &dyn hlm_eval::RecommenderFactory| {
        eprintln!("evaluating {}…", f.name());
        evaluate_recommender(f, &corpus, &split.train, &split.test, &cfg)
    };
    let r_lda = run(lda.as_ref());
    let r_chh = run(chh.as_ref());
    let r_bi = run(bigram.as_ref());
    let r_rand = run(&random);
    for i in 0..cfg.thresholds.len() {
        table.add_row(vec![
            fmt_f(cfg.thresholds[i], 2),
            fmt_ci(&r_lda[i].recall, 3),
            fmt_ci(&r_lda[i].f1, 3),
            fmt_ci(&r_chh[i].recall, 3),
            fmt_ci(&r_chh[i].f1, 3),
            fmt_ci(&r_bi[i].recall, 3),
            fmt_ci(&r_rand[i].recall, 3),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Note: the random baseline retrieves everything for φ ≤ 1/{m} ≈ {:.3} and nothing above.",
        1.0 / m as f64
    );
}
