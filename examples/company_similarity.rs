//! Company similarity across representations: demonstrates the Section-3.1
//! motivation — raw binary distances are dominated by ubiquitous products,
//! LDA features recover the latent IT profile.
//!
//! ```sh
//! cargo run -p hlm-examples --release --bin company_similarity
//! ```

use hlm_core::representations as reps;
use hlm_core::{neighbor_label_agreement, popularity_bias, top_k_similar, DistanceMetric};
use hlm_corpus::tfidf::TfIdf;
use hlm_corpus::CompanyId;
use hlm_examples::{describe, example_corpus, example_lda, header};

fn main() {
    let corpus = example_corpus();
    let ids: Vec<CompanyId> = corpus.ids().collect();
    let tfidf = TfIdf::fit_all(&corpus);

    header("Representations under comparison");
    let raw = reps::raw_binary(&corpus, &ids);
    let raw_tf = reps::raw_tfidf(&corpus, &ids, &tfidf);
    let (lda, docs) = example_lda(&corpus, 3);
    let lda_b = reps::lda_representations(&lda, &docs);
    println!(
        "raw binary: {}d, raw TF-IDF: {}d, LDA topics: {}d",
        raw.cols(),
        raw_tf.cols(),
        lda_b.cols()
    );

    header("Popularity bias of nearest neighbours (share of popular-quartile products among shared products)");
    for (name, m) in [
        ("raw binary", &raw),
        ("raw TF-IDF", &raw_tf),
        ("LDA topics", &lda_b),
    ] {
        let bias = popularity_bias(&corpus, &ids, m, DistanceMetric::Cosine);
        println!("  {name:<12} {bias:.3}");
    }

    header("Nearest-neighbour latent-profile agreement (higher is better)");
    let labels: Vec<usize> = ids
        .iter()
        .map(|&id| corpus.company(id).industry.0 as usize % 3)
        .collect();
    for (name, m) in [
        ("raw binary", &raw),
        ("raw TF-IDF", &raw_tf),
        ("LDA topics", &lda_b),
    ] {
        let agree = neighbor_label_agreement(m, &labels, DistanceMetric::Cosine);
        println!("  {name:<12} {agree:.3}");
    }

    header("Example neighbourhood (LDA space)");
    let query = CompanyId(7);
    println!("query: {}", describe(&corpus, query));
    for (row, d) in top_k_similar(&lda_b, query.index(), 4, DistanceMetric::Cosine) {
        println!("  d={d:.4}  {}", describe(&corpus, CompanyId(row as u32)));
    }
}
