//! Concept-drift monitoring — the retraining trigger of Section 6.
//!
//! The deployed tool retrains its LDA "on demand or when the concept shift
//! is taken place". This example slides a yearly window over the corpus,
//! compares each year's product-acquisition mix against a fixed reference
//! period, and shows where the drift detector would have fired a retrain.
//!
//! ```sh
//! cargo run -p hlm-examples --release --bin drift_monitoring
//! ```

use hlm_corpus::{Month, TimeWindow};
use hlm_engine::Engine;
use hlm_examples::{example_corpus, header};

fn main() {
    let engine = Engine::new(example_corpus());
    let reference = TimeWindow::new(Month::from_ym(1995, 1), 36);
    header(&format!(
        "Reference period {} (acquisition mix of the mid-90s install base)",
        reference
    ));

    header("Yearly drift checks against the reference");
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>8}   verdict",
        "period", "events", "chi-square", "p-value", "JS"
    );
    let mut first_drift: Option<Month> = None;
    for year in (1998..=2015).step_by(2) {
        let recent = TimeWindow::new(Month::from_ym(year, 1), 12);
        let rep = engine.detect_drift(reference, recent, 0.01);
        println!(
            "{:<12} {:>8} {:>12.1} {:>10.2e} {:>8.4}   {}",
            recent.start.to_string(),
            rep.recent_events,
            rep.chi_square,
            rep.p_value,
            rep.js_divergence,
            if rep.drifted {
                "DRIFT — retrain"
            } else {
                "stable"
            }
        );
        if rep.drifted && first_drift.is_none() {
            first_drift = Some(recent.start);
        }
    }

    header("Interpretation");
    match first_drift {
        Some(m) => println!(
            "The acquisition mix departs from the mid-90s reference starting around {m}: \
             the generator's staged adoption (virtualization and cloud categories arrive \
             late) shifts the distribution, exactly the kind of concept shift after which \
             the paper's tool would retrain its LDA representations."
        ),
        None => println!("No drift detected — the corpus is stationary at this scale."),
    }
}
