//! Shared helpers for the example binaries: a ready-made corpus, a trained
//! LDA model and pretty-printing utilities.

use hlm_corpus::{CompanyId, Corpus};
use hlm_datagen::GeneratorConfig;
use hlm_engine::LdaEstimator;
use hlm_lda::{LdaConfig, LdaModel, WeightedDoc};

/// Default example corpus size (override with `HLM_EXAMPLE_COMPANIES`).
pub fn corpus_size() -> usize {
    std::env::var("HLM_EXAMPLE_COMPANIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500)
}

/// Generates the example corpus (a simulated HG-Data-style install-base
/// feed; see hlm-datagen).
pub fn example_corpus() -> Corpus {
    hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(corpus_size(), 2019))
}

/// Trains a 3-topic LDA on the full corpus and returns the model with the
/// documents it was trained on.
pub fn example_lda(corpus: &Corpus, n_topics: usize) -> (LdaModel, Vec<WeightedDoc>) {
    let ids: Vec<CompanyId> = corpus.ids().collect();
    let docs = hlm_core::representations::binary_docs(corpus, &ids);
    let config = LdaConfig {
        n_topics,
        vocab_size: corpus.vocab().len(),
        n_iters: 150,
        burn_in: 75,
        sample_lag: 5,
        seed: 2019,
        alpha: None,
        beta: 0.1,
        ..Default::default()
    };
    let model = hlm_engine::fit_lda(config, LdaEstimator::Gibbs, &docs)
        .expect("the example corpus yields a valid LDA spec");
    (model, docs)
}

/// Describes a company in one line.
pub fn describe(corpus: &Corpus, id: CompanyId) -> String {
    let c = corpus.company(id);
    let products: Vec<&str> = c
        .product_set()
        .into_iter()
        .take(6)
        .map(|p| corpus.vocab().name(p))
        .collect();
    format!(
        "{} [{} | country {} | {} employees | {:.1} M$] owns {} products: {}{}",
        c.name,
        hlm_corpus::sic::major_group_name(c.industry),
        c.country,
        c.employees,
        c.revenue_musd,
        c.product_count(),
        products.join(", "),
        if c.product_count() > 6 { ", …" } else { "" }
    )
}

/// Renders a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}
