//! Whitespace analysis — the deployed sales tool of Section 6.
//!
//! A hardware-services provider picks an existing customer, finds companies
//! with a similar IT install base (optionally filtered by industry, country
//! and size), and reads off the products those similar companies own that
//! the prospect does not — the sales whitespace.
//!
//! ```sh
//! cargo run -p hlm-examples --release --bin whitespace_analysis
//! ```

use hlm_core::representations::lda_representations;
use hlm_core::{CompanyFilter, DistanceMetric};
use hlm_engine::Engine;
use hlm_examples::{describe, example_corpus, example_lda, header};

fn main() {
    let corpus = example_corpus();
    let (lda, docs) = example_lda(&corpus, 3);
    let reps = lda_representations(&lda, &docs);
    let engine = Engine::new(corpus);
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .expect("representations match the corpus");

    // Pick a mid-sized customer with a substantial install base.
    let customer = app
        .corpus()
        .iter()
        .find(|(_, c)| c.product_count() >= 8 && c.employees > 100)
        .map(|(id, _)| id)
        .expect("corpus has substantial companies");

    header("Customer profile");
    println!("{}", describe(app.corpus(), customer));

    header("Unfiltered: top-10 similar companies anywhere");
    let unfiltered = app
        .find_similar(customer, 10, &CompanyFilter::default())
        .expect("customer id in range");
    for s in unfiltered {
        println!("  d={:.4}  {}", s.distance, describe(app.corpus(), s.id));
    }

    let home_country = app.corpus().company(customer).country;
    let filter = CompanyFilter {
        country: Some(home_country),
        employees: Some((50, u32::MAX)),
        ..Default::default()
    };
    header(&format!(
        "Filtered: same country ({home_country}), ≥ 50 employees"
    ));
    let similar = app
        .find_similar(customer, 10, &filter)
        .expect("customer id in range");
    for s in &similar {
        println!("  d={:.4}  {}", s.distance, describe(app.corpus(), s.id));
    }

    header("Whitespace: products the similar companies own but the customer lacks");
    let recs = app
        .recommend_whitespace(customer, 20, &filter)
        .expect("customer id in range");
    if recs.is_empty() {
        println!("  (no whitespace — the customer already owns everything its peers own)");
    }
    for r in recs.iter().take(8) {
        println!(
            "  {:<28} score {:.2}   ({} of the 20 similar companies own it)",
            app.corpus().vocab().name(r.product),
            r.score,
            r.owners_among_similar
        );
    }

    header("Interpretation");
    println!("The scores are similarity-weighted prevalence among the peer set; the");
    println!("deployed tool enriches exactly this list with internal account data");
    println!("before it reaches an offering manager (Section 6 of the paper).");
}
