//! The engine layer: a single entry point for training, scoring and serving
//! every model family the paper compares.
//!
//! The repo grows one crate per substrate (LDA, LSTM, n-grams, CHH, BPMF)
//! plus the contribution layer in `hlm-core`. Consumers used to construct
//! each model by hand — seven different constructor/`fit` shapes scattered
//! across the CLI, the figure experiments and the examples. This crate
//! collapses them behind three types:
//!
//! * [`ModelKind`] — the closed set of model families, parseable from the
//!   strings a CLI or config file would carry;
//! * [`ModelSpec`] — a *validated* configuration for one family, convertible
//!   into either a sliding-window [`RecommenderFactory`] (delegating to the
//!   adapters in [`hlm_core::recommenders`]) or a concrete trained model;
//! * [`TrainedModel`] — the trait object returned by [`ModelSpec::fit_sequences`]
//!   / [`Engine::train`], exposing `recommend` and `perplexity` uniformly and
//!   the concrete model via [`TrainedModel::as_any`] for family-specific
//!   diagnostics (topic inspection, heavy-hitter counts, …).
//!
//! Invalid input surfaces as a typed [`EngineError`] rather than a panic, so
//! a server built on the engine can turn bad requests into error responses.
//! The [`Engine`] facade holds the corpus behind an [`Arc`] and shares it
//! with every [`SalesApplication`] it spawns — one copy of the install-base
//! data regardless of how many serving surfaces are open.

use hlm_chh::{AprioriConfig, AprioriModel, ExactChh, StreamingChh};
use hlm_core::app::SalesApplication;
use hlm_core::recommenders::{
    masked_lda_scores, AprioriRecommenderFactory, ChhRecommenderFactory, LdaRecommenderFactory,
    LstmRecommenderFactory, NgramRecommenderFactory,
};
use hlm_core::similarity::DistanceMetric;
use hlm_core::CoreError;
pub use hlm_core::{RepStore, StorePrecision};
use hlm_corpus::CorpusSource;
use hlm_corpus::{CompanyId, Corpus, Month, TimeWindow};
use hlm_eval::drift::DriftReport;
use hlm_eval::{Recommender, RecommenderFactory};
use hlm_lda::{
    DocShardSource, GibbsTrainer, LdaConfig, LdaModel, OnlineVbOptions, OnlineVbTrainer,
    ShardedGibbsTrainer, VbOptions, VbTrainer, WeightedDoc,
};
use hlm_linalg::Matrix;
use hlm_lstm::{LstmConfig, LstmLm, TrainOptions, Trainer};
use hlm_ngram::{NgramConfig, NgramLm};
pub use hlm_par::{effective_threads, par_threshold, set_par_threshold, set_threads};
pub use hlm_resilience::{
    CancelHandle, Checkpoint, CheckpointStore, Clock, CollapsePolicy, Fault, FaultPlan,
    ManualClock, ResilienceError, RunGuard, SystemClock,
};

use hlm_resilience::TrainControl;
use std::any::Any;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong when configuring, training or serving a
/// model through the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An invalid-input error bubbled up from the contribution layer.
    Core(CoreError),
    /// A model-kind string did not name any registered family.
    UnknownModelKind(String),
    /// A [`ModelSpec`] carries parameters no model can be trained with.
    InvalidSpec {
        /// What is wrong with the spec.
        reason: String,
    },
    /// The family exists but does not support the requested operation.
    Unsupported {
        /// The model family.
        kind: ModelKind,
        /// The operation it cannot perform.
        operation: &'static str,
    },
    /// A resilience failure during training: watchdog trip, divergence with
    /// no good checkpoint to roll back to, or checkpoint IO damage.
    Resilience(ResilienceError),
}

impl EngineError {
    /// True when the error means "the run was stopped on purpose (deadline
    /// or cancellation) and can be resumed from its checkpoints".
    pub fn is_interruption(&self) -> bool {
        matches!(self, EngineError::Resilience(e) if e.is_interruption())
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::UnknownModelKind(s) => {
                write!(
                    f,
                    "unknown model kind {s:?} (expected one of {})",
                    ModelKind::NAMES
                )
            }
            EngineError::InvalidSpec { reason } => write!(f, "invalid model spec: {reason}"),
            EngineError::Unsupported { kind, operation } => {
                write!(f, "model family {kind} does not support {operation}")
            }
            EngineError::Resilience(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Resilience(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ResilienceError> for EngineError {
    fn from(e: ResilienceError) -> Self {
        EngineError::Resilience(e)
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

// ---------------------------------------------------------------------------
// Model kinds
// ---------------------------------------------------------------------------

/// The closed set of model families in the paper's comparison (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Interpolated n-gram language model (sequential association rules).
    Ngram,
    /// Latent Dirichlet Allocation over install bases.
    Lda,
    /// LSTM language model over acquisition sequences.
    Lstm,
    /// Exact Conditional Heavy Hitters.
    ChhExact,
    /// Streaming (SpaceSaving-budgeted) Conditional Heavy Hitters.
    ChhStreaming,
    /// Apriori association rules (time-agnostic baseline).
    Apriori,
    /// Bayesian Probabilistic Matrix Factorization.
    Bpmf,
}

impl ModelKind {
    /// Canonical names, in registry order — the strings [`FromStr`] accepts
    /// and [`fmt::Display`] prints.
    pub const NAMES: &'static str = "ngram, lda, lstm, chh-exact, chh-streaming, apriori, bpmf";

    /// Every family, in registry order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Ngram,
        ModelKind::Lda,
        ModelKind::Lstm,
        ModelKind::ChhExact,
        ModelKind::ChhStreaming,
        ModelKind::Apriori,
        ModelKind::Bpmf,
    ];
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::Ngram => "ngram",
            ModelKind::Lda => "lda",
            ModelKind::Lstm => "lstm",
            ModelKind::ChhExact => "chh-exact",
            ModelKind::ChhStreaming => "chh-streaming",
            ModelKind::Apriori => "apriori",
            ModelKind::Bpmf => "bpmf",
        };
        f.write_str(s)
    }
}

impl FromStr for ModelKind {
    type Err = EngineError;

    fn from_str(s: &str) -> Result<Self, EngineError> {
        match s.to_ascii_lowercase().as_str() {
            "ngram" | "n-gram" => Ok(ModelKind::Ngram),
            "lda" => Ok(ModelKind::Lda),
            "lstm" => Ok(ModelKind::Lstm),
            "chh" | "chh-exact" | "exact-chh" => Ok(ModelKind::ChhExact),
            "chh-streaming" | "streaming-chh" => Ok(ModelKind::ChhStreaming),
            "apriori" => Ok(ModelKind::Apriori),
            "bpmf" => Ok(ModelKind::Bpmf),
            _ => Err(EngineError::UnknownModelKind(s.to_string())),
        }
    }
}

/// Which LDA posterior estimator to run (Section 3.3 trains with collapsed
/// Gibbs; variational Bayes is the ablation alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdaEstimator {
    /// Collapsed Gibbs sampling (the paper's estimator).
    Gibbs,
    /// Mean-field variational Bayes.
    Vb,
}

// ---------------------------------------------------------------------------
// Model specs
// ---------------------------------------------------------------------------

/// A validated, self-contained configuration for one model family — the one
/// currency every consumer (CLI, experiments, examples) uses to request a
/// model from the engine.
#[derive(Debug, Clone)]
pub enum ModelSpec {
    /// Interpolated n-gram LM; the vocabulary lives in the config.
    Ngram(NgramConfig),
    /// LDA topic model with a choice of estimator.
    Lda {
        /// Topic count, vocabulary, sweeps, priors.
        config: LdaConfig,
        /// Gibbs (paper) or variational Bayes.
        estimator: LdaEstimator,
    },
    /// LSTM LM with its training schedule; `epochs: 0` yields the untrained
    /// random-init baseline of Figure 1.
    Lstm {
        /// Architecture.
        config: LstmConfig,
        /// Training schedule.
        train: TrainOptions,
        /// Parameter-init seed.
        seed: u64,
    },
    /// Exact Conditional Heavy Hitters.
    ChhExact {
        /// Context depth (paper: 2).
        depth: usize,
        /// Number of products `M`.
        vocab_size: usize,
    },
    /// Streaming Conditional Heavy Hitters under a SpaceSaving budget.
    ChhStreaming {
        /// Context depth.
        depth: usize,
        /// Number of products `M`.
        vocab_size: usize,
        /// Maximum tracked contexts.
        max_contexts: usize,
        /// SpaceSaving counters per context.
        counters_per_context: usize,
    },
    /// Apriori association rules.
    Apriori {
        /// Mining thresholds.
        config: AprioriConfig,
        /// Number of products `M`.
        vocab_size: usize,
    },
    /// Bayesian PMF. Carried for completeness of the registry; BPMF scores
    /// `(company, product)` cells rather than histories, so it only runs
    /// under its dedicated protocol ([`hlm_core::recommenders::evaluate_bpmf`])
    /// and every history-based operation returns [`EngineError::Unsupported`].
    Bpmf(hlm_bpmf::BpmfConfig),
}

impl ModelSpec {
    /// The family this spec configures.
    pub fn kind(&self) -> ModelKind {
        match self {
            ModelSpec::Ngram(_) => ModelKind::Ngram,
            ModelSpec::Lda { .. } => ModelKind::Lda,
            ModelSpec::Lstm { .. } => ModelKind::Lstm,
            ModelSpec::ChhExact { .. } => ModelKind::ChhExact,
            ModelSpec::ChhStreaming { .. } => ModelKind::ChhStreaming,
            ModelSpec::Apriori { .. } => ModelKind::Apriori,
            ModelSpec::Bpmf(_) => ModelKind::Bpmf,
        }
    }

    /// Report label, mirroring the adapters' conventions (`LDA3`, `2-gram`,
    /// `CHH`, …).
    pub fn label(&self) -> String {
        match self {
            ModelSpec::Ngram(cfg) => format!("{}-gram", cfg.order),
            ModelSpec::Lda { config, .. } => format!("LDA{}", config.n_topics),
            ModelSpec::Lstm { .. } => "LSTM".to_string(),
            ModelSpec::ChhExact { .. } => "CHH".to_string(),
            ModelSpec::ChhStreaming { .. } => "CHH-streaming".to_string(),
            ModelSpec::Apriori { .. } => "Apriori".to_string(),
            ModelSpec::Bpmf(_) => "BPMF".to_string(),
        }
    }

    /// Checks the spec for parameters no model can be trained with.
    ///
    /// # Errors
    /// [`EngineError::InvalidSpec`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), EngineError> {
        let invalid = |reason: String| Err(EngineError::InvalidSpec { reason });
        match self {
            ModelSpec::Ngram(cfg) => {
                if cfg.order == 0 {
                    return invalid("n-gram order must be at least 1".into());
                }
                if cfg.vocab_size == 0 {
                    return invalid("n-gram vocabulary must be non-empty".into());
                }
            }
            ModelSpec::Lda { config, .. } => {
                if config.n_topics == 0 {
                    return invalid("LDA needs at least one topic".into());
                }
                if config.vocab_size == 0 {
                    return invalid("LDA vocabulary must be non-empty".into());
                }
            }
            ModelSpec::Lstm { config, .. } => {
                if config.vocab_size == 0 {
                    return invalid("LSTM vocabulary must be non-empty".into());
                }
                if config.hidden_size == 0 || config.n_layers == 0 {
                    return invalid("LSTM needs at least one hidden unit and one layer".into());
                }
            }
            ModelSpec::ChhExact { vocab_size, .. } => {
                if *vocab_size == 0 {
                    return invalid("CHH vocabulary must be non-empty".into());
                }
            }
            ModelSpec::ChhStreaming {
                vocab_size,
                max_contexts,
                counters_per_context,
                ..
            } => {
                if *vocab_size == 0 {
                    return invalid("CHH vocabulary must be non-empty".into());
                }
                if *max_contexts == 0 || *counters_per_context == 0 {
                    return invalid(format!(
                        "streaming CHH budgets must be positive \
                         (max_contexts={max_contexts}, counters={counters_per_context})"
                    ));
                }
            }
            ModelSpec::Apriori { config, vocab_size } => {
                if *vocab_size == 0 {
                    return invalid("Apriori vocabulary must be non-empty".into());
                }
                if config.max_len == 0 {
                    return invalid("Apriori max_len must be at least 1".into());
                }
            }
            ModelSpec::Bpmf(cfg) => {
                if cfg.n_factors == 0 {
                    return invalid("BPMF needs at least one latent factor".into());
                }
            }
        }
        Ok(())
    }

    /// Bridges the spec to the sliding-window evaluation protocol: a
    /// [`RecommenderFactory`] that retrains on history before each window.
    /// Delegates to the adapters in [`hlm_core::recommenders`]; the streaming
    /// CHH factory (which core does not provide) lives in this crate.
    ///
    /// # Errors
    /// [`EngineError::InvalidSpec`] for unusable parameters;
    /// [`EngineError::Unsupported`] for BPMF (dedicated protocol) and the
    /// variational LDA estimator (the window protocol trains with Gibbs).
    pub fn factory(&self) -> Result<Box<dyn RecommenderFactory>, EngineError> {
        self.validate()?;
        match self {
            ModelSpec::Ngram(cfg) => Ok(Box::new(NgramRecommenderFactory::new(cfg.clone()))),
            ModelSpec::Lda { config, estimator } => match estimator {
                LdaEstimator::Gibbs => Ok(Box::new(LdaRecommenderFactory::new(config.clone()))),
                LdaEstimator::Vb => Err(EngineError::Unsupported {
                    kind: ModelKind::Lda,
                    operation: "sliding-window factory with the VB estimator",
                }),
            },
            ModelSpec::Lstm {
                config,
                train,
                seed,
            } => Ok(Box::new(LstmRecommenderFactory {
                config: config.clone(),
                train: train.clone(),
                seed: *seed,
            })),
            ModelSpec::ChhExact { depth, .. } => {
                Ok(Box::new(ChhRecommenderFactory { depth: *depth }))
            }
            ModelSpec::ChhStreaming {
                depth,
                max_contexts,
                counters_per_context,
                ..
            } => Ok(Box::new(StreamingChhRecommenderFactory {
                depth: *depth,
                max_contexts: *max_contexts,
                counters_per_context: *counters_per_context,
            })),
            ModelSpec::Apriori { config, .. } => Ok(Box::new(AprioriRecommenderFactory {
                config: config.clone(),
            })),
            ModelSpec::Bpmf(_) => Err(EngineError::Unsupported {
                kind: ModelKind::Bpmf,
                operation: "history-conditioned recommendation \
                            (use hlm_core::recommenders::evaluate_bpmf)",
            }),
        }
    }

    /// Trains a model on explicit acquisition sequences and returns it as a
    /// uniform [`TrainedModel`]. `valid` feeds early stopping where the
    /// family supports it (LSTM) and is ignored elsewhere.
    ///
    /// # Errors
    /// [`EngineError::InvalidSpec`] for unusable parameters;
    /// [`EngineError::Unsupported`] for BPMF, which is not a sequence model.
    pub fn fit_sequences(
        &self,
        train: &[Vec<usize>],
        valid: &[Vec<usize>],
    ) -> Result<Box<dyn TrainedModel>, EngineError> {
        self.validate()?;
        let label = self.label();
        match self {
            ModelSpec::Ngram(cfg) => {
                let model = NgramLm::fit(cfg.clone(), train);
                Ok(Box::new(TrainedNgram { model, label }))
            }
            ModelSpec::Lda { config, estimator } => {
                let docs = hlm_lda::unit_weights(train);
                let model = fit_lda(config.clone(), *estimator, &docs)?;
                Ok(Box::new(TrainedLda { model, label }))
            }
            ModelSpec::Lstm {
                config,
                train: opts,
                seed,
            } => {
                let seqs: Vec<Vec<usize>> =
                    train.iter().filter(|s| !s.is_empty()).cloned().collect();
                let mut model = LstmLm::new(config.clone(), *seed);
                if opts.epochs > 0 {
                    Trainer::new(opts.clone()).fit(&mut model, &seqs, valid);
                }
                Ok(Box::new(TrainedLstm { model, label }))
            }
            ModelSpec::ChhExact { depth, vocab_size } => {
                let model = ExactChh::fit(*depth, *vocab_size, train);
                Ok(Box::new(TrainedChhExact { model, label }))
            }
            ModelSpec::ChhStreaming {
                depth,
                vocab_size,
                max_contexts,
                counters_per_context,
            } => {
                let mut model =
                    StreamingChh::new(*depth, *vocab_size, *max_contexts, *counters_per_context);
                for seq in train {
                    model.observe_sequence(seq);
                }
                Ok(Box::new(TrainedChhStreaming { model, label }))
            }
            ModelSpec::Apriori { config, vocab_size } => {
                let baskets: Vec<Vec<usize>> =
                    train.iter().filter(|b| !b.is_empty()).cloned().collect();
                let model = if baskets.is_empty() {
                    // Degenerate single-basket model: predictions are zeros
                    // rather than a panic, matching the core adapter.
                    AprioriModel::mine(*vocab_size, &[vec![0]], config)
                } else {
                    AprioriModel::mine(*vocab_size, &baskets, config)
                };
                Ok(Box::new(TrainedApriori { model, label }))
            }
            ModelSpec::Bpmf(_) => Err(EngineError::Unsupported {
                kind: ModelKind::Bpmf,
                operation: "training on acquisition sequences",
            }),
        }
    }
}

/// Trains an LDA model on weighted documents (binary or TF-IDF input) with
/// the requested estimator, returning the concrete [`LdaModel`] for
/// consumers that need topics, embeddings or fold-in θ directly.
///
/// # Errors
/// [`EngineError::InvalidSpec`] on zero topics, an empty vocabulary, or an
/// empty document collection.
pub fn fit_lda(
    config: LdaConfig,
    estimator: LdaEstimator,
    docs: &[WeightedDoc],
) -> Result<LdaModel, EngineError> {
    ModelSpec::Lda {
        config: config.clone(),
        estimator,
    }
    .validate()?;
    if docs.is_empty() {
        return Err(EngineError::InvalidSpec {
            reason: "LDA needs at least one training document".into(),
        });
    }
    let rec = hlm_obs::global();
    let _span = rec.span("engine.fit_lda");
    rec.add("engine.trains", 1);
    Ok(match estimator {
        LdaEstimator::Gibbs => GibbsTrainer::new(config).fit(docs),
        LdaEstimator::Vb => VbTrainer::new(config, VbOptions::default()).fit(docs),
    })
}

/// Incrementally folds new documents (and optionally a grown vocabulary)
/// into a trained LDA model — the replay loop's cheap path between full
/// retrains. Validates inputs and delegates to [`hlm_lda::fold_in`].
///
/// # Errors
/// [`EngineError::InvalidSpec`] on zero sweeps, non-positive prior mass, a
/// shrinking vocabulary, or a document word outside `new_vocab_size`.
pub fn fold_in_lda(
    model: &LdaModel,
    new_docs: &[WeightedDoc],
    new_vocab_size: usize,
    opts: &hlm_lda::FoldInOptions,
) -> Result<LdaModel, EngineError> {
    if opts.n_sweeps == 0 {
        return Err(EngineError::InvalidSpec {
            reason: "fold-in needs at least one sweep".into(),
        });
    }
    // NaN must be rejected too, hence the explicit is_nan arm.
    if opts.prior_tokens.is_nan() || opts.prior_tokens <= 0.0 {
        return Err(EngineError::InvalidSpec {
            reason: format!(
                "fold-in prior token mass must be positive, got {}",
                opts.prior_tokens
            ),
        });
    }
    if new_vocab_size < model.vocab_size() {
        return Err(EngineError::InvalidSpec {
            reason: format!(
                "fold-in cannot shrink the vocabulary: {new_vocab_size} < {}",
                model.vocab_size()
            ),
        });
    }
    for doc in new_docs {
        for &(w, _) in doc {
            if w >= new_vocab_size {
                return Err(EngineError::InvalidSpec {
                    reason: format!(
                        "document word {w} outside the grown vocabulary of {new_vocab_size}"
                    ),
                });
            }
        }
    }
    let rec = hlm_obs::global();
    let _span = rec.span("engine.fold_in_lda");
    rec.add("engine.fold_ins", 1);
    Ok(hlm_lda::fold_in(model, new_docs, new_vocab_size, opts))
}

// ---------------------------------------------------------------------------
// Resilient training
// ---------------------------------------------------------------------------

/// How a resilient training run checkpoints, resumes and guards itself.
/// Consumed by [`Engine::train_resilient`] / [`ModelSpec::fit_sequences_resilient`]
/// (the [`RunGuard`] inside is single-use). A default plan — no store, an
/// unlimited guard — makes those entry points behave exactly like the plain
/// `fit` paths.
#[derive(Default)]
pub struct TrainPlan {
    store: Option<CheckpointStore>,
    resume: bool,
    guard: RunGuard,
    collapse: CollapsePolicy,
    faults: FaultPlan,
    checkpoint_every: u64,
    sampler: Option<hlm_lda::SamplerChoice>,
}

impl TrainPlan {
    /// A plan with no checkpointing and an unlimited watchdog.
    pub fn new() -> Self {
        TrainPlan {
            checkpoint_every: 1,
            ..TrainPlan::default()
        }
    }

    /// Checkpoint every completed iteration into `store`.
    pub fn with_store(mut self, store: CheckpointStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Checkpoint into (and resume from) a directory on disk.
    ///
    /// # Errors
    /// [`EngineError::Resilience`] if the directory cannot be created.
    pub fn on_disk(self, dir: impl Into<std::path::PathBuf>) -> Result<Self, EngineError> {
        Ok(self.with_store(CheckpointStore::on_disk(dir)?))
    }

    /// Before training, look for the latest good checkpoint in the store and
    /// continue from it instead of starting over.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Attach a watchdog (deadline, cancellation, deterministic aborts).
    pub fn with_guard(mut self, guard: RunGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Opt in to score-collapse detection at iteration boundaries.
    pub fn with_collapse_policy(mut self, policy: CollapsePolicy) -> Self {
        self.collapse = policy;
        self
    }

    /// Attach a deterministic fault plan (metric poisoning for tests).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Checkpoint only every `n` completed iterations (clamped to ≥ 1).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }

    /// Override the Gibbs token-sampler kernel (`Auto` picks by topic
    /// count). A fixed choice is part of the sampling schedule: changing it
    /// changes the RNG consumption pattern, so resumed runs must keep the
    /// choice their checkpoints were written under. Ignored by estimators
    /// without a Gibbs kernel (VB, online VB).
    pub fn with_sampler(mut self, sampler: hlm_lda::SamplerChoice) -> Self {
        self.sampler = Some(sampler);
        self
    }
}

/// The result of a resilient training run: the model plus how the run got
/// there (fresh, resumed, or rolled back after divergence).
pub struct ResilientFit<M> {
    /// The trained (or rolled-back) model.
    pub model: M,
    /// Iteration count of the checkpoint the run resumed from, if any.
    pub resumed_from: Option<u64>,
    /// Checkpoints successfully persisted during this run.
    pub checkpoints_written: u64,
    /// Set when training diverged and the model was recovered from the last
    /// good checkpoint instead — the model is usable but captures fewer
    /// iterations than requested.
    pub rolled_back: Option<ResilienceError>,
}

impl<M> fmt::Debug for ResilientFit<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResilientFit")
            .field("resumed_from", &self.resumed_from)
            .field("checkpoints_written", &self.checkpoints_written)
            .field("rolled_back", &self.rolled_back)
            .finish_non_exhaustive()
    }
}

/// Shared scaffolding for the per-family resilient fits: resolves the resume
/// checkpoint, builds the [`TrainControl`], runs `fit`, and on divergence
/// rolls back to the last good checkpoint via `rollback`.
fn run_resilient<M>(
    kind: &str,
    plan: TrainPlan,
    fit: impl FnOnce(
        &mut TrainControl,
        Option<&hlm_resilience::Checkpoint>,
    ) -> Result<M, ResilienceError>,
    rollback: impl FnOnce(&hlm_resilience::Checkpoint) -> Result<M, ResilienceError>,
) -> Result<ResilientFit<M>, EngineError> {
    let TrainPlan {
        store,
        resume,
        guard,
        collapse,
        faults,
        checkpoint_every,
        sampler: _, // consumed by the LDA entry points before they get here
    } = plan;

    let resume_ckpt = match (&store, resume) {
        (Some(s), true) => s.latest_good(kind)?,
        _ => None,
    };
    let resumed_from = resume_ckpt.as_ref().map(|c| c.iteration);

    let mut ctrl = match &store {
        Some(s) => TrainControl::new(kind, s),
        None => TrainControl::noop(),
    }
    .with_guard(guard)
    .with_collapse_policy(collapse)
    .with_faults(faults)
    .with_checkpoint_every(checkpoint_every.max(1));

    let result = fit(&mut ctrl, resume_ckpt.as_ref());
    let checkpoints_written = ctrl.saves();

    match result {
        Ok(model) => Ok(ResilientFit {
            model,
            resumed_from,
            checkpoints_written,
            rolled_back: None,
        }),
        Err(diverged @ ResilienceError::Diverged { .. }) => {
            // A poisoned model must never escape: recover the last snapshot
            // that passed its divergence checks, or surface the error.
            if let Some(s) = &store {
                match s.latest_good(kind) {
                    Ok(Some(good)) => {
                        if let Ok(model) = rollback(&good) {
                            hlm_obs::global().add("engine.rollbacks", 1);
                            return Ok(ResilientFit {
                                model,
                                resumed_from,
                                checkpoints_written,
                                rolled_back: Some(diverged),
                            });
                        }
                    }
                    Ok(None) => {}
                    // A failed read is not "no checkpoint": it means the
                    // store itself is broken, which the operator must hear
                    // about. Count it, log it, and still surface the
                    // original divergence below.
                    Err(read_err) => {
                        hlm_obs::global().add(hlm_obs::names::ENGINE_LATEST_GOOD_ERRORS, 1);
                        eprintln!(
                            "warning: divergence rollback could not read the latest good \
                             checkpoint for {kind}: {read_err}"
                        );
                    }
                }
            }
            Err(EngineError::Resilience(diverged))
        }
        Err(e) => Err(EngineError::Resilience(e)),
    }
}

/// Like [`fit_lda`], but checkpointed, resumable and watchdog-guarded per
/// `plan`. On divergence the model rolls back to the last good checkpoint
/// (reported in [`ResilientFit::rolled_back`]) instead of being returned
/// poisoned.
///
/// # Errors
/// Spec errors as in [`fit_lda`]; [`EngineError::Resilience`] when the
/// watchdog trips (resumable — see [`EngineError::is_interruption`]) or
/// divergence hits with no good checkpoint to fall back to.
pub fn fit_lda_resilient(
    mut config: LdaConfig,
    estimator: LdaEstimator,
    docs: &[WeightedDoc],
    plan: TrainPlan,
) -> Result<ResilientFit<LdaModel>, EngineError> {
    if let Some(sampler) = plan.sampler {
        config.sampler = sampler;
    }
    ModelSpec::Lda {
        config: config.clone(),
        estimator,
    }
    .validate()?;
    if docs.is_empty() {
        return Err(EngineError::InvalidSpec {
            reason: "LDA needs at least one training document".into(),
        });
    }
    let rec = hlm_obs::global();
    let _span = rec.span("engine.fit_lda_resilient");
    rec.add("engine.trains", 1);
    match estimator {
        LdaEstimator::Gibbs => {
            let trainer = GibbsTrainer::new(config);
            run_resilient(
                hlm_lda::GIBBS_CHECKPOINT_KIND,
                plan,
                |ctrl, resume| trainer.fit_resumable(docs, ctrl, resume),
                |good| trainer.model_from_checkpoint(good),
            )
        }
        LdaEstimator::Vb => {
            let trainer = VbTrainer::new(config, VbOptions::default());
            run_resilient(
                hlm_lda::VB_CHECKPOINT_KIND,
                plan,
                |ctrl, resume| trainer.fit_resumable(docs, ctrl, resume),
                |good| trainer.model_from_checkpoint(good),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Out-of-core (sharded) training
// ---------------------------------------------------------------------------

/// Adapts any [`CorpusSource`] into LDA document shards: each company
/// becomes its binary install-base document (distinct products, weight 1.0
/// each) — exactly what `hlm_core::representations::binary_docs` produces
/// for the full id range, so in-memory and sharded training see identical
/// token streams.
pub struct CorpusDocShards<'a, S: CorpusSource + ?Sized> {
    source: &'a S,
}

impl<'a, S: CorpusSource + ?Sized> CorpusDocShards<'a, S> {
    /// Wraps a corpus source.
    pub fn new(source: &'a S) -> Self {
        CorpusDocShards { source }
    }
}

impl<S: CorpusSource + ?Sized> DocShardSource for CorpusDocShards<'_, S> {
    fn n_docs(&self) -> usize {
        self.source.n_companies()
    }

    fn n_shards(&self) -> usize {
        self.source.n_shards()
    }

    fn shard_span(&self, s: usize) -> (usize, usize) {
        self.source.shard_span(s)
    }

    fn shard_docs(&self, s: usize) -> Vec<WeightedDoc> {
        self.source
            .shard(s)
            .iter()
            .map(|c| {
                c.product_set()
                    .into_iter()
                    .map(|p| (p.index(), 1.0))
                    .collect()
            })
            .collect()
    }
}

fn validate_sharded_spec(config: &LdaConfig, source: &dyn CorpusSource) -> Result<(), EngineError> {
    ModelSpec::Lda {
        config: config.clone(),
        estimator: LdaEstimator::Gibbs,
    }
    .validate()?;
    if source.n_companies() == 0 {
        return Err(EngineError::InvalidSpec {
            reason: "LDA needs at least one training document".into(),
        });
    }
    if config.vocab_size != source.vocab().len() {
        return Err(EngineError::InvalidSpec {
            reason: format!(
                "config vocab_size {} != corpus vocabulary of {}",
                config.vocab_size,
                source.vocab().len()
            ),
        });
    }
    Ok(())
}

/// Out-of-core collapsed Gibbs over a sharded corpus: streams one shard of
/// companies at a time, spilling per-shard sampler state under `work_dir`.
/// Bit-identical to [`fit_lda_resilient`] with [`LdaEstimator::Gibbs`] on
/// `binary_docs` of the same corpus, at any shard and thread count. Note the
/// plan's guard/checkpoint cadence counts *shard steps* (one shard of one
/// sweep), not sweeps.
///
/// # Errors
/// Spec errors as in [`fit_lda`] (plus a config/corpus vocabulary-size
/// mismatch); resilience errors as in [`fit_lda_resilient`].
pub fn fit_lda_sharded_gibbs(
    mut config: LdaConfig,
    source: &dyn CorpusSource,
    work_dir: impl Into<std::path::PathBuf>,
    plan: TrainPlan,
) -> Result<ResilientFit<LdaModel>, EngineError> {
    if let Some(sampler) = plan.sampler {
        config.sampler = sampler;
    }
    validate_sharded_spec(&config, source)?;
    let rec = hlm_obs::global();
    let _span = rec.span("engine.fit_lda_sharded_gibbs");
    rec.add("engine.trains", 1);
    let trainer = ShardedGibbsTrainer::new(config, work_dir);
    let docs = CorpusDocShards::new(source);
    run_resilient(
        hlm_lda::SHARDED_GIBBS_CHECKPOINT_KIND,
        plan,
        |ctrl, resume| trainer.fit_resumable(&docs, ctrl, resume),
        |good| trainer.model_from_checkpoint(good),
    )
}

/// Out-of-core online variational Bayes over a sharded corpus: one shard is
/// one minibatch, one pass over the shards is one epoch (`opts.epochs`
/// passes total). Deterministic and kill/resume-safe for a fixed shard
/// layout; see [`hlm_lda::online_vb`] for why different layouts legitimately
/// differ.
///
/// # Errors
/// As in [`fit_lda_sharded_gibbs`].
pub fn fit_lda_sharded_online_vb(
    config: LdaConfig,
    opts: OnlineVbOptions,
    source: &dyn CorpusSource,
    plan: TrainPlan,
) -> Result<ResilientFit<LdaModel>, EngineError> {
    validate_sharded_spec(&config, source)?;
    let rec = hlm_obs::global();
    let _span = rec.span("engine.fit_lda_sharded_online_vb");
    rec.add("engine.trains", 1);
    let trainer = OnlineVbTrainer::new(config, opts);
    let docs = CorpusDocShards::new(source);
    run_resilient(
        hlm_lda::ONLINE_VB_CHECKPOINT_KIND,
        plan,
        |ctrl, resume| trainer.fit_resumable(&docs, ctrl, resume),
        |good| trainer.model_from_checkpoint(good),
    )
}

/// Checkpointed, resumable, watchdog-guarded BPMF fit. BPMF scores
/// `(company, product)` cells rather than histories, so it gets its own
/// entry point instead of riding [`ModelSpec::fit_sequences_resilient`].
///
/// # Errors
/// [`EngineError::InvalidSpec`] on zero factors or empty ratings;
/// resilience errors as in [`fit_lda_resilient`].
pub fn fit_bpmf_resilient(
    n_rows: usize,
    n_cols: usize,
    ratings: &[hlm_bpmf::Rating],
    cfg: &hlm_bpmf::BpmfConfig,
    clamp: Option<(f64, f64)>,
    plan: TrainPlan,
) -> Result<ResilientFit<hlm_bpmf::BpmfModel>, EngineError> {
    ModelSpec::Bpmf(cfg.clone()).validate()?;
    if ratings.is_empty() {
        return Err(EngineError::InvalidSpec {
            reason: "BPMF needs at least one observed rating".into(),
        });
    }
    run_resilient(
        hlm_bpmf::BPMF_CHECKPOINT_KIND,
        plan,
        |ctrl, resume| hlm_bpmf::fit_resumable(n_rows, n_cols, ratings, cfg, clamp, ctrl, resume),
        |good| hlm_bpmf::model_from_checkpoint(good, clamp),
    )
}

impl ModelSpec {
    /// Like [`ModelSpec::fit_sequences`], but checkpointed, resumable and
    /// watchdog-guarded per `plan` for the iterative families (LSTM, LDA).
    /// One-shot families (n-gram, CHH, Apriori) train instantly and consult
    /// only the plan's watchdog; BPMF is refused as in `fit_sequences`.
    ///
    /// # Errors
    /// As in [`ModelSpec::fit_sequences`], plus [`EngineError::Resilience`]
    /// for watchdog trips and unrecoverable divergence.
    pub fn fit_sequences_resilient(
        &self,
        train: &[Vec<usize>],
        valid: &[Vec<usize>],
        plan: TrainPlan,
    ) -> Result<ResilientFit<Box<dyn TrainedModel>>, EngineError> {
        self.validate()?;
        let label = self.label();
        match self {
            ModelSpec::Lda { config, estimator } => {
                let docs = hlm_lda::unit_weights(train);
                let fit = fit_lda_resilient(config.clone(), *estimator, &docs, plan)?;
                Ok(ResilientFit {
                    model: Box::new(TrainedLda {
                        model: fit.model,
                        label,
                    }),
                    resumed_from: fit.resumed_from,
                    checkpoints_written: fit.checkpoints_written,
                    rolled_back: fit.rolled_back,
                })
            }
            ModelSpec::Lstm {
                config,
                train: opts,
                seed,
            } => {
                let seqs: Vec<Vec<usize>> =
                    train.iter().filter(|s| !s.is_empty()).cloned().collect();
                let init = LstmLm::new(config.clone(), *seed);
                if opts.epochs == 0 {
                    return Ok(ResilientFit {
                        model: Box::new(TrainedLstm { model: init, label }),
                        resumed_from: None,
                        checkpoints_written: 0,
                        rolled_back: None,
                    });
                }
                let trainer = Trainer::new(opts.clone());
                let fit = run_resilient(
                    hlm_lstm::LSTM_CHECKPOINT_KIND,
                    plan,
                    |ctrl, resume| {
                        let mut model = init;
                        trainer.fit_resumable(&mut model, &seqs, valid, ctrl, resume)?;
                        Ok(model)
                    },
                    |good| trainer.model_from_checkpoint(good).map(|(m, _)| m),
                )?;
                Ok(ResilientFit {
                    model: Box::new(TrainedLstm {
                        model: fit.model,
                        label,
                    }),
                    resumed_from: fit.resumed_from,
                    checkpoints_written: fit.checkpoints_written,
                    rolled_back: fit.rolled_back,
                })
            }
            // One-shot families: a single watchdog check, then the plain fit.
            _ => {
                plan.guard.check(0)?;
                Ok(ResilientFit {
                    model: self.fit_sequences(train, valid)?,
                    resumed_from: None,
                    checkpoints_written: 0,
                    rolled_back: None,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Degraded-mode serving
// ---------------------------------------------------------------------------

/// How a [`ResilientModel`] decides a primary answer is unusable.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Per-request latency budget; a primary answer that took longer is
    /// discarded in favour of the fallback. `None` disables the deadline.
    pub request_budget_millis: Option<u64>,
    /// Score-collapse policy: [`CollapsePolicy::Detect`] (the default here)
    /// also treats an all-constant score vector as a primary failure.
    pub collapse: CollapsePolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            request_budget_millis: None,
            collapse: CollapsePolicy::Detect,
        }
    }
}

/// A response from the fallback chain: the value plus whether it came from
/// the degraded path (and why).
#[derive(Debug, Clone, PartialEq)]
pub struct Served<T> {
    /// The answer (from the primary model, or the fallback when degraded).
    pub value: T,
    /// `None` when the primary answered cleanly; otherwise the reason the
    /// request fell back to the unigram baseline.
    pub degraded: Option<String>,
}

impl<T> Served<T> {
    /// Did this response come from the fallback path?
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// The serving fallback chain: a primary [`TrainedModel`] backed by a
/// unigram baseline. If the primary errors, produces non-finite or collapsed
/// scores, or blows the per-request latency budget, the request is
/// transparently answered by the unigram model and tagged degraded — the
/// sales application keeps answering either way.
pub struct ResilientModel {
    primary: Box<dyn TrainedModel>,
    fallback: NgramLm,
    opts: ServeOptions,
    clock: Box<dyn Clock>,
}

impl ResilientModel {
    /// Chains `primary` over a unigram `fallback` (train one with
    /// [`NgramConfig::unigram`] on the same sequences).
    pub fn new(primary: Box<dyn TrainedModel>, fallback: NgramLm, opts: ServeOptions) -> Self {
        ResilientModel {
            primary,
            fallback,
            opts,
            clock: Box::new(SystemClock::new()),
        }
    }

    /// Replace the latency clock (tests pass a
    /// [`hlm_resilience::ManualClock`] for deterministic deadline misses).
    pub fn with_clock(mut self, clock: Box<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// The primary model.
    pub fn primary(&self) -> &dyn TrainedModel {
        self.primary.as_ref()
    }

    /// Why a primary score vector is unusable, or `None` if it is fine.
    fn score_defect(&self, scores: &[f64]) -> Option<String> {
        if let Some(bad) = scores.iter().find(|s| !s.is_finite()) {
            return Some(format!("primary produced a non-finite score ({bad})"));
        }
        if self.opts.collapse == CollapsePolicy::Detect && scores.len() > 1 {
            let first = scores[0];
            if scores.iter().all(|s| (s - first).abs() < 1e-12) {
                return Some("primary score distribution collapsed to a constant".to_string());
            }
        }
        None
    }

    /// Next-acquisition scores with fallback: never errors, always answers.
    /// Uses the construction-time [`ServeOptions::request_budget_millis`];
    /// servers propagating a *per-request* deadline use
    /// [`ResilientModel::recommend_within`] instead.
    pub fn recommend(&self, history: &[usize]) -> Served<Vec<f64>> {
        self.recommend_within(history, self.opts.request_budget_millis)
    }

    /// [`ResilientModel::recommend`] with an explicit per-request latency
    /// budget, overriding the construction-time default. This is how a
    /// request deadline carried on the wire (header or query parameter)
    /// reaches the fallback chain: a primary answer that outlives *this
    /// request's* budget is discarded in favour of the unigram fallback.
    pub fn recommend_within(
        &self,
        history: &[usize],
        budget_millis: Option<u64>,
    ) -> Served<Vec<f64>> {
        let rec = hlm_obs::global();
        rec.add("serve.requests", 1);
        let req_t0 = rec.is_enabled().then(std::time::Instant::now);
        let started = self.clock.elapsed_millis();
        let degraded_reason = match self.primary.recommend(history) {
            Ok(scores) => {
                let elapsed = self.clock.elapsed_millis().saturating_sub(started);
                if let Some(defect) = self.score_defect(&scores) {
                    defect
                } else if budget_millis.is_some_and(|budget| elapsed > budget) {
                    format!("primary missed its deadline ({elapsed} ms)")
                } else {
                    if let Some(t0) = req_t0 {
                        rec.observe("serve.latency_seconds", t0.elapsed().as_secs_f64());
                    }
                    return Served {
                        value: scores,
                        degraded: None,
                    };
                }
            }
            Err(e) => format!("primary failed: {e}"),
        };
        rec.add("serve.degraded", 1);
        let served = Served {
            value: self.fallback.predict_next(history),
            degraded: Some(degraded_reason),
        };
        if let Some(t0) = req_t0 {
            rec.observe("serve.latency_seconds", t0.elapsed().as_secs_f64());
        }
        served
    }

    /// Held-out perplexity with fallback: a primary that errors or reports a
    /// non-finite value is replaced by the unigram baseline's figure.
    pub fn perplexity(&self, test: &[Vec<usize>]) -> Served<f64> {
        let rec = hlm_obs::global();
        rec.add("serve.requests", 1);
        let degraded_reason = match self.primary.perplexity(test) {
            Ok(ppl) if ppl.is_finite() => {
                return Served {
                    value: ppl,
                    degraded: None,
                }
            }
            Ok(ppl) => format!("primary perplexity is not finite ({ppl})"),
            Err(e) => format!("primary failed: {e}"),
        };
        rec.add("serve.degraded", 1);
        Served {
            value: self.fallback.perplexity(test),
            degraded: Some(degraded_reason),
        }
    }
}

// ---------------------------------------------------------------------------
// Trained models
// ---------------------------------------------------------------------------

/// A trained model of any family behind one interface. Obtained from
/// [`ModelSpec::fit_sequences`] or [`Engine::train`].
///
/// `Send + Sync` is part of the contract so trained models can be handed
/// across worker threads ([`Engine::train_many`]) and shared by a
/// multi-threaded server; every family's model is plain owned data, so the
/// bound costs implementors nothing.
pub trait TrainedModel: Send + Sync {
    /// The family that trained this model.
    fn kind(&self) -> ModelKind;

    /// Report label (`LDA3`, `2-gram`, …).
    fn label(&self) -> &str;

    /// Scores per product (length = vocabulary size) for the next
    /// acquisition given an install-base history.
    ///
    /// # Errors
    /// [`EngineError::Unsupported`] for families that cannot condition on a
    /// history.
    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError>;

    /// Per-token perplexity over held-out sequences (Figure 1 / Table 1
    /// protocol).
    ///
    /// # Errors
    /// [`EngineError::Unsupported`] for non-probabilistic families
    /// (CHH, Apriori).
    fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError>;

    /// The concrete model (e.g. [`ExactChh`], [`LdaModel`]) for
    /// family-specific diagnostics; downcast with `downcast_ref`.
    fn as_any(&self) -> &dyn Any;
}

struct TrainedNgram {
    model: NgramLm,
    label: String,
}

impl TrainedModel for TrainedNgram {
    fn kind(&self) -> ModelKind {
        ModelKind::Ngram
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict_next(history))
    }

    fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Ok(self.model.perplexity(test))
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedLda {
    model: LdaModel,
    label: String,
}

impl TrainedModel for TrainedLda {
    fn kind(&self) -> ModelKind {
        ModelKind::Lda
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(masked_lda_scores(&self.model, history))
    }

    fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError> {
        let docs = hlm_lda::unit_weights(test);
        Ok(hlm_lda::document_completion_perplexity(&self.model, &docs))
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

/// Wraps an already-materialized [`LdaModel`] as a [`TrainedModel`] — the
/// entry point for serving a model recovered from a checkpoint
/// (`GibbsTrainer::model_from_checkpoint`) rather than freshly trained:
/// hot-swap paths load the snapshot, wrap it here, and chain it into a
/// [`ResilientModel`] via [`Engine::resilient_over`].
pub fn lda_trained(model: LdaModel) -> Box<dyn TrainedModel> {
    let label = format!("LDA{}", model.n_topics());
    Box::new(TrainedLda { model, label })
}

struct TrainedLstm {
    model: LstmLm,
    label: String,
}

impl TrainedModel for TrainedLstm {
    fn kind(&self) -> ModelKind {
        ModelKind::Lstm
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict_next(history))
    }

    fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Ok(self.model.perplexity(test))
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedChhExact {
    model: ExactChh,
    label: String,
}

impl TrainedModel for TrainedChhExact {
    fn kind(&self) -> ModelKind {
        ModelKind::ChhExact
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict_next(history))
    }

    fn perplexity(&self, _test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Err(EngineError::Unsupported {
            kind: ModelKind::ChhExact,
            operation: "perplexity",
        })
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedChhStreaming {
    model: StreamingChh,
    label: String,
}

impl TrainedModel for TrainedChhStreaming {
    fn kind(&self) -> ModelKind {
        ModelKind::ChhStreaming
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict_next(history))
    }

    fn perplexity(&self, _test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Err(EngineError::Unsupported {
            kind: ModelKind::ChhStreaming,
            operation: "perplexity",
        })
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedApriori {
    model: AprioriModel,
    label: String,
}

impl TrainedModel for TrainedApriori {
    fn kind(&self) -> ModelKind {
        ModelKind::Apriori
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict(history))
    }

    fn perplexity(&self, _test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Err(EngineError::Unsupported {
            kind: ModelKind::Apriori,
            operation: "perplexity",
        })
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

// ---------------------------------------------------------------------------
// Streaming CHH factory (core only ships the exact one)
// ---------------------------------------------------------------------------

/// Sliding-window factory for streaming Conditional Heavy Hitters: per
/// cutoff, a fresh sketch observes every training sequence before the
/// window.
#[derive(Debug, Clone)]
pub struct StreamingChhRecommenderFactory {
    /// Context depth.
    pub depth: usize,
    /// Maximum tracked contexts.
    pub max_contexts: usize,
    /// SpaceSaving counters per context.
    pub counters_per_context: usize,
}

struct StreamingChhRecommender {
    model: StreamingChh,
}

impl Recommender for StreamingChhRecommender {
    fn scores(&self, history: &[usize]) -> Vec<f64> {
        self.model.predict_next(history)
    }

    fn name(&self) -> &str {
        "CHH-streaming"
    }
}

impl RecommenderFactory for StreamingChhRecommenderFactory {
    fn train(
        &self,
        corpus: &Corpus,
        train_ids: &[CompanyId],
        cutoff: Month,
    ) -> Box<dyn Recommender> {
        let mut model = StreamingChh::new(
            self.depth,
            corpus.vocab().len(),
            self.max_contexts,
            self.counters_per_context,
        );
        for &id in train_ids {
            let seq: Vec<usize> = corpus
                .company(id)
                .sequence_before(cutoff)
                .into_iter()
                .map(|p| p.index())
                .collect();
            model.observe_sequence(&seq);
        }
        Box::new(StreamingChhRecommender { model })
    }

    fn name(&self) -> &str {
        "CHH-streaming"
    }
}

// ---------------------------------------------------------------------------
// Engine facade
// ---------------------------------------------------------------------------

/// The serving facade: one corpus behind an [`Arc`], shared by every model
/// it trains and every [`SalesApplication`] it spawns — plus one
/// [`ServingCache`] shared by every application, invalidated whenever the
/// engine trains so stale rankings cannot outlive the model that produced
/// them.
pub struct Engine {
    corpus: Arc<Corpus>,
    serving_cache: Arc<hlm_core::ServingCache>,
}

impl Engine {
    /// Wraps a corpus (or an already-shared `Arc<Corpus>`).
    pub fn new(corpus: impl Into<Arc<Corpus>>) -> Self {
        Engine {
            corpus: corpus.into(),
            serving_cache: Arc::new(hlm_core::ServingCache::default()),
        }
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// A shared handle to the corpus (cheap; no data copy).
    pub fn corpus_arc(&self) -> Arc<Corpus> {
        Arc::clone(&self.corpus)
    }

    /// The engine's serving-side memo. Every [`Engine::sales_app`] shares
    /// it; every `train*` call invalidates it.
    pub fn serving_cache(&self) -> &Arc<hlm_core::ServingCache> {
        &self.serving_cache
    }

    /// Trains a model on the given companies' acquisition histories strictly
    /// before `cutoff`.
    ///
    /// # Errors
    /// Spec validation and family-support errors as in
    /// [`ModelSpec::fit_sequences`].
    pub fn train(
        &self,
        spec: &ModelSpec,
        ids: &[CompanyId],
        cutoff: Month,
    ) -> Result<Box<dyn TrainedModel>, EngineError> {
        let rec = hlm_obs::global();
        let _span = rec.span("engine.train");
        rec.add("engine.trains", 1);
        self.serving_cache.invalidate();
        spec.fit_sequences(&self.sequences_before(ids, cutoff), &[])
    }

    /// The given companies' acquisition sequences strictly before `cutoff`.
    fn sequences_before(&self, ids: &[CompanyId], cutoff: Month) -> Vec<Vec<usize>> {
        ids.iter()
            .map(|&id| {
                self.corpus
                    .company(id)
                    .sequence_before(cutoff)
                    .into_iter()
                    .map(|p| p.index())
                    .collect()
            })
            .collect()
    }

    /// Trains several model specs concurrently on the *same* histories —
    /// one worker-pool task per spec, results in spec order. Each family
    /// seeds its own RNG from its config, so the outcome is bit-identical
    /// to training the specs one after another (and independent of the
    /// thread count); only the wall-clock changes. This is the batch path
    /// behind the ablation tables, where half a dozen families train on one
    /// split.
    ///
    /// Per-spec failures are returned in place rather than aborting the
    /// batch: one invalid spec must not cost the others their training run.
    pub fn train_many(
        &self,
        specs: &[ModelSpec],
        ids: &[CompanyId],
        cutoff: Month,
    ) -> Vec<Result<Box<dyn TrainedModel>, EngineError>> {
        let seqs = self.sequences_before(ids, cutoff);
        self.serving_cache.invalidate();
        let pool = hlm_par::Pool::global();
        pool.run(specs.len(), |i| specs[i].fit_sequences(&seqs, &[]))
    }

    /// Like [`Engine::train`], but checkpointed, resumable and
    /// watchdog-guarded per `plan` (see [`ModelSpec::fit_sequences_resilient`]).
    ///
    /// # Errors
    /// As in [`ModelSpec::fit_sequences_resilient`].
    pub fn train_resilient(
        &self,
        spec: &ModelSpec,
        ids: &[CompanyId],
        cutoff: Month,
        plan: TrainPlan,
    ) -> Result<ResilientFit<Box<dyn TrainedModel>>, EngineError> {
        let rec = hlm_obs::global();
        let _span = rec.span("engine.train_resilient");
        rec.add("engine.trains", 1);
        self.serving_cache.invalidate();
        spec.fit_sequences_resilient(&self.sequences_before(ids, cutoff), &[], plan)
    }

    /// Trains the primary model *and* a unigram baseline on the same
    /// histories, chained into a [`ResilientModel`] so serving degrades
    /// gracefully instead of failing.
    ///
    /// # Errors
    /// As in [`Engine::train`].
    pub fn serve_resilient(
        &self,
        spec: &ModelSpec,
        ids: &[CompanyId],
        cutoff: Month,
        opts: ServeOptions,
    ) -> Result<ResilientModel, EngineError> {
        let rec = hlm_obs::global();
        let _span = rec.span("engine.serve_resilient");
        rec.add("engine.trains", 1);
        self.serving_cache.invalidate();
        let seqs = self.sequences_before(ids, cutoff);
        let primary = spec.fit_sequences(&seqs, &[])?;
        let fallback = NgramLm::fit(NgramConfig::unigram(self.corpus.vocab().len()), &seqs);
        Ok(ResilientModel::new(primary, fallback, opts))
    }

    /// Chains an *already trained* primary model (e.g. one recovered from a
    /// checkpoint via [`lda_trained`]) over a unigram fallback fitted on
    /// every company's full history. This is the hot-swap path: the server
    /// loads a candidate snapshot, wraps it here, canary-probes the result,
    /// and only then atomically replaces the serving bundle.
    pub fn resilient_over(
        &self,
        primary: Box<dyn TrainedModel>,
        opts: ServeOptions,
    ) -> ResilientModel {
        let ids: Vec<CompanyId> = self.corpus.ids().collect();
        let seqs = self.sequences_before(&ids, Month(i32::MAX));
        let fallback = NgramLm::fit(NgramConfig::unigram(self.corpus.vocab().len()), &seqs);
        ResilientModel::new(primary, fallback, opts)
    }

    /// Trains a model on every company's full history.
    ///
    /// # Errors
    /// As in [`Engine::train`].
    pub fn train_full(&self, spec: &ModelSpec) -> Result<Box<dyn TrainedModel>, EngineError> {
        let ids: Vec<CompanyId> = self.corpus.ids().collect();
        self.train(spec, &ids, Month(i32::MAX))
    }

    /// Opens the sales application over this corpus with the given company
    /// representations, sharing the corpus `Arc` (no data copy) and the
    /// engine's [`ServingCache`] — repeat queries against the same model
    /// generation replay memoized answers; any later `train*` call
    /// invalidates them.
    ///
    /// # Errors
    /// [`EngineError::Core`] on a row/company mismatch.
    pub fn sales_app(
        &self,
        representations: impl Into<Arc<Matrix>>,
        metric: DistanceMetric,
    ) -> Result<SalesApplication, EngineError> {
        self.sales_app_with_precision(representations, metric, hlm_core::StorePrecision::F64)
    }

    /// [`Engine::sales_app`] with an explicit scoring precision for the
    /// serving read path: `F64` is the exact default; `F32` serves from the
    /// reduced-precision store (faster scans, recall-gated rather than
    /// bit-identical — DESIGN.md §3.10).
    ///
    /// # Errors
    /// [`EngineError::Core`] on a row/company mismatch.
    pub fn sales_app_with_precision(
        &self,
        representations: impl Into<Arc<Matrix>>,
        metric: DistanceMetric,
        precision: hlm_core::StorePrecision,
    ) -> Result<SalesApplication, EngineError> {
        Ok(SalesApplication::new_with_precision(
            self.corpus_arc(),
            representations,
            metric,
            precision,
        )?
        .with_cache(Arc::clone(&self.serving_cache)))
    }

    /// Market-drift check between two time windows (Section 6's monitoring
    /// loop).
    pub fn detect_drift(
        &self,
        reference: TimeWindow,
        recent: TimeWindow,
        significance: f64,
    ) -> DriftReport {
        hlm_eval::drift::detect_drift(&self.corpus, reference, recent, significance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_datagen::GeneratorConfig;

    fn corpus() -> Corpus {
        hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(150, 5))
    }

    fn tiny_seqs() -> Vec<Vec<usize>> {
        vec![
            vec![0, 1, 2, 3],
            vec![1, 2, 3, 4],
            vec![0, 2, 4],
            vec![3, 1, 0, 2],
        ]
    }

    #[test]
    fn model_kind_round_trips_and_rejects_unknown() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.to_string().parse::<ModelKind>().unwrap(), kind);
        }
        assert_eq!("CHH".parse::<ModelKind>().unwrap(), ModelKind::ChhExact);
        let err = "markov-chain".parse::<ModelKind>().unwrap_err();
        assert_eq!(
            err,
            EngineError::UnknownModelKind("markov-chain".to_string())
        );
        assert!(err.to_string().contains("markov-chain"));
    }

    #[test]
    fn every_family_has_a_factory_or_a_reasoned_refusal() {
        let specs = [
            ModelSpec::Ngram(NgramConfig::bigram(5)),
            ModelSpec::Lda {
                config: LdaConfig {
                    n_topics: 2,
                    vocab_size: 5,
                    ..Default::default()
                },
                estimator: LdaEstimator::Gibbs,
            },
            ModelSpec::Lstm {
                config: LstmConfig {
                    vocab_size: 5,
                    hidden_size: 4,
                    ..Default::default()
                },
                train: TrainOptions::default(),
                seed: 1,
            },
            ModelSpec::ChhExact {
                depth: 2,
                vocab_size: 5,
            },
            ModelSpec::ChhStreaming {
                depth: 2,
                vocab_size: 5,
                max_contexts: 10,
                counters_per_context: 4,
            },
            ModelSpec::Apriori {
                config: AprioriConfig::default(),
                vocab_size: 5,
            },
        ];
        for spec in &specs {
            let factory = spec
                .factory()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
            assert!(!factory.name().is_empty());
        }
        // BPMF is registered but refuses the history-based protocol.
        let err = ModelSpec::Bpmf(hlm_bpmf::BpmfConfig::default())
            .factory()
            .err()
            .unwrap();
        assert!(matches!(
            err,
            EngineError::Unsupported {
                kind: ModelKind::Bpmf,
                ..
            }
        ));
    }

    #[test]
    fn ngram_and_lda_train_score_and_measure_perplexity() {
        let train = tiny_seqs();
        let test = vec![vec![0, 1, 2], vec![2, 3, 4]];
        for spec in [
            ModelSpec::Ngram(NgramConfig::bigram(5)),
            ModelSpec::Lda {
                config: LdaConfig {
                    n_topics: 2,
                    vocab_size: 5,
                    n_iters: 20,
                    burn_in: 10,
                    ..Default::default()
                },
                estimator: LdaEstimator::Gibbs,
            },
        ] {
            let model = spec.fit_sequences(&train, &[]).unwrap();
            assert_eq!(model.kind(), spec.kind());
            let scores = model.recommend(&[0, 1]).unwrap();
            assert_eq!(scores.len(), 5);
            assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
            let ppl = model.perplexity(&test).unwrap();
            assert!(ppl.is_finite() && ppl > 1.0, "{}: ppl {ppl}", model.label());
        }
    }

    #[test]
    fn chh_models_recommend_but_refuse_perplexity() {
        let train = tiny_seqs();
        for spec in [
            ModelSpec::ChhExact {
                depth: 2,
                vocab_size: 5,
            },
            ModelSpec::ChhStreaming {
                depth: 2,
                vocab_size: 5,
                max_contexts: 20,
                counters_per_context: 4,
            },
        ] {
            let model = spec.fit_sequences(&train, &[]).unwrap();
            assert_eq!(model.recommend(&[0, 1]).unwrap().len(), 5);
            let err = model.perplexity(&[vec![0, 1]]).unwrap_err();
            assert!(matches!(err, EngineError::Unsupported { .. }));
        }
    }

    #[test]
    fn downcast_reaches_the_concrete_model() {
        let spec = ModelSpec::ChhExact {
            depth: 1,
            vocab_size: 5,
        };
        let model = spec.fit_sequences(&tiny_seqs(), &[]).unwrap();
        let chh = model
            .as_any()
            .downcast_ref::<ExactChh>()
            .expect("concrete ExactChh");
        assert!(chh.context_count() > 0);
        // Wrong type: downcast politely fails.
        assert!(model.as_any().downcast_ref::<NgramLm>().is_none());
    }

    #[test]
    fn invalid_specs_are_rejected_before_training() {
        let zero_topics = ModelSpec::Lda {
            config: LdaConfig {
                n_topics: 0,
                vocab_size: 5,
                ..Default::default()
            },
            estimator: LdaEstimator::Gibbs,
        };
        assert!(matches!(
            zero_topics.fit_sequences(&tiny_seqs(), &[]).err().unwrap(),
            EngineError::InvalidSpec { .. }
        ));
        let zero_budget = ModelSpec::ChhStreaming {
            depth: 2,
            vocab_size: 5,
            max_contexts: 0,
            counters_per_context: 4,
        };
        assert!(matches!(
            zero_budget.fit_sequences(&tiny_seqs(), &[]).err().unwrap(),
            EngineError::InvalidSpec { .. }
        ));
        let zero_order = ModelSpec::Ngram(NgramConfig {
            order: 0,
            ..NgramConfig::bigram(5)
        });
        assert!(matches!(
            zero_order.factory().err().unwrap(),
            EngineError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn fit_lda_validates_and_supports_both_estimators() {
        let docs = hlm_lda::unit_weights(&tiny_seqs());
        let cfg = LdaConfig {
            n_topics: 2,
            vocab_size: 5,
            n_iters: 15,
            burn_in: 5,
            ..Default::default()
        };
        for est in [LdaEstimator::Gibbs, LdaEstimator::Vb] {
            let model = fit_lda(cfg.clone(), est, &docs).unwrap();
            assert_eq!(model.n_topics(), 2);
        }
        let err = fit_lda(cfg, LdaEstimator::Gibbs, &[]).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSpec { .. }));
    }

    #[test]
    fn fold_in_lda_validates_and_grows_vocab() {
        let docs = hlm_lda::unit_weights(&tiny_seqs());
        let cfg = LdaConfig {
            n_topics: 2,
            vocab_size: 5,
            n_iters: 15,
            burn_in: 5,
            ..Default::default()
        };
        let model = fit_lda(cfg, LdaEstimator::Gibbs, &docs).unwrap();
        let opts = hlm_lda::FoldInOptions {
            prior_tokens: 15.0,
            ..Default::default()
        };

        // Vocabulary grows by one; the folded model scores the new word.
        let new_docs = hlm_lda::unit_weights(&[vec![0, 1, 5], vec![2, 5]]);
        let folded = fold_in_lda(&model, &new_docs, 6, &opts).unwrap();
        assert_eq!(folded.vocab_size(), 6);
        assert_eq!(folded.n_topics(), 2);

        // Errors, not panics, on malformed requests.
        let shrink = fold_in_lda(&model, &new_docs, 4, &opts).unwrap_err();
        assert!(matches!(shrink, EngineError::InvalidSpec { .. }));
        let oov = fold_in_lda(&model, &new_docs, 5, &opts).unwrap_err();
        assert!(matches!(oov, EngineError::InvalidSpec { .. }));
        let zero = fold_in_lda(
            &model,
            &new_docs,
            6,
            &hlm_lda::FoldInOptions {
                n_sweeps: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(zero, EngineError::InvalidSpec { .. }));
    }

    #[test]
    fn train_many_matches_serial_training_and_keeps_per_spec_errors_in_place() {
        let engine = Engine::new(corpus());
        let ids: Vec<CompanyId> = engine.corpus().ids().collect();
        let vocab = engine.corpus().vocab().len();
        let cutoff = Month(i32::MAX);
        let specs = vec![
            ModelSpec::Ngram(NgramConfig::bigram(vocab)),
            // Invalid on purpose: the batch must carry this error in place
            // without costing the neighbouring specs their training runs.
            ModelSpec::Lda {
                config: LdaConfig {
                    n_topics: 0,
                    vocab_size: vocab,
                    ..Default::default()
                },
                estimator: LdaEstimator::Gibbs,
            },
            ModelSpec::Lda {
                config: LdaConfig {
                    n_topics: 2,
                    vocab_size: vocab,
                    n_iters: 20,
                    burn_in: 10,
                    ..Default::default()
                },
                estimator: LdaEstimator::Gibbs,
            },
        ];
        let batch = engine.train_many(&specs, &ids, cutoff);
        assert_eq!(batch.len(), specs.len());
        match &batch[1] {
            Err(EngineError::InvalidSpec { .. }) => {}
            Err(other) => panic!("expected InvalidSpec, got {other}"),
            Ok(_) => panic!("invalid spec must not train"),
        }
        let test = vec![vec![0, 1, 2], vec![2, 3]];
        for i in [0, 2] {
            let parallel = batch[i].as_ref().unwrap();
            let serial = engine.train(&specs[i], &ids, cutoff).unwrap();
            assert_eq!(parallel.label(), serial.label());
            let (p, s) = (
                parallel.perplexity(&test).unwrap(),
                serial.perplexity(&test).unwrap(),
            );
            assert!((p - s).abs() < 1e-12, "spec {i}: {p} != {s}");
        }
    }

    #[test]
    fn train_resilient_kill_and_resume_matches_plain_training() {
        use hlm_resilience::{CheckpointStore, MemIo};

        let engine = Engine::new(corpus());
        let ids: Vec<CompanyId> = engine.corpus().ids().collect();
        let spec = ModelSpec::Lda {
            config: LdaConfig {
                n_topics: 2,
                vocab_size: engine.corpus().vocab().len(),
                n_iters: 40,
                burn_in: 20,
                ..Default::default()
            },
            estimator: LdaEstimator::Gibbs,
        };
        let cutoff = Month(i32::MAX);
        let full = engine.train(&spec, &ids, cutoff).unwrap();

        // Kill at sweep 30 (mid phi accumulation), resume from the store.
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let plan = TrainPlan::new()
            .with_store(store)
            .with_guard(RunGuard::unlimited().abort_at_iteration(30));
        let err = engine
            .train_resilient(&spec, &ids, cutoff, plan)
            .unwrap_err();
        assert!(err.is_interruption(), "{err}");
        // The store was consumed by the plan; rebuild over the same MemIo is
        // not possible, so run the kill/resume pair against a disk store.
        let dir = std::env::temp_dir().join(format!("hlm-engine-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = TrainPlan::new()
            .on_disk(&dir)
            .unwrap()
            .with_guard(RunGuard::unlimited().abort_at_iteration(30));
        let err = engine
            .train_resilient(&spec, &ids, cutoff, plan)
            .unwrap_err();
        assert!(err.is_interruption());

        let plan = TrainPlan::new().on_disk(&dir).unwrap().resume(true);
        let fit = engine.train_resilient(&spec, &ids, cutoff, plan).unwrap();
        assert_eq!(fit.resumed_from, Some(30));
        assert!(fit.rolled_back.is_none());
        let test = vec![vec![0, 1, 2], vec![2, 3]];
        let full_ppl = full.perplexity(&test).unwrap();
        let resumed_ppl = fit.model.perplexity(&test).unwrap();
        assert!(
            (full_ppl - resumed_ppl).abs() < 1e-9,
            "resumed ppl {resumed_ppl} != full ppl {full_ppl}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_resilient_rolls_back_to_last_good_checkpoint_on_divergence() {
        use hlm_resilience::{CheckpointStore, FaultPlan, MemIo};

        let engine = Engine::new(corpus());
        let ids: Vec<CompanyId> = engine.corpus().ids().collect();
        let spec = ModelSpec::Lda {
            config: LdaConfig {
                n_topics: 2,
                vocab_size: engine.corpus().vocab().len(),
                n_iters: 40,
                burn_in: 20,
                ..Default::default()
            },
            estimator: LdaEstimator::Gibbs,
        };
        // NaN injected at sweep 35: past burn-in, so checkpoints 1..=35 hold
        // phi samples and rollback succeeds.
        let plan = TrainPlan::new()
            .with_store(CheckpointStore::new(Box::new(MemIo::new())))
            .with_faults(FaultPlan::none().with_nan_at_iteration(35));
        let fit = engine
            .train_resilient(&spec, &ids, Month(i32::MAX), plan)
            .unwrap();
        let rolled = fit.rolled_back.expect("divergence must be reported");
        assert!(matches!(
            rolled,
            ResilienceError::Diverged { iteration: 35, .. }
        ));
        // The rolled-back model is usable.
        let scores = fit.model.recommend(&[0, 1]).unwrap();
        assert!(scores.iter().all(|s| s.is_finite()));

        // Without a store there is nothing to roll back to: the divergence
        // surfaces as an error instead of a poisoned model.
        let plan = TrainPlan::new().with_faults(FaultPlan::none().with_nan_at_iteration(35));
        let err = engine
            .train_resilient(&spec, &ids, Month(i32::MAX), plan)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Resilience(ResilienceError::Diverged { .. })
        ));
    }

    /// A primary that always reports the same constant score for every
    /// product — the paper's BPMF degeneracy, distilled.
    struct CollapsedPrimary {
        vocab: usize,
    }

    impl TrainedModel for CollapsedPrimary {
        fn kind(&self) -> ModelKind {
            ModelKind::Bpmf
        }
        fn label(&self) -> &str {
            "collapsed"
        }
        fn recommend(&self, _history: &[usize]) -> Result<Vec<f64>, EngineError> {
            Ok(vec![1.0; self.vocab])
        }
        fn perplexity(&self, _test: &[Vec<usize>]) -> Result<f64, EngineError> {
            Ok(f64::NAN)
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn degraded_serving_falls_back_to_unigram_and_tags_the_response() {
        let train = tiny_seqs();
        let fallback = NgramLm::fit(NgramConfig::unigram(5), &train);

        // Healthy primary: served directly, not degraded.
        let healthy = ModelSpec::Ngram(NgramConfig::bigram(5))
            .fit_sequences(&train, &[])
            .unwrap();
        let server = ResilientModel::new(healthy, fallback.clone(), ServeOptions::default());
        let served = server.recommend(&[0, 1]);
        assert!(!served.is_degraded());
        assert_eq!(served.value.len(), 5);

        // Collapsed primary: unigram answers, response is tagged.
        let server = ResilientModel::new(
            Box::new(CollapsedPrimary { vocab: 5 }),
            fallback.clone(),
            ServeOptions::default(),
        );
        let served = server.recommend(&[0, 1]);
        assert!(served.is_degraded(), "collapse must degrade");
        assert!(served.degraded.as_deref().unwrap().contains("collapsed"));
        assert_eq!(served.value, fallback.predict_next(&[0, 1]));
        let ppl = server.perplexity(&[vec![0, 1, 2]]);
        assert!(ppl.is_degraded());
        assert!(ppl.value.is_finite());

        // Primaries that refuse the operation degrade too (CHH perplexity).
        let chh = ModelSpec::ChhExact {
            depth: 2,
            vocab_size: 5,
        }
        .fit_sequences(&train, &[])
        .unwrap();
        let server = ResilientModel::new(chh, fallback.clone(), ServeOptions::default());
        let ppl = server.perplexity(&[vec![0, 1, 2]]);
        assert!(ppl.is_degraded());
        assert!(ppl.value.is_finite());
    }

    /// A primary whose every answer takes a fixed number of (manual-clock)
    /// milliseconds — for deterministic deadline tests.
    struct SlowPrimary {
        inner: Box<dyn TrainedModel>,
        clock: hlm_resilience::ManualClock,
        cost_millis: u64,
    }

    impl TrainedModel for SlowPrimary {
        fn kind(&self) -> ModelKind {
            self.inner.kind()
        }
        fn label(&self) -> &str {
            "slow"
        }
        fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
            self.clock.advance(self.cost_millis);
            self.inner.recommend(history)
        }
        fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError> {
            self.inner.perplexity(test)
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn deadline_miss_degrades_deterministically() {
        use hlm_resilience::ManualClock;

        let train = tiny_seqs();
        let fallback = NgramLm::fit(NgramConfig::unigram(5), &train);
        let clock = ManualClock::new();
        let primary = SlowPrimary {
            inner: ModelSpec::Ngram(NgramConfig::bigram(5))
                .fit_sequences(&train, &[])
                .unwrap(),
            clock: clock.clone(),
            cost_millis: 50,
        };
        let server = ResilientModel::new(
            Box::new(primary),
            fallback,
            ServeOptions {
                request_budget_millis: Some(20),
                collapse: CollapsePolicy::Detect,
            },
        )
        .with_clock(Box::new(clock));
        let served = server.recommend(&[0, 1]);
        assert!(served.is_degraded(), "50 ms answer over a 20 ms budget");
        assert!(served.degraded.as_deref().unwrap().contains("deadline"));
    }

    #[test]
    fn per_request_budget_overrides_the_default() {
        use hlm_resilience::ManualClock;

        let train = tiny_seqs();
        let fallback = NgramLm::fit(NgramConfig::unigram(5), &train);
        let clock = ManualClock::new();
        let primary = SlowPrimary {
            inner: ModelSpec::Ngram(NgramConfig::bigram(5))
                .fit_sequences(&train, &[])
                .unwrap(),
            clock: clock.clone(),
            cost_millis: 50,
        };
        // No default budget: plain recommend() never misses a deadline.
        let server = ResilientModel::new(Box::new(primary), fallback, ServeOptions::default())
            .with_clock(Box::new(clock));
        assert!(!server.recommend(&[0, 1]).is_degraded());
        // A tight per-request budget degrades this one call only.
        let served = server.recommend_within(&[0, 1], Some(20));
        assert!(served.is_degraded(), "50 ms answer over a 20 ms budget");
        assert!(served.degraded.as_deref().unwrap().contains("deadline"));
        // A generous per-request budget passes again.
        assert!(!server.recommend_within(&[0, 1], Some(500)).is_degraded());
    }

    #[test]
    fn checkpointed_lda_serves_bit_identically_via_resilient_over() {
        let engine = Engine::new(corpus());
        let ids: Vec<CompanyId> = engine.corpus().ids().collect();
        let docs = hlm_core::representations::binary_docs(engine.corpus(), &ids);
        let config = LdaConfig {
            n_topics: 3,
            vocab_size: engine.corpus().vocab().len(),
            n_iters: 30,
            burn_in: 15,
            sample_lag: 5,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join(format!(
            "hlm-engine-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = TrainPlan::new().on_disk(&dir).unwrap();
        let fit = fit_lda_resilient(config.clone(), LdaEstimator::Gibbs, &docs, plan).unwrap();
        assert_eq!(fit.checkpoints_written, 30);

        // Reload the final snapshot: the recovered model must answer exactly
        // like the one the uninterrupted fit returned — this is what makes a
        // server warm-started from `latest_good` bit-identical.
        let store = CheckpointStore::on_disk(&dir).unwrap();
        let good = store
            .latest_good(hlm_lda::GIBBS_CHECKPOINT_KIND)
            .unwrap()
            .expect("final checkpoint present");
        assert_eq!(good.iteration, 30);
        let recovered = GibbsTrainer::new(config)
            .model_from_checkpoint(&good)
            .unwrap();

        let warm = engine.resilient_over(lda_trained(recovered), ServeOptions::default());
        let direct = lda_trained(fit.model);
        for history in [vec![0usize, 3], vec![5, 1, 2], vec![7]] {
            let a = warm.recommend(&history);
            assert!(!a.is_degraded(), "{:?}", a.degraded);
            assert_eq!(a.value, direct.recommend(&history).unwrap());
        }
        assert_eq!(warm.primary().label(), "LDA3");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_shot_families_consult_the_watchdog() {
        let spec = ModelSpec::Ngram(NgramConfig::bigram(5));
        let plan = TrainPlan::new().with_guard(RunGuard::unlimited().abort_at_iteration(0));
        let err = spec
            .fit_sequences_resilient(&tiny_seqs(), &[], plan)
            .unwrap_err();
        assert!(err.is_interruption());
        let fit = spec
            .fit_sequences_resilient(&tiny_seqs(), &[], TrainPlan::new())
            .unwrap();
        assert_eq!(fit.checkpoints_written, 0);
        assert!(fit.model.recommend(&[0]).is_ok());
    }

    #[test]
    fn bpmf_trains_resiliently_through_the_engine() {
        use hlm_bpmf::{BpmfConfig, Rating};
        use hlm_resilience::{CheckpointStore, MemIo};

        let ratings: Vec<Rating> = (0..8)
            .flat_map(|r| {
                (0..4).map(move |c| Rating {
                    row: r,
                    col: c,
                    value: ((r + c) % 3) as f64,
                })
            })
            .collect();
        let cfg = BpmfConfig {
            n_factors: 2,
            n_iters: 30,
            burn_in: 10,
            seed: 5,
            ..Default::default()
        };
        let full = fit_bpmf_resilient(8, 4, &ratings, &cfg, None, TrainPlan::new())
            .unwrap()
            .model;

        let dir = std::env::temp_dir().join(format!("hlm-engine-bpmf-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = TrainPlan::new()
            .on_disk(&dir)
            .unwrap()
            .with_guard(RunGuard::unlimited().abort_at_iteration(17));
        let err = fit_bpmf_resilient(8, 4, &ratings, &cfg, None, plan).unwrap_err();
        assert!(err.is_interruption());
        let plan = TrainPlan::new().on_disk(&dir).unwrap().resume(true);
        let fit = fit_bpmf_resilient(8, 4, &ratings, &cfg, None, plan).unwrap();
        assert_eq!(fit.resumed_from, Some(17));
        for r in 0..8 {
            assert_eq!(fit.model.predict_row(r), full.predict_row(r));
        }
        let _ = std::fs::remove_dir_all(&dir);

        // Rollback needs at least one post-burn-in sample.
        let plan = TrainPlan::new()
            .with_store(CheckpointStore::new(Box::new(MemIo::new())))
            .with_faults(hlm_resilience::FaultPlan::none().with_nan_at_iteration(25));
        let fit = fit_bpmf_resilient(8, 4, &ratings, &cfg, None, plan).unwrap();
        assert!(fit.rolled_back.is_some());
        assert!(fit.model.all_scores().iter().all(|s| s.is_finite()));
    }

    #[test]
    fn engine_trains_and_opens_the_sales_app_with_shared_corpus() {
        let engine = Engine::new(corpus());
        let model = engine
            .train_full(&ModelSpec::Ngram(NgramConfig::bigram(
                engine.corpus().vocab().len(),
            )))
            .unwrap();
        assert_eq!(
            model.recommend(&[0]).unwrap().len(),
            engine.corpus().vocab().len()
        );

        // The sales app shares the corpus allocation, not a copy.
        let ids: Vec<CompanyId> = engine.corpus().ids().collect();
        let reps = hlm_core::representations::raw_binary(engine.corpus(), &ids);
        let app = engine.sales_app(reps, DistanceMetric::Cosine).unwrap();
        assert!(Arc::ptr_eq(&engine.corpus_arc(), &app.corpus_arc()));

        // A mismatched representation matrix surfaces as a typed core error.
        let bad = Matrix::zeros(3, 4);
        let err = engine.sales_app(bad, DistanceMetric::Cosine).err().unwrap();
        assert_eq!(
            err,
            EngineError::Core(CoreError::RepresentationMismatch {
                rows: 3,
                companies: 150
            })
        );
    }

    fn sharded_dirs(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let base = std::env::temp_dir().join(format!(
            "hlm_engine_sharded_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        (base.join("store"), base.join("work"))
    }

    #[test]
    fn sharded_gibbs_over_shard_store_matches_in_memory_binary_docs() {
        let corpus = corpus();
        let (store_dir, work_dir) = sharded_dirs("gibbs");
        let store = hlm_corpus::shard::write_corpus_sharded(&corpus, &store_dir, 3).unwrap();
        let cfg = LdaConfig {
            n_topics: 4,
            vocab_size: corpus.vocab().len(),
            n_iters: 12,
            burn_in: 6,
            sample_lag: 2,
            seed: 17,
            ..Default::default()
        };

        let ids: Vec<CompanyId> = corpus.ids().collect();
        let docs = hlm_core::representations::binary_docs(&corpus, &ids);
        let in_memory = fit_lda(cfg.clone(), LdaEstimator::Gibbs, &docs).unwrap();

        let sharded = fit_lda_sharded_gibbs(cfg, &store, &work_dir, TrainPlan::new()).unwrap();
        assert!(sharded.resumed_from.is_none());
        assert_eq!(sharded.model.phi(), in_memory.phi());
        std::fs::remove_dir_all(store_dir.parent().unwrap()).unwrap();
    }

    #[test]
    fn sharded_online_vb_matches_across_backing_stores() {
        let corpus = corpus();
        let (store_dir, _) = sharded_dirs("ovb");
        let store = hlm_corpus::shard::write_corpus_sharded(&corpus, &store_dir, 3).unwrap();
        let cfg = LdaConfig {
            n_topics: 4,
            vocab_size: corpus.vocab().len(),
            seed: 23,
            ..Default::default()
        };
        let opts = OnlineVbOptions {
            epochs: 2,
            ..Default::default()
        };

        // Same shard layout, different backing store (disk vs RAM): the fits
        // must agree to the last bit.
        let from_disk =
            fit_lda_sharded_online_vb(cfg.clone(), opts.clone(), &store, TrainPlan::new()).unwrap();
        let mem =
            hlm_corpus::shard::MemShardSource::new(&corpus, store.manifest().shard_size as usize);
        let from_mem = fit_lda_sharded_online_vb(cfg, opts, &mem, TrainPlan::new()).unwrap();
        assert_eq!(from_disk.model.phi(), from_mem.model.phi());
        std::fs::remove_dir_all(store_dir.parent().unwrap()).unwrap();
    }
}
