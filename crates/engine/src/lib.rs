//! The engine layer: a single entry point for training, scoring and serving
//! every model family the paper compares.
//!
//! The repo grows one crate per substrate (LDA, LSTM, n-grams, CHH, BPMF)
//! plus the contribution layer in `hlm-core`. Consumers used to construct
//! each model by hand — seven different constructor/`fit` shapes scattered
//! across the CLI, the figure experiments and the examples. This crate
//! collapses them behind three types:
//!
//! * [`ModelKind`] — the closed set of model families, parseable from the
//!   strings a CLI or config file would carry;
//! * [`ModelSpec`] — a *validated* configuration for one family, convertible
//!   into either a sliding-window [`RecommenderFactory`] (delegating to the
//!   adapters in [`hlm_core::recommenders`]) or a concrete trained model;
//! * [`TrainedModel`] — the trait object returned by [`ModelSpec::fit_sequences`]
//!   / [`Engine::train`], exposing `recommend` and `perplexity` uniformly and
//!   the concrete model via [`TrainedModel::as_any`] for family-specific
//!   diagnostics (topic inspection, heavy-hitter counts, …).
//!
//! Invalid input surfaces as a typed [`EngineError`] rather than a panic, so
//! a server built on the engine can turn bad requests into error responses.
//! The [`Engine`] facade holds the corpus behind an [`Arc`] and shares it
//! with every [`SalesApplication`] it spawns — one copy of the install-base
//! data regardless of how many serving surfaces are open.

use hlm_chh::{AprioriConfig, AprioriModel, ExactChh, StreamingChh};
use hlm_core::app::SalesApplication;
use hlm_core::recommenders::{
    masked_lda_scores, AprioriRecommenderFactory, ChhRecommenderFactory, LdaRecommenderFactory,
    LstmRecommenderFactory, NgramRecommenderFactory,
};
use hlm_core::similarity::DistanceMetric;
use hlm_core::CoreError;
use hlm_corpus::{CompanyId, Corpus, Month, TimeWindow};
use hlm_eval::drift::DriftReport;
use hlm_eval::{Recommender, RecommenderFactory};
use hlm_lda::{GibbsTrainer, LdaConfig, LdaModel, VbOptions, VbTrainer, WeightedDoc};
use hlm_linalg::Matrix;
use hlm_lstm::{LstmConfig, LstmLm, TrainOptions, Trainer};
use hlm_ngram::{NgramConfig, NgramLm};
use std::any::Any;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong when configuring, training or serving a
/// model through the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An invalid-input error bubbled up from the contribution layer.
    Core(CoreError),
    /// A model-kind string did not name any registered family.
    UnknownModelKind(String),
    /// A [`ModelSpec`] carries parameters no model can be trained with.
    InvalidSpec {
        /// What is wrong with the spec.
        reason: String,
    },
    /// The family exists but does not support the requested operation.
    Unsupported {
        /// The model family.
        kind: ModelKind,
        /// The operation it cannot perform.
        operation: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::UnknownModelKind(s) => {
                write!(
                    f,
                    "unknown model kind {s:?} (expected one of {})",
                    ModelKind::NAMES
                )
            }
            EngineError::InvalidSpec { reason } => write!(f, "invalid model spec: {reason}"),
            EngineError::Unsupported { kind, operation } => {
                write!(f, "model family {kind} does not support {operation}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

// ---------------------------------------------------------------------------
// Model kinds
// ---------------------------------------------------------------------------

/// The closed set of model families in the paper's comparison (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Interpolated n-gram language model (sequential association rules).
    Ngram,
    /// Latent Dirichlet Allocation over install bases.
    Lda,
    /// LSTM language model over acquisition sequences.
    Lstm,
    /// Exact Conditional Heavy Hitters.
    ChhExact,
    /// Streaming (SpaceSaving-budgeted) Conditional Heavy Hitters.
    ChhStreaming,
    /// Apriori association rules (time-agnostic baseline).
    Apriori,
    /// Bayesian Probabilistic Matrix Factorization.
    Bpmf,
}

impl ModelKind {
    /// Canonical names, in registry order — the strings [`FromStr`] accepts
    /// and [`fmt::Display`] prints.
    pub const NAMES: &'static str = "ngram, lda, lstm, chh-exact, chh-streaming, apriori, bpmf";

    /// Every family, in registry order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Ngram,
        ModelKind::Lda,
        ModelKind::Lstm,
        ModelKind::ChhExact,
        ModelKind::ChhStreaming,
        ModelKind::Apriori,
        ModelKind::Bpmf,
    ];
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::Ngram => "ngram",
            ModelKind::Lda => "lda",
            ModelKind::Lstm => "lstm",
            ModelKind::ChhExact => "chh-exact",
            ModelKind::ChhStreaming => "chh-streaming",
            ModelKind::Apriori => "apriori",
            ModelKind::Bpmf => "bpmf",
        };
        f.write_str(s)
    }
}

impl FromStr for ModelKind {
    type Err = EngineError;

    fn from_str(s: &str) -> Result<Self, EngineError> {
        match s.to_ascii_lowercase().as_str() {
            "ngram" | "n-gram" => Ok(ModelKind::Ngram),
            "lda" => Ok(ModelKind::Lda),
            "lstm" => Ok(ModelKind::Lstm),
            "chh" | "chh-exact" | "exact-chh" => Ok(ModelKind::ChhExact),
            "chh-streaming" | "streaming-chh" => Ok(ModelKind::ChhStreaming),
            "apriori" => Ok(ModelKind::Apriori),
            "bpmf" => Ok(ModelKind::Bpmf),
            _ => Err(EngineError::UnknownModelKind(s.to_string())),
        }
    }
}

/// Which LDA posterior estimator to run (Section 3.3 trains with collapsed
/// Gibbs; variational Bayes is the ablation alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdaEstimator {
    /// Collapsed Gibbs sampling (the paper's estimator).
    Gibbs,
    /// Mean-field variational Bayes.
    Vb,
}

// ---------------------------------------------------------------------------
// Model specs
// ---------------------------------------------------------------------------

/// A validated, self-contained configuration for one model family — the one
/// currency every consumer (CLI, experiments, examples) uses to request a
/// model from the engine.
#[derive(Debug, Clone)]
pub enum ModelSpec {
    /// Interpolated n-gram LM; the vocabulary lives in the config.
    Ngram(NgramConfig),
    /// LDA topic model with a choice of estimator.
    Lda {
        /// Topic count, vocabulary, sweeps, priors.
        config: LdaConfig,
        /// Gibbs (paper) or variational Bayes.
        estimator: LdaEstimator,
    },
    /// LSTM LM with its training schedule; `epochs: 0` yields the untrained
    /// random-init baseline of Figure 1.
    Lstm {
        /// Architecture.
        config: LstmConfig,
        /// Training schedule.
        train: TrainOptions,
        /// Parameter-init seed.
        seed: u64,
    },
    /// Exact Conditional Heavy Hitters.
    ChhExact {
        /// Context depth (paper: 2).
        depth: usize,
        /// Number of products `M`.
        vocab_size: usize,
    },
    /// Streaming Conditional Heavy Hitters under a SpaceSaving budget.
    ChhStreaming {
        /// Context depth.
        depth: usize,
        /// Number of products `M`.
        vocab_size: usize,
        /// Maximum tracked contexts.
        max_contexts: usize,
        /// SpaceSaving counters per context.
        counters_per_context: usize,
    },
    /// Apriori association rules.
    Apriori {
        /// Mining thresholds.
        config: AprioriConfig,
        /// Number of products `M`.
        vocab_size: usize,
    },
    /// Bayesian PMF. Carried for completeness of the registry; BPMF scores
    /// `(company, product)` cells rather than histories, so it only runs
    /// under its dedicated protocol ([`hlm_core::recommenders::evaluate_bpmf`])
    /// and every history-based operation returns [`EngineError::Unsupported`].
    Bpmf(hlm_bpmf::BpmfConfig),
}

impl ModelSpec {
    /// The family this spec configures.
    pub fn kind(&self) -> ModelKind {
        match self {
            ModelSpec::Ngram(_) => ModelKind::Ngram,
            ModelSpec::Lda { .. } => ModelKind::Lda,
            ModelSpec::Lstm { .. } => ModelKind::Lstm,
            ModelSpec::ChhExact { .. } => ModelKind::ChhExact,
            ModelSpec::ChhStreaming { .. } => ModelKind::ChhStreaming,
            ModelSpec::Apriori { .. } => ModelKind::Apriori,
            ModelSpec::Bpmf(_) => ModelKind::Bpmf,
        }
    }

    /// Report label, mirroring the adapters' conventions (`LDA3`, `2-gram`,
    /// `CHH`, …).
    pub fn label(&self) -> String {
        match self {
            ModelSpec::Ngram(cfg) => format!("{}-gram", cfg.order),
            ModelSpec::Lda { config, .. } => format!("LDA{}", config.n_topics),
            ModelSpec::Lstm { .. } => "LSTM".to_string(),
            ModelSpec::ChhExact { .. } => "CHH".to_string(),
            ModelSpec::ChhStreaming { .. } => "CHH-streaming".to_string(),
            ModelSpec::Apriori { .. } => "Apriori".to_string(),
            ModelSpec::Bpmf(_) => "BPMF".to_string(),
        }
    }

    /// Checks the spec for parameters no model can be trained with.
    ///
    /// # Errors
    /// [`EngineError::InvalidSpec`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), EngineError> {
        let invalid = |reason: String| Err(EngineError::InvalidSpec { reason });
        match self {
            ModelSpec::Ngram(cfg) => {
                if cfg.order == 0 {
                    return invalid("n-gram order must be at least 1".into());
                }
                if cfg.vocab_size == 0 {
                    return invalid("n-gram vocabulary must be non-empty".into());
                }
            }
            ModelSpec::Lda { config, .. } => {
                if config.n_topics == 0 {
                    return invalid("LDA needs at least one topic".into());
                }
                if config.vocab_size == 0 {
                    return invalid("LDA vocabulary must be non-empty".into());
                }
            }
            ModelSpec::Lstm { config, .. } => {
                if config.vocab_size == 0 {
                    return invalid("LSTM vocabulary must be non-empty".into());
                }
                if config.hidden_size == 0 || config.n_layers == 0 {
                    return invalid("LSTM needs at least one hidden unit and one layer".into());
                }
            }
            ModelSpec::ChhExact { vocab_size, .. } => {
                if *vocab_size == 0 {
                    return invalid("CHH vocabulary must be non-empty".into());
                }
            }
            ModelSpec::ChhStreaming {
                vocab_size,
                max_contexts,
                counters_per_context,
                ..
            } => {
                if *vocab_size == 0 {
                    return invalid("CHH vocabulary must be non-empty".into());
                }
                if *max_contexts == 0 || *counters_per_context == 0 {
                    return invalid(format!(
                        "streaming CHH budgets must be positive \
                         (max_contexts={max_contexts}, counters={counters_per_context})"
                    ));
                }
            }
            ModelSpec::Apriori { config, vocab_size } => {
                if *vocab_size == 0 {
                    return invalid("Apriori vocabulary must be non-empty".into());
                }
                if config.max_len == 0 {
                    return invalid("Apriori max_len must be at least 1".into());
                }
            }
            ModelSpec::Bpmf(cfg) => {
                if cfg.n_factors == 0 {
                    return invalid("BPMF needs at least one latent factor".into());
                }
            }
        }
        Ok(())
    }

    /// Bridges the spec to the sliding-window evaluation protocol: a
    /// [`RecommenderFactory`] that retrains on history before each window.
    /// Delegates to the adapters in [`hlm_core::recommenders`]; the streaming
    /// CHH factory (which core does not provide) lives in this crate.
    ///
    /// # Errors
    /// [`EngineError::InvalidSpec`] for unusable parameters;
    /// [`EngineError::Unsupported`] for BPMF (dedicated protocol) and the
    /// variational LDA estimator (the window protocol trains with Gibbs).
    pub fn factory(&self) -> Result<Box<dyn RecommenderFactory>, EngineError> {
        self.validate()?;
        match self {
            ModelSpec::Ngram(cfg) => Ok(Box::new(NgramRecommenderFactory::new(cfg.clone()))),
            ModelSpec::Lda { config, estimator } => match estimator {
                LdaEstimator::Gibbs => Ok(Box::new(LdaRecommenderFactory::new(config.clone()))),
                LdaEstimator::Vb => Err(EngineError::Unsupported {
                    kind: ModelKind::Lda,
                    operation: "sliding-window factory with the VB estimator",
                }),
            },
            ModelSpec::Lstm {
                config,
                train,
                seed,
            } => Ok(Box::new(LstmRecommenderFactory {
                config: config.clone(),
                train: train.clone(),
                seed: *seed,
            })),
            ModelSpec::ChhExact { depth, .. } => {
                Ok(Box::new(ChhRecommenderFactory { depth: *depth }))
            }
            ModelSpec::ChhStreaming {
                depth,
                max_contexts,
                counters_per_context,
                ..
            } => Ok(Box::new(StreamingChhRecommenderFactory {
                depth: *depth,
                max_contexts: *max_contexts,
                counters_per_context: *counters_per_context,
            })),
            ModelSpec::Apriori { config, .. } => Ok(Box::new(AprioriRecommenderFactory {
                config: config.clone(),
            })),
            ModelSpec::Bpmf(_) => Err(EngineError::Unsupported {
                kind: ModelKind::Bpmf,
                operation: "history-conditioned recommendation \
                            (use hlm_core::recommenders::evaluate_bpmf)",
            }),
        }
    }

    /// Trains a model on explicit acquisition sequences and returns it as a
    /// uniform [`TrainedModel`]. `valid` feeds early stopping where the
    /// family supports it (LSTM) and is ignored elsewhere.
    ///
    /// # Errors
    /// [`EngineError::InvalidSpec`] for unusable parameters;
    /// [`EngineError::Unsupported`] for BPMF, which is not a sequence model.
    pub fn fit_sequences(
        &self,
        train: &[Vec<usize>],
        valid: &[Vec<usize>],
    ) -> Result<Box<dyn TrainedModel>, EngineError> {
        self.validate()?;
        let label = self.label();
        match self {
            ModelSpec::Ngram(cfg) => {
                let model = NgramLm::fit(cfg.clone(), train);
                Ok(Box::new(TrainedNgram { model, label }))
            }
            ModelSpec::Lda { config, estimator } => {
                let docs = hlm_lda::unit_weights(train);
                let model = fit_lda(config.clone(), *estimator, &docs)?;
                Ok(Box::new(TrainedLda { model, label }))
            }
            ModelSpec::Lstm {
                config,
                train: opts,
                seed,
            } => {
                let seqs: Vec<Vec<usize>> =
                    train.iter().filter(|s| !s.is_empty()).cloned().collect();
                let mut model = LstmLm::new(config.clone(), *seed);
                if opts.epochs > 0 {
                    Trainer::new(opts.clone()).fit(&mut model, &seqs, valid);
                }
                Ok(Box::new(TrainedLstm { model, label }))
            }
            ModelSpec::ChhExact { depth, vocab_size } => {
                let model = ExactChh::fit(*depth, *vocab_size, train);
                Ok(Box::new(TrainedChhExact { model, label }))
            }
            ModelSpec::ChhStreaming {
                depth,
                vocab_size,
                max_contexts,
                counters_per_context,
            } => {
                let mut model =
                    StreamingChh::new(*depth, *vocab_size, *max_contexts, *counters_per_context);
                for seq in train {
                    model.observe_sequence(seq);
                }
                Ok(Box::new(TrainedChhStreaming { model, label }))
            }
            ModelSpec::Apriori { config, vocab_size } => {
                let baskets: Vec<Vec<usize>> =
                    train.iter().filter(|b| !b.is_empty()).cloned().collect();
                let model = if baskets.is_empty() {
                    // Degenerate single-basket model: predictions are zeros
                    // rather than a panic, matching the core adapter.
                    AprioriModel::mine(*vocab_size, &[vec![0]], config)
                } else {
                    AprioriModel::mine(*vocab_size, &baskets, config)
                };
                Ok(Box::new(TrainedApriori { model, label }))
            }
            ModelSpec::Bpmf(_) => Err(EngineError::Unsupported {
                kind: ModelKind::Bpmf,
                operation: "training on acquisition sequences",
            }),
        }
    }
}

/// Trains an LDA model on weighted documents (binary or TF-IDF input) with
/// the requested estimator, returning the concrete [`LdaModel`] for
/// consumers that need topics, embeddings or fold-in θ directly.
///
/// # Errors
/// [`EngineError::InvalidSpec`] on zero topics, an empty vocabulary, or an
/// empty document collection.
pub fn fit_lda(
    config: LdaConfig,
    estimator: LdaEstimator,
    docs: &[WeightedDoc],
) -> Result<LdaModel, EngineError> {
    ModelSpec::Lda {
        config: config.clone(),
        estimator,
    }
    .validate()?;
    if docs.is_empty() {
        return Err(EngineError::InvalidSpec {
            reason: "LDA needs at least one training document".into(),
        });
    }
    Ok(match estimator {
        LdaEstimator::Gibbs => GibbsTrainer::new(config).fit(docs),
        LdaEstimator::Vb => VbTrainer::new(config, VbOptions::default()).fit(docs),
    })
}

// ---------------------------------------------------------------------------
// Trained models
// ---------------------------------------------------------------------------

/// A trained model of any family behind one interface. Obtained from
/// [`ModelSpec::fit_sequences`] or [`Engine::train`].
pub trait TrainedModel {
    /// The family that trained this model.
    fn kind(&self) -> ModelKind;

    /// Report label (`LDA3`, `2-gram`, …).
    fn label(&self) -> &str;

    /// Scores per product (length = vocabulary size) for the next
    /// acquisition given an install-base history.
    ///
    /// # Errors
    /// [`EngineError::Unsupported`] for families that cannot condition on a
    /// history.
    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError>;

    /// Per-token perplexity over held-out sequences (Figure 1 / Table 1
    /// protocol).
    ///
    /// # Errors
    /// [`EngineError::Unsupported`] for non-probabilistic families
    /// (CHH, Apriori).
    fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError>;

    /// The concrete model (e.g. [`ExactChh`], [`LdaModel`]) for
    /// family-specific diagnostics; downcast with `downcast_ref`.
    fn as_any(&self) -> &dyn Any;
}

struct TrainedNgram {
    model: NgramLm,
    label: String,
}

impl TrainedModel for TrainedNgram {
    fn kind(&self) -> ModelKind {
        ModelKind::Ngram
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict_next(history))
    }

    fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Ok(self.model.perplexity(test))
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedLda {
    model: LdaModel,
    label: String,
}

impl TrainedModel for TrainedLda {
    fn kind(&self) -> ModelKind {
        ModelKind::Lda
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(masked_lda_scores(&self.model, history))
    }

    fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError> {
        let docs = hlm_lda::unit_weights(test);
        Ok(hlm_lda::document_completion_perplexity(&self.model, &docs))
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedLstm {
    model: LstmLm,
    label: String,
}

impl TrainedModel for TrainedLstm {
    fn kind(&self) -> ModelKind {
        ModelKind::Lstm
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict_next(history))
    }

    fn perplexity(&self, test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Ok(self.model.perplexity(test))
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedChhExact {
    model: ExactChh,
    label: String,
}

impl TrainedModel for TrainedChhExact {
    fn kind(&self) -> ModelKind {
        ModelKind::ChhExact
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict_next(history))
    }

    fn perplexity(&self, _test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Err(EngineError::Unsupported {
            kind: ModelKind::ChhExact,
            operation: "perplexity",
        })
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedChhStreaming {
    model: StreamingChh,
    label: String,
}

impl TrainedModel for TrainedChhStreaming {
    fn kind(&self) -> ModelKind {
        ModelKind::ChhStreaming
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict_next(history))
    }

    fn perplexity(&self, _test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Err(EngineError::Unsupported {
            kind: ModelKind::ChhStreaming,
            operation: "perplexity",
        })
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

struct TrainedApriori {
    model: AprioriModel,
    label: String,
}

impl TrainedModel for TrainedApriori {
    fn kind(&self) -> ModelKind {
        ModelKind::Apriori
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn recommend(&self, history: &[usize]) -> Result<Vec<f64>, EngineError> {
        Ok(self.model.predict(history))
    }

    fn perplexity(&self, _test: &[Vec<usize>]) -> Result<f64, EngineError> {
        Err(EngineError::Unsupported {
            kind: ModelKind::Apriori,
            operation: "perplexity",
        })
    }

    fn as_any(&self) -> &dyn Any {
        &self.model
    }
}

// ---------------------------------------------------------------------------
// Streaming CHH factory (core only ships the exact one)
// ---------------------------------------------------------------------------

/// Sliding-window factory for streaming Conditional Heavy Hitters: per
/// cutoff, a fresh sketch observes every training sequence before the
/// window.
#[derive(Debug, Clone)]
pub struct StreamingChhRecommenderFactory {
    /// Context depth.
    pub depth: usize,
    /// Maximum tracked contexts.
    pub max_contexts: usize,
    /// SpaceSaving counters per context.
    pub counters_per_context: usize,
}

struct StreamingChhRecommender {
    model: StreamingChh,
}

impl Recommender for StreamingChhRecommender {
    fn scores(&self, history: &[usize]) -> Vec<f64> {
        self.model.predict_next(history)
    }

    fn name(&self) -> &str {
        "CHH-streaming"
    }
}

impl RecommenderFactory for StreamingChhRecommenderFactory {
    fn train(
        &self,
        corpus: &Corpus,
        train_ids: &[CompanyId],
        cutoff: Month,
    ) -> Box<dyn Recommender> {
        let mut model = StreamingChh::new(
            self.depth,
            corpus.vocab().len(),
            self.max_contexts,
            self.counters_per_context,
        );
        for &id in train_ids {
            let seq: Vec<usize> = corpus
                .company(id)
                .sequence_before(cutoff)
                .into_iter()
                .map(|p| p.index())
                .collect();
            model.observe_sequence(&seq);
        }
        Box::new(StreamingChhRecommender { model })
    }

    fn name(&self) -> &str {
        "CHH-streaming"
    }
}

// ---------------------------------------------------------------------------
// Engine facade
// ---------------------------------------------------------------------------

/// The serving facade: one corpus behind an [`Arc`], shared by every model
/// it trains and every [`SalesApplication`] it spawns.
pub struct Engine {
    corpus: Arc<Corpus>,
}

impl Engine {
    /// Wraps a corpus (or an already-shared `Arc<Corpus>`).
    pub fn new(corpus: impl Into<Arc<Corpus>>) -> Self {
        Engine {
            corpus: corpus.into(),
        }
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// A shared handle to the corpus (cheap; no data copy).
    pub fn corpus_arc(&self) -> Arc<Corpus> {
        Arc::clone(&self.corpus)
    }

    /// Trains a model on the given companies' acquisition histories strictly
    /// before `cutoff`.
    ///
    /// # Errors
    /// Spec validation and family-support errors as in
    /// [`ModelSpec::fit_sequences`].
    pub fn train(
        &self,
        spec: &ModelSpec,
        ids: &[CompanyId],
        cutoff: Month,
    ) -> Result<Box<dyn TrainedModel>, EngineError> {
        let seqs: Vec<Vec<usize>> = ids
            .iter()
            .map(|&id| {
                self.corpus
                    .company(id)
                    .sequence_before(cutoff)
                    .into_iter()
                    .map(|p| p.index())
                    .collect()
            })
            .collect();
        spec.fit_sequences(&seqs, &[])
    }

    /// Trains a model on every company's full history.
    ///
    /// # Errors
    /// As in [`Engine::train`].
    pub fn train_full(&self, spec: &ModelSpec) -> Result<Box<dyn TrainedModel>, EngineError> {
        let ids: Vec<CompanyId> = self.corpus.ids().collect();
        self.train(spec, &ids, Month(i32::MAX))
    }

    /// Opens the sales application over this corpus with the given company
    /// representations, sharing the corpus `Arc` (no data copy).
    ///
    /// # Errors
    /// [`EngineError::Core`] on a row/company mismatch.
    pub fn sales_app(
        &self,
        representations: impl Into<Arc<Matrix>>,
        metric: DistanceMetric,
    ) -> Result<SalesApplication, EngineError> {
        Ok(SalesApplication::new(
            self.corpus_arc(),
            representations,
            metric,
        )?)
    }

    /// Market-drift check between two time windows (Section 6's monitoring
    /// loop).
    pub fn detect_drift(
        &self,
        reference: TimeWindow,
        recent: TimeWindow,
        significance: f64,
    ) -> DriftReport {
        hlm_eval::drift::detect_drift(&self.corpus, reference, recent, significance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_datagen::GeneratorConfig;

    fn corpus() -> Corpus {
        hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(150, 5))
    }

    fn tiny_seqs() -> Vec<Vec<usize>> {
        vec![
            vec![0, 1, 2, 3],
            vec![1, 2, 3, 4],
            vec![0, 2, 4],
            vec![3, 1, 0, 2],
        ]
    }

    #[test]
    fn model_kind_round_trips_and_rejects_unknown() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.to_string().parse::<ModelKind>().unwrap(), kind);
        }
        assert_eq!("CHH".parse::<ModelKind>().unwrap(), ModelKind::ChhExact);
        let err = "markov-chain".parse::<ModelKind>().unwrap_err();
        assert_eq!(
            err,
            EngineError::UnknownModelKind("markov-chain".to_string())
        );
        assert!(err.to_string().contains("markov-chain"));
    }

    #[test]
    fn every_family_has_a_factory_or_a_reasoned_refusal() {
        let specs = [
            ModelSpec::Ngram(NgramConfig::bigram(5)),
            ModelSpec::Lda {
                config: LdaConfig {
                    n_topics: 2,
                    vocab_size: 5,
                    ..Default::default()
                },
                estimator: LdaEstimator::Gibbs,
            },
            ModelSpec::Lstm {
                config: LstmConfig {
                    vocab_size: 5,
                    hidden_size: 4,
                    ..Default::default()
                },
                train: TrainOptions::default(),
                seed: 1,
            },
            ModelSpec::ChhExact {
                depth: 2,
                vocab_size: 5,
            },
            ModelSpec::ChhStreaming {
                depth: 2,
                vocab_size: 5,
                max_contexts: 10,
                counters_per_context: 4,
            },
            ModelSpec::Apriori {
                config: AprioriConfig::default(),
                vocab_size: 5,
            },
        ];
        for spec in &specs {
            let factory = spec
                .factory()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
            assert!(!factory.name().is_empty());
        }
        // BPMF is registered but refuses the history-based protocol.
        let err = ModelSpec::Bpmf(hlm_bpmf::BpmfConfig::default())
            .factory()
            .err()
            .unwrap();
        assert!(matches!(
            err,
            EngineError::Unsupported {
                kind: ModelKind::Bpmf,
                ..
            }
        ));
    }

    #[test]
    fn ngram_and_lda_train_score_and_measure_perplexity() {
        let train = tiny_seqs();
        let test = vec![vec![0, 1, 2], vec![2, 3, 4]];
        for spec in [
            ModelSpec::Ngram(NgramConfig::bigram(5)),
            ModelSpec::Lda {
                config: LdaConfig {
                    n_topics: 2,
                    vocab_size: 5,
                    n_iters: 20,
                    burn_in: 10,
                    ..Default::default()
                },
                estimator: LdaEstimator::Gibbs,
            },
        ] {
            let model = spec.fit_sequences(&train, &[]).unwrap();
            assert_eq!(model.kind(), spec.kind());
            let scores = model.recommend(&[0, 1]).unwrap();
            assert_eq!(scores.len(), 5);
            assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
            let ppl = model.perplexity(&test).unwrap();
            assert!(ppl.is_finite() && ppl > 1.0, "{}: ppl {ppl}", model.label());
        }
    }

    #[test]
    fn chh_models_recommend_but_refuse_perplexity() {
        let train = tiny_seqs();
        for spec in [
            ModelSpec::ChhExact {
                depth: 2,
                vocab_size: 5,
            },
            ModelSpec::ChhStreaming {
                depth: 2,
                vocab_size: 5,
                max_contexts: 20,
                counters_per_context: 4,
            },
        ] {
            let model = spec.fit_sequences(&train, &[]).unwrap();
            assert_eq!(model.recommend(&[0, 1]).unwrap().len(), 5);
            let err = model.perplexity(&[vec![0, 1]]).unwrap_err();
            assert!(matches!(err, EngineError::Unsupported { .. }));
        }
    }

    #[test]
    fn downcast_reaches_the_concrete_model() {
        let spec = ModelSpec::ChhExact {
            depth: 1,
            vocab_size: 5,
        };
        let model = spec.fit_sequences(&tiny_seqs(), &[]).unwrap();
        let chh = model
            .as_any()
            .downcast_ref::<ExactChh>()
            .expect("concrete ExactChh");
        assert!(chh.context_count() > 0);
        // Wrong type: downcast politely fails.
        assert!(model.as_any().downcast_ref::<NgramLm>().is_none());
    }

    #[test]
    fn invalid_specs_are_rejected_before_training() {
        let zero_topics = ModelSpec::Lda {
            config: LdaConfig {
                n_topics: 0,
                vocab_size: 5,
                ..Default::default()
            },
            estimator: LdaEstimator::Gibbs,
        };
        assert!(matches!(
            zero_topics.fit_sequences(&tiny_seqs(), &[]).err().unwrap(),
            EngineError::InvalidSpec { .. }
        ));
        let zero_budget = ModelSpec::ChhStreaming {
            depth: 2,
            vocab_size: 5,
            max_contexts: 0,
            counters_per_context: 4,
        };
        assert!(matches!(
            zero_budget.fit_sequences(&tiny_seqs(), &[]).err().unwrap(),
            EngineError::InvalidSpec { .. }
        ));
        let zero_order = ModelSpec::Ngram(NgramConfig {
            order: 0,
            ..NgramConfig::bigram(5)
        });
        assert!(matches!(
            zero_order.factory().err().unwrap(),
            EngineError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn fit_lda_validates_and_supports_both_estimators() {
        let docs = hlm_lda::unit_weights(&tiny_seqs());
        let cfg = LdaConfig {
            n_topics: 2,
            vocab_size: 5,
            n_iters: 15,
            burn_in: 5,
            ..Default::default()
        };
        for est in [LdaEstimator::Gibbs, LdaEstimator::Vb] {
            let model = fit_lda(cfg.clone(), est, &docs).unwrap();
            assert_eq!(model.n_topics(), 2);
        }
        let err = fit_lda(cfg, LdaEstimator::Gibbs, &[]).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSpec { .. }));
    }

    #[test]
    fn engine_trains_and_opens_the_sales_app_with_shared_corpus() {
        let engine = Engine::new(corpus());
        let model = engine
            .train_full(&ModelSpec::Ngram(NgramConfig::bigram(
                engine.corpus().vocab().len(),
            )))
            .unwrap();
        assert_eq!(
            model.recommend(&[0]).unwrap().len(),
            engine.corpus().vocab().len()
        );

        // The sales app shares the corpus allocation, not a copy.
        let ids: Vec<CompanyId> = engine.corpus().ids().collect();
        let reps = hlm_core::representations::raw_binary(engine.corpus(), &ids);
        let app = engine.sales_app(reps, DistanceMetric::Cosine).unwrap();
        assert!(Arc::ptr_eq(&engine.corpus_arc(), &app.corpus_arc()));

        // A mismatched representation matrix surfaces as a typed core error.
        let bad = Matrix::zeros(3, 4);
        let err = engine.sales_app(bad, DistanceMetric::Cosine).err().unwrap();
        assert_eq!(
            err,
            EngineError::Core(CoreError::RepresentationMismatch {
                rows: 3,
                companies: 150
            })
        );
    }
}
