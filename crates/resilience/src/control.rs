//! Per-run training control: the object trainers consult at iteration
//! boundaries. It owns the watchdog, the divergence policy, the checkpoint
//! sink, and the fault plan's metric poisoning, so trainer loops stay small:
//!
//! ```text
//! ctrl.begin_iteration(i)?;          // watchdog
//! ... do the work ...
//! ctrl.check_metric(i, "nll", x)?;   // NaN / divergence detection
//! ctrl.checkpoint(i + 1, || bytes);  // snapshot completed iteration
//! ```

use crate::checkpoint::{Checkpoint, CheckpointSink};
use crate::error::ResilienceError;
use crate::fault::FaultPlan;
use crate::guard::RunGuard;

/// How tightly score vectors are inspected for degenerate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollapsePolicy {
    /// Never inspect score spread (the paper's plain BPMF intentionally
    /// degenerates in some configurations, so this is the default).
    #[default]
    Ignore,
    /// Treat a score vector whose values are all (nearly) identical, or any
    /// non-finite score, as divergence.
    Detect,
}

/// Runtime control for one training run.
///
/// A `TrainControl` with no sink and an unlimited guard (see
/// [`TrainControl::noop`]) makes the resilient code paths behave exactly
/// like the original loops, which is how the pre-existing `fit` entry
/// points keep their behaviour.
pub struct TrainControl<'a> {
    guard: RunGuard,
    sink: Option<&'a dyn CheckpointSink>,
    kind: &'a str,
    faults: FaultPlan,
    collapse: CollapsePolicy,
    checkpoint_every: u64,
    sink_failures: Vec<(u64, ResilienceError)>,
    saves: u64,
}

impl<'a> TrainControl<'a> {
    /// Control that never trips, never checkpoints, never poisons metrics.
    pub fn noop() -> Self {
        TrainControl {
            guard: RunGuard::unlimited(),
            sink: None,
            kind: "",
            faults: FaultPlan::none(),
            collapse: CollapsePolicy::Ignore,
            checkpoint_every: 1,
            sink_failures: Vec::new(),
            saves: 0,
        }
    }

    /// Control that checkpoints each iteration to `sink` under `kind`.
    pub fn new(kind: &'a str, sink: &'a dyn CheckpointSink) -> Self {
        let mut ctrl = Self::noop();
        ctrl.kind = kind;
        ctrl.sink = Some(sink);
        ctrl
    }

    /// Attach a watchdog.
    pub fn with_guard(mut self, guard: RunGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Attach a fault plan (metric poisoning; IO faults are injected at the
    /// [`crate::fault::FaultyIo`] layer instead).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Opt in to score-collapse detection.
    pub fn with_collapse_policy(mut self, policy: CollapsePolicy) -> Self {
        self.collapse = policy;
        self
    }

    /// Checkpoint only every `n` completed iterations (and always allow the
    /// caller to force one at the end). `n` is clamped to at least 1.
    pub fn with_checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }

    /// Watchdog check; call at the top of each iteration.
    pub fn begin_iteration(&self, iteration: u64) -> Result<(), ResilienceError> {
        self.guard.check(iteration)
    }

    /// Validate a scalar training metric. Applies the fault plan's NaN
    /// poisoning first, then fails with [`ResilienceError::Diverged`] if the
    /// (possibly poisoned) value is not finite. Returns the value the
    /// trainer should proceed with.
    pub fn check_metric(
        &self,
        iteration: u64,
        name: &str,
        value: f64,
    ) -> Result<f64, ResilienceError> {
        let value = if self.faults.poisons_metric_at(iteration) {
            hlm_obs::global().add("resilience.faults_injected", 1);
            f64::NAN
        } else {
            value
        };
        if !value.is_finite() {
            hlm_obs::global().add("resilience.divergences", 1);
            return Err(ResilienceError::Diverged {
                iteration,
                reason: format!("{name} is not finite ({value})"),
            });
        }
        Ok(value)
    }

    /// Inspect a score vector for degenerate output (opt-in via
    /// [`CollapsePolicy::Detect`]): any non-finite score, or every score
    /// within `1e-12` of the first, counts as divergence.
    pub fn check_scores(&self, iteration: u64, scores: &[f64]) -> Result<(), ResilienceError> {
        if self.collapse == CollapsePolicy::Ignore || scores.len() < 2 {
            return Ok(());
        }
        if let Some(bad) = scores.iter().find(|s| !s.is_finite()) {
            return Err(ResilienceError::Diverged {
                iteration,
                reason: format!("non-finite score ({bad})"),
            });
        }
        let first = scores[0];
        if scores.iter().all(|s| (s - first).abs() < 1e-12) {
            return Err(ResilienceError::Diverged {
                iteration,
                reason: "score distribution collapsed to a constant".to_string(),
            });
        }
        Ok(())
    }

    /// Snapshot the state after `iterations_done` completed iterations.
    /// `payload` is only invoked when a checkpoint is actually due. A sink
    /// failure is recorded (see [`TrainControl::sink_failures`]) but does
    /// not abort training — losing one snapshot only widens the resume gap.
    pub fn checkpoint<F>(&mut self, iterations_done: u64, payload: F)
    where
        F: FnOnce() -> Vec<u8>,
    {
        let Some(sink) = self.sink else { return };
        if iterations_done == 0 || !iterations_done.is_multiple_of(self.checkpoint_every) {
            return;
        }
        let rec = hlm_obs::global();
        let ckpt = Checkpoint::new(self.kind, iterations_done, payload());
        let write_t0 = rec.is_enabled().then(std::time::Instant::now);
        let saved = sink.save(&ckpt);
        if let Some(t0) = write_t0 {
            rec.observe("resilience.checkpoint_seconds", t0.elapsed().as_secs_f64());
            rec.observe("resilience.checkpoint_bytes", ckpt.payload.len() as f64);
        }
        match saved {
            Ok(()) => {
                rec.add("resilience.checkpoints", 1);
                self.saves += 1;
            }
            Err(e) => {
                rec.add("resilience.checkpoint_failures", 1);
                self.sink_failures.push((iterations_done, e));
            }
        }
    }

    /// Checkpoint saves that failed, with the iteration they were for.
    pub fn sink_failures(&self) -> &[(u64, ResilienceError)] {
        &self.sink_failures
    }

    /// Checkpoints successfully persisted by this control.
    pub fn saves(&self) -> u64 {
        self.saves
    }
}

impl Default for TrainControl<'_> {
    fn default() -> Self {
        Self::noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointStore, MemIo};
    use crate::fault::{Fault, FaultyIo};
    use crate::guard::RunGuard;

    #[test]
    fn noop_control_is_transparent() {
        let mut ctrl = TrainControl::noop();
        for i in 0..10 {
            ctrl.begin_iteration(i).unwrap();
            assert_eq!(ctrl.check_metric(i, "nll", 1.5).unwrap(), 1.5);
            ctrl.check_scores(i, &[1.0, 1.0, 1.0]).unwrap();
            ctrl.checkpoint(i + 1, || panic!("noop must not build payloads"));
        }
        assert_eq!(ctrl.saves(), 0);
    }

    #[test]
    fn non_finite_metric_is_divergence() {
        let ctrl = TrainControl::noop();
        let err = ctrl.check_metric(4, "perplexity", f64::NAN).unwrap_err();
        assert!(matches!(
            err,
            ResilienceError::Diverged { iteration: 4, .. }
        ));
        let err = ctrl.check_metric(4, "nll", f64::INFINITY).unwrap_err();
        assert!(matches!(err, ResilienceError::Diverged { .. }));
    }

    #[test]
    fn fault_plan_poisons_metric_at_scheduled_iteration() {
        let ctrl = TrainControl::noop().with_faults(FaultPlan::none().with_nan_at_iteration(2));
        assert!(ctrl.check_metric(1, "nll", 0.5).is_ok());
        assert!(matches!(
            ctrl.check_metric(2, "nll", 0.5),
            Err(ResilienceError::Diverged { iteration: 2, .. })
        ));
    }

    #[test]
    fn collapse_detection_is_opt_in() {
        let flat = [2.5, 2.5, 2.5];
        let ok = TrainControl::noop();
        ok.check_scores(0, &flat).unwrap();

        let strict = TrainControl::noop().with_collapse_policy(CollapsePolicy::Detect);
        assert!(strict.check_scores(0, &flat).is_err());
        strict.check_scores(0, &[1.0, 2.0, 3.0]).unwrap();
        assert!(strict.check_scores(0, &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn checkpoints_respect_interval_and_count_saves() {
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        let mut ctrl = TrainControl::new("t", &store).with_checkpoint_every(2);
        for done in 1..=6u64 {
            ctrl.checkpoint(done, || vec![done as u8]);
        }
        assert_eq!(ctrl.saves(), 3);
        assert_eq!(store.latest_good("t").unwrap().unwrap().iteration, 6);
        assert!(store.load(5).is_err(), "odd iterations are not persisted");
    }

    #[test]
    fn sink_failure_is_tolerated_and_recorded() {
        let io = FaultyIo::new(
            MemIo::new(),
            FaultPlan::none().with(Fault::FailWrite { nth: 2 }),
        );
        let store = CheckpointStore::new(Box::new(io));
        let mut ctrl = TrainControl::new("t", &store);
        for done in 1..=3u64 {
            ctrl.checkpoint(done, || vec![done as u8]);
        }
        assert_eq!(ctrl.saves(), 2);
        assert_eq!(ctrl.sink_failures().len(), 1);
        assert_eq!(ctrl.sink_failures()[0].0, 2);
        // Latest good skips the hole left by the failed write.
        assert_eq!(store.latest_good("t").unwrap().unwrap().iteration, 3);
    }

    #[test]
    fn guard_is_consulted_at_iteration_boundaries() {
        let ctrl = TrainControl::noop().with_guard(RunGuard::unlimited().abort_at_iteration(3));
        assert!(ctrl.begin_iteration(2).is_ok());
        assert!(matches!(
            ctrl.begin_iteration(3),
            Err(ResilienceError::Cancelled { iteration: 3 })
        ));
    }
}
