//! Training watchdog: deadlines, cooperative cancellation, and deterministic
//! abort points, all checked at iteration boundaries.

use crate::error::ResilienceError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Source of elapsed time, injectable so deadline behaviour is testable
/// without sleeping.
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed since the clock (i.e. the run) started.
    fn elapsed_millis(&self) -> u64;
}

/// Wall-clock [`Clock`] anchored at construction.
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// Start counting from now.
    pub fn new() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn elapsed_millis(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// Hand-cranked [`Clock`] for tests: `advance` moves time forward exactly
/// when the test says so.
#[derive(Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `millis`.
    pub fn advance(&self, millis: u64) {
        self.now.fetch_add(millis, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn elapsed_millis(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Shared flag for cancelling a run from another thread (or from a signal
/// handler). Cloning shares the flag.
#[derive(Clone, Default)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// A handle that has not been cancelled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; the run stops at its next iteration boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Watchdog consulted at every iteration boundary. Combines a wall-clock
/// deadline, a cooperative cancellation flag, and a deterministic
/// abort-at-iteration hook (used by kill/resume tests so "the process died
/// here" is reproducible without signals or timing).
pub struct RunGuard {
    clock: Box<dyn Clock>,
    deadline_millis: Option<u64>,
    cancel: CancelHandle,
    abort_at_iteration: Option<u64>,
}

impl RunGuard {
    /// A guard that never trips.
    pub fn unlimited() -> Self {
        RunGuard {
            clock: Box::new(SystemClock::new()),
            deadline_millis: None,
            cancel: CancelHandle::new(),
            abort_at_iteration: None,
        }
    }

    /// Replace the clock (tests pass a [`ManualClock`]).
    pub fn with_clock(mut self, clock: Box<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Trip with [`ResilienceError::DeadlineExceeded`] once this many
    /// milliseconds have elapsed on the guard's clock.
    pub fn with_deadline_millis(mut self, millis: u64) -> Self {
        self.deadline_millis = Some(millis);
        self
    }

    /// Attach a cancellation flag; `handle.cancel()` stops the run at its
    /// next iteration boundary with [`ResilienceError::Cancelled`].
    pub fn with_cancel(mut self, handle: CancelHandle) -> Self {
        self.cancel = handle;
        self
    }

    /// Deterministically abort when `check(iteration)` is called with this
    /// iteration, as if the process had been killed there.
    pub fn abort_at_iteration(mut self, iteration: u64) -> Self {
        self.abort_at_iteration = Some(iteration);
        self
    }

    /// Called by trainers at the top of each iteration. `Ok(())` means keep
    /// going; an error names why the run must stop.
    pub fn check(&self, iteration: u64) -> Result<(), ResilienceError> {
        if self.abort_at_iteration == Some(iteration) {
            return Err(ResilienceError::Cancelled { iteration });
        }
        if self.cancel.is_cancelled() {
            return Err(ResilienceError::Cancelled { iteration });
        }
        if let Some(deadline) = self.deadline_millis {
            let elapsed = self.clock.elapsed_millis();
            if elapsed >= deadline {
                return Err(ResilienceError::DeadlineExceeded {
                    iteration,
                    elapsed_millis: elapsed,
                });
            }
        }
        Ok(())
    }
}

impl Default for RunGuard {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let guard = RunGuard::unlimited();
        for i in 0..1000 {
            assert!(guard.check(i).is_ok());
        }
    }

    #[test]
    fn deadline_trips_exactly_when_clock_passes_it() {
        let clock = ManualClock::new();
        let guard = RunGuard::unlimited()
            .with_clock(Box::new(clock.clone()))
            .with_deadline_millis(100);
        assert!(guard.check(0).is_ok());
        clock.advance(99);
        assert!(guard.check(1).is_ok());
        clock.advance(1);
        assert_eq!(
            guard.check(2),
            Err(ResilienceError::DeadlineExceeded {
                iteration: 2,
                elapsed_millis: 100
            })
        );
    }

    #[test]
    fn cancel_trips_at_next_boundary() {
        let handle = CancelHandle::new();
        let guard = RunGuard::unlimited().with_cancel(handle.clone());
        assert!(guard.check(0).is_ok());
        handle.cancel();
        assert_eq!(
            guard.check(1),
            Err(ResilienceError::Cancelled { iteration: 1 })
        );
    }

    #[test]
    fn abort_at_iteration_is_deterministic() {
        let guard = RunGuard::unlimited().abort_at_iteration(5);
        for i in 0..5 {
            assert!(guard.check(i).is_ok());
        }
        assert_eq!(
            guard.check(5),
            Err(ResilienceError::Cancelled { iteration: 5 })
        );
    }
}
