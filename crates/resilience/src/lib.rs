//! Resilience layer for hidden-layer-model training and serving.
//!
//! Production training runs die: machines are preempted, disks tear writes,
//! gradients blow up. This crate gives the trainers in the workspace a small,
//! dependency-free toolkit to survive that:
//!
//! - [`checkpoint`] — a versioned, checksummed snapshot container
//!   ([`Checkpoint`]), atomic filesystem storage ([`FsIo`]), and a store that
//!   falls back past corrupt files to the latest good snapshot
//!   ([`CheckpointStore`]).
//! - [`guard`] — a watchdog ([`RunGuard`]) combining wall-clock deadlines
//!   (injectable [`Clock`]), cooperative cancellation ([`CancelHandle`]), and
//!   deterministic abort points for kill/resume tests.
//! - [`control`] — [`TrainControl`], the per-run object trainer loops consult
//!   at iteration boundaries for watchdog checks, NaN/divergence detection,
//!   opt-in score-collapse detection, and checkpoint emission.
//! - [`fault`] — a seeded, count-based fault-injection harness
//!   ([`FaultPlan`], [`FaultyIo`]) so every failure mode the tests exercise
//!   is reproducible without timing or signals.
//! - [`netfault`] — the same count-based discipline for network streams
//!   ([`NetFaultPlan`], [`FaultyStream`]): partial writes, mid-request
//!   disconnects, corrupt frames, and slow-loris chunking for serving
//!   drills.
//!
//! The contract trainers uphold: a checkpoint captures *everything* the loop
//! needs (including RNG streams), is written only after an iteration fully
//! completes and passes divergence checks, and resuming from it continues
//! the run bit-for-bit identically to one that was never interrupted.

pub mod checkpoint;
pub mod control;
pub mod error;
pub mod fault;
pub mod guard;
pub mod netfault;

pub use checkpoint::{Checkpoint, CheckpointIo, CheckpointSink, CheckpointStore, FsIo, MemIo};
pub use control::{CollapsePolicy, TrainControl};
pub use error::ResilienceError;
pub use fault::{Fault, FaultPlan, FaultyIo};
pub use guard::{CancelHandle, Clock, ManualClock, RunGuard, SystemClock};
pub use netfault::{FaultyStream, NetFault, NetFaultPlan};
