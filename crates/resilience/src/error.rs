//! The typed error surface of the resilience layer.

use std::fmt;

/// Everything the resilience layer can report: watchdog trips, divergence,
/// corrupted checkpoints, IO failures and resume-state mismatches.
///
/// All payloads are strings or integers so the type stays `Eq` and can ride
/// inside `EngineError` without giving up equality-based test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceError {
    /// The run's cancellation flag was raised (or an injected abort fired).
    Cancelled {
        /// Iteration boundary at which the cancellation was observed.
        iteration: u64,
    },
    /// The run guard's deadline elapsed.
    DeadlineExceeded {
        /// Iteration boundary at which the deadline was observed.
        iteration: u64,
        /// Elapsed run time in milliseconds when the guard tripped.
        elapsed_millis: u64,
    },
    /// A training metric went non-finite or the score distribution collapsed.
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: u64,
        /// What diverged (e.g. `"train_nll is not finite"`).
        reason: String,
    },
    /// A checkpoint failed its structural or checksum validation.
    Corrupt {
        /// What is wrong with the checkpoint bytes.
        what: String,
    },
    /// An IO operation on checkpoint storage failed.
    Io {
        /// The operation (`"write"`, `"read"`, `"list"`, …).
        op: String,
        /// The underlying error, stringified.
        detail: String,
    },
    /// A resume payload does not match the trainer or configuration that is
    /// trying to consume it.
    Mismatch {
        /// Why the payload cannot be resumed from.
        reason: String,
    },
}

impl ResilienceError {
    /// Convenience constructor for [`ResilienceError::Io`].
    pub fn io(op: &str, detail: impl fmt::Display) -> Self {
        ResilienceError::Io {
            op: op.to_string(),
            detail: detail.to_string(),
        }
    }

    /// Convenience constructor for [`ResilienceError::Corrupt`].
    pub fn corrupt(what: impl Into<String>) -> Self {
        ResilienceError::Corrupt { what: what.into() }
    }

    /// True for the two watchdog outcomes ([`ResilienceError::Cancelled`],
    /// [`ResilienceError::DeadlineExceeded`]) that mean "the run was stopped
    /// on purpose and can be resumed from its checkpoints".
    pub fn is_interruption(&self) -> bool {
        matches!(
            self,
            ResilienceError::Cancelled { .. } | ResilienceError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Cancelled { iteration } => {
                write!(f, "training cancelled at iteration {iteration}")
            }
            ResilienceError::DeadlineExceeded {
                iteration,
                elapsed_millis,
            } => write!(
                f,
                "training deadline exceeded at iteration {iteration} after {elapsed_millis} ms"
            ),
            ResilienceError::Diverged { iteration, reason } => {
                write!(f, "training diverged at iteration {iteration}: {reason}")
            }
            ResilienceError::Corrupt { what } => write!(f, "corrupt checkpoint: {what}"),
            ResilienceError::Io { op, detail } => write!(f, "checkpoint {op} failed: {detail}"),
            ResilienceError::Mismatch { reason } => {
                write!(f, "checkpoint does not match this trainer: {reason}")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_single_line_and_specific() {
        let cases: Vec<ResilienceError> = vec![
            ResilienceError::Cancelled { iteration: 3 },
            ResilienceError::DeadlineExceeded {
                iteration: 4,
                elapsed_millis: 1500,
            },
            ResilienceError::Diverged {
                iteration: 7,
                reason: "loss is NaN".into(),
            },
            ResilienceError::corrupt("checksum mismatch"),
            ResilienceError::io("write", "disk full"),
            ResilienceError::Mismatch {
                reason: "kind lda-gibbs != lstm".into(),
            },
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.contains('\n'), "{s:?}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn interruption_classification() {
        assert!(ResilienceError::Cancelled { iteration: 0 }.is_interruption());
        assert!(ResilienceError::DeadlineExceeded {
            iteration: 0,
            elapsed_millis: 1
        }
        .is_interruption());
        assert!(!ResilienceError::corrupt("x").is_interruption());
        assert!(!ResilienceError::Diverged {
            iteration: 0,
            reason: "x".into()
        }
        .is_interruption());
    }
}
