//! Deterministic fault injection for network streams.
//!
//! The checkpoint harness ([`crate::fault`]) proves the training loop
//! survives torn and corrupted *disk* writes; this module extends the same
//! count-based discipline to the *wire*, so a serving stack can prove in
//! tests that misbehaving clients and flaky links yield clean error
//! responses — never a hung thread or a poisoned queue.
//!
//! Faults fire by operation count (the Nth read or write on the stream),
//! never by wall-clock, so every drill reproduces bit for bit. The typical
//! test wraps a *client-side* `TcpStream` in a [`FaultyStream`] and drives a
//! real server through it:
//!
//! * [`NetFault::PartialWrite`] — the Nth write sends only a prefix and then
//!   reports `BrokenPipe`, like a peer that died mid-request;
//! * [`NetFault::Disconnect`] — the Nth read sees EOF, like a mid-response
//!   hangup;
//! * [`NetFault::CorruptByte`] — the Nth write flips a byte in flight,
//!   producing a corrupt frame on the other side;
//! * [`NetFault::Chunked`] — every write is capped to a byte budget, the
//!   building block of a slow-loris drill (the test adds the pacing; the
//!   chunking itself stays deterministic).

use std::io::{self, Read, Write};

/// One injected network fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFault {
    /// The `nth` write (1-based) delivers only the first `at_byte` bytes to
    /// the peer, then fails with `BrokenPipe`. Later writes fail the same
    /// way — a broken connection stays broken.
    PartialWrite {
        /// 1-based index of the write to break.
        nth: u64,
        /// Bytes that make it onto the wire before the "crash".
        at_byte: usize,
    },
    /// The `nth` read (1-based) — and every read after it — reports EOF
    /// (`Ok(0)`), as if the peer closed the connection mid-response.
    Disconnect {
        /// 1-based index of the read that sees the hangup.
        nth: u64,
    },
    /// The `nth` write (1-based) delivers all its bytes, but with the byte
    /// at `offset` XOR-ed with `mask` — a corrupt frame.
    CorruptByte {
        /// 1-based index of the write to damage.
        nth: u64,
        /// Byte offset to corrupt (clamped into the buffer if out of range).
        offset: usize,
        /// XOR mask applied to the byte (0 disables the flip).
        mask: u8,
    },
    /// Every write delivers at most `max_bytes` bytes (the caller's write
    /// loop turns one logical send into many tiny ones). Combined with
    /// test-side pacing this is a slow-loris client.
    Chunked {
        /// Upper bound on bytes per write (clamped to ≥ 1).
        max_bytes: usize,
    },
}

/// A deterministic schedule of [`NetFault`]s for one stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    faults: Vec<NetFault>,
}

impl NetFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// Add a fault to the schedule.
    pub fn with(mut self, fault: NetFault) -> Self {
        self.faults.push(fault);
        self
    }

    fn write_cap(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            NetFault::Chunked { max_bytes } => Some((*max_bytes).max(1)),
            _ => None,
        })
    }

    fn partial_write(&self, nth: u64) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            // Only the breaking write delivers a prefix; once broken, later
            // writes fail without touching the wire.
            NetFault::PartialWrite { nth: n, at_byte } if *n <= nth => {
                Some(if *n == nth { *at_byte } else { 0 })
            }
            _ => None,
        })
    }

    fn disconnected_read(&self, nth: u64) -> bool {
        self.faults.iter().any(|f| match f {
            NetFault::Disconnect { nth: n } => *n <= nth,
            _ => false,
        })
    }

    fn corruption(&self, nth: u64) -> Option<(usize, u8)> {
        self.faults.iter().find_map(|f| match f {
            NetFault::CorruptByte {
                nth: n,
                offset,
                mask,
            } if *n == nth => Some((*offset, *mask)),
            _ => None,
        })
    }
}

/// Wraps any `Read + Write` stream (typically a client `TcpStream`) and
/// applies a [`NetFaultPlan`] to its operations, counting reads and writes
/// independently. The wrapped stream sees exactly the bytes a really faulty
/// peer would have produced.
pub struct FaultyStream<S> {
    inner: S,
    plan: NetFaultPlan,
    reads: u64,
    writes: u64,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner`, scheduling the faults in `plan`.
    pub fn new(inner: S, plan: NetFaultPlan) -> Self {
        FaultyStream {
            inner,
            plan,
            reads: 0,
            writes: 0,
        }
    }

    /// Writes attempted so far (including failed ones).
    pub fn writes_attempted(&self) -> u64 {
        self.writes
    }

    /// Reads attempted so far (including ones answered with injected EOF).
    pub fn reads_attempted(&self) -> u64 {
        self.reads
    }

    /// The wrapped stream (for shutdown/cleanup in tests).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writes += 1;
        let nth = self.writes;
        if let Some(at_byte) = self.plan.partial_write(nth) {
            // Matching the real failure mode: a prefix may land, then the
            // connection is dead for good.
            if at_byte > 0 && !buf.is_empty() {
                let n = at_byte.min(buf.len());
                self.inner.write_all(&buf[..n])?;
                let _ = self.inner.flush();
            }
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!("injected partial write on write {nth}"),
            ));
        }
        let cap = self.plan.write_cap().unwrap_or(usize::MAX);
        let end = buf.len().min(cap);
        match self.plan.corruption(nth) {
            Some((offset, mask)) if end > 0 => {
                let mut corrupted = buf[..end].to_vec();
                let i = offset.min(corrupted.len() - 1);
                corrupted[i] ^= mask;
                self.inner.write_all(&corrupted)?;
                Ok(end)
            }
            _ => self.inner.write(&buf[..end]),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reads += 1;
        if self.plan.disconnected_read(self.reads) {
            return Ok(0);
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory sink that records everything written to it.
    #[derive(Default)]
    struct Sink(Vec<u8>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_write_delivers_prefix_then_breaks_for_good() {
        let plan = NetFaultPlan::none().with(NetFault::PartialWrite { nth: 2, at_byte: 3 });
        let mut s = FaultyStream::new(Sink::default(), plan);
        assert_eq!(s.write(b"GET /").unwrap(), 5);
        let err = s.write(b"healthz").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The connection stays broken on later writes too.
        assert!(s.write(b"more").is_err());
        assert_eq!(s.writes_attempted(), 3);
        assert_eq!(&s.get_ref().0, b"GET /hea");
    }

    #[test]
    fn disconnect_turns_reads_into_eof() {
        let data = Cursor::new(b"HTTP/1.1 200 OK\r\n".to_vec());
        let plan = NetFaultPlan::none().with(NetFault::Disconnect { nth: 2 });
        let mut s = FaultyStream::new(data, plan);
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        assert_eq!(s.read(&mut buf).unwrap(), 0, "second read sees the hangup");
        assert_eq!(s.read(&mut buf).unwrap(), 0, "the peer stays gone");
        assert_eq!(s.reads_attempted(), 3);
    }

    #[test]
    fn corrupt_byte_flips_in_flight() {
        let plan = NetFaultPlan::none().with(NetFault::CorruptByte {
            nth: 1,
            offset: 0,
            mask: 0x20,
        });
        let mut s = FaultyStream::new(Sink::default(), plan);
        assert_eq!(s.write(b"GET").unwrap(), 3);
        assert_eq!(&s.get_ref().0, b"gET", "G ^ 0x20 = g");
        // Only the scheduled write is damaged.
        s.write(b" /x").unwrap();
        assert_eq!(&s.get_ref().0, b"gET /x");
    }

    #[test]
    fn corrupt_byte_offset_is_clamped() {
        let plan = NetFaultPlan::none().with(NetFault::CorruptByte {
            nth: 1,
            offset: 999,
            mask: 0x01,
        });
        let mut s = FaultyStream::new(Sink::default(), plan);
        s.write(b"xyz").unwrap();
        assert_eq!(s.get_ref().0, vec![b'x', b'y', b'z' ^ 0x01]);
    }

    #[test]
    fn chunked_caps_every_write() {
        let plan = NetFaultPlan::none().with(NetFault::Chunked { max_bytes: 2 });
        let mut s = FaultyStream::new(Sink::default(), plan);
        // A write_all loop degenerates into ceil(11/2) = 6 tiny writes.
        s.write_all(b"GET /a HTTP").unwrap();
        assert_eq!(&s.get_ref().0, b"GET /a HTTP");
        assert_eq!(s.writes_attempted(), 6);
        // The cap is clamped to at least one byte so loops always progress.
        let mut s = FaultyStream::new(
            Sink::default(),
            NetFaultPlan::none().with(NetFault::Chunked { max_bytes: 0 }),
        );
        s.write_all(b"ab").unwrap();
        assert_eq!(s.writes_attempted(), 2);
    }

    #[test]
    fn empty_plan_passes_through() {
        let mut s = FaultyStream::new(Sink::default(), NetFaultPlan::none());
        s.write_all(b"hello").unwrap();
        s.flush().unwrap();
        assert_eq!(&s.get_ref().0, b"hello");
        let mut r = FaultyStream::new(Cursor::new(b"abc".to_vec()), NetFaultPlan::none());
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"abc");
    }
}
