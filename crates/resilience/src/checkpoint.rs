//! Versioned, checksummed checkpoint container and the stores that hold it.
//!
//! A checkpoint is a self-describing binary blob:
//!
//! ```text
//! magic    8 bytes   b"HLMCKPT\0"
//! version  4 bytes   u32 LE (currently 1)
//! kind_len 4 bytes   u32 LE
//! kind     kind_len  UTF-8 trainer kind (e.g. "lda-gibbs")
//! iter     8 bytes   u64 LE iteration the payload captures
//! pay_len  8 bytes   u64 LE payload length
//! checksum 8 bytes   u64 LE FNV-1a over kind + iter + payload
//! payload  pay_len   trainer-defined bytes
//! ```
//!
//! Decoding validates the exact total length and the checksum, so flipping or
//! truncating any single byte of an encoded checkpoint is detected.

use crate::error::ResilienceError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 8] = b"HLMCKPT\0";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// One serialized training snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Trainer kind tag, checked on resume (e.g. `"lstm"`, `"lda-gibbs"`).
    pub kind: String,
    /// Number of completed iterations the payload captures.
    pub iteration: u64,
    /// Trainer-defined serialized state.
    pub payload: Vec<u8>,
}

/// FNV-1a, 64-bit. Not cryptographic; it only needs to catch corruption.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl Checkpoint {
    /// Build a checkpoint for `kind` at `iteration` from trainer state bytes.
    pub fn new(kind: &str, iteration: u64, payload: Vec<u8>) -> Self {
        Checkpoint {
            kind: kind.to_string(),
            iteration,
            payload,
        }
    }

    fn checksum(&self) -> u64 {
        fnv1a(&[
            self.kind.as_bytes(),
            &self.iteration.to_le_bytes(),
            &self.payload,
        ])
    }

    /// Serialize to the container format described in the module docs.
    pub fn encode(&self) -> Vec<u8> {
        let kind = self.kind.as_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + kind.len() + self.payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(kind.len() as u32).to_le_bytes());
        out.extend_from_slice(kind);
        out.extend_from_slice(&self.iteration.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.checksum().to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse and validate an encoded checkpoint. Any structural damage —
    /// wrong magic, unknown version, bad lengths, checksum mismatch, trailing
    /// garbage — yields [`ResilienceError::Corrupt`].
    pub fn decode(bytes: &[u8]) -> Result<Self, ResilienceError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ResilienceError> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| ResilienceError::corrupt("unexpected end of checkpoint"))?;
            let slice = &bytes[*pos..end];
            *pos = end;
            Ok(slice)
        };

        if take(&mut pos, 8)? != MAGIC {
            return Err(ResilienceError::corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if version != VERSION {
            return Err(ResilienceError::corrupt(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let kind_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let kind = std::str::from_utf8(take(&mut pos, kind_len)?)
            .map_err(|_| ResilienceError::corrupt("kind is not UTF-8"))?
            .to_string();
        let iteration = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let payload_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let stored_checksum = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| ResilienceError::corrupt("payload length overflows usize"))?;
        let payload = take(&mut pos, payload_len)?.to_vec();
        if pos != bytes.len() {
            return Err(ResilienceError::corrupt("trailing bytes after payload"));
        }
        let ckpt = Checkpoint {
            kind,
            iteration,
            payload,
        };
        if ckpt.checksum() != stored_checksum {
            return Err(ResilienceError::corrupt("checksum mismatch"));
        }
        Ok(ckpt)
    }
}

/// Byte-level storage for checkpoints. The filesystem implementation is
/// [`FsIo`]; tests wrap it (or [`MemIo`]) in a fault-injecting
/// [`crate::fault::FaultyIo`].
pub trait CheckpointIo: Send + Sync {
    /// Atomically persist `bytes` under `name`.
    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), ResilienceError>;
    /// Read back the bytes stored under `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, ResilienceError>;
    /// List stored names in unspecified order.
    fn list(&self) -> Result<Vec<String>, ResilienceError>;
}

/// Filesystem-backed checkpoint IO. Writes go to a `.tmp` sibling and are
/// renamed into place so a crash mid-write never leaves a half-written file
/// under the final name.
pub struct FsIo {
    dir: PathBuf,
}

impl FsIo {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, ResilienceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| ResilienceError::io("create-dir", e))?;
        Ok(FsIo { dir })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl CheckpointIo for FsIo {
    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), ResilienceError> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let dst = self.dir.join(name);
        std::fs::write(&tmp, bytes).map_err(|e| ResilienceError::io("write", e))?;
        std::fs::rename(&tmp, &dst).map_err(|e| ResilienceError::io("rename", e))?;
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, ResilienceError> {
        std::fs::read(self.dir.join(name)).map_err(|e| ResilienceError::io("read", e))
    }

    fn list(&self) -> Result<Vec<String>, ResilienceError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| ResilienceError::io("list", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| ResilienceError::io("list", e))?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.ends_with(".tmp") {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }
}

/// In-memory checkpoint IO for unit tests and fault-injection suites.
#[derive(Default)]
pub struct MemIo {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemIo {
    /// Empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointIo for MemIo {
    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), ResilienceError> {
        self.files
            .lock()
            .unwrap()
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, ResilienceError> {
        self.files
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| ResilienceError::io("read", format!("no such checkpoint: {name}")))
    }

    fn list(&self) -> Result<Vec<String>, ResilienceError> {
        Ok(self.files.lock().unwrap().keys().cloned().collect())
    }
}

/// A directory of numbered checkpoints for one training run, with recovery:
/// `latest_good` scans from the newest checkpoint backwards, skipping any
/// that fail validation, so one corrupted file degrades to the previous
/// snapshot instead of killing the resume.
pub struct CheckpointStore {
    io: Box<dyn CheckpointIo>,
    /// How many recent checkpoints to keep; older ones are ignored (the
    /// store never deletes, so a shared directory stays append-only).
    keep: usize,
}

fn name_for(iteration: u64) -> String {
    // Zero-padded so lexicographic order equals numeric order.
    format!("ckpt-{iteration:012}.hlm")
}

fn iteration_of(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("ckpt-")?.strip_suffix(".hlm")?;
    stem.parse().ok()
}

impl CheckpointStore {
    /// Wrap a byte store. `keep` bounds how far back `latest_good` scans.
    pub fn new(io: Box<dyn CheckpointIo>) -> Self {
        CheckpointStore { io, keep: 8 }
    }

    /// Filesystem store rooted at `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Result<Self, ResilienceError> {
        Ok(CheckpointStore::new(Box::new(FsIo::new(dir)?)))
    }

    /// Persist `ckpt` under its iteration-derived name.
    pub fn save(&self, ckpt: &Checkpoint) -> Result<(), ResilienceError> {
        self.io.write(&name_for(ckpt.iteration), &ckpt.encode())
    }

    /// Load and validate the checkpoint for an exact iteration.
    pub fn load(&self, iteration: u64) -> Result<Checkpoint, ResilienceError> {
        Checkpoint::decode(&self.io.read(&name_for(iteration))?)
    }

    /// Newest checkpoint of `kind` that decodes and validates cleanly, or
    /// `None` if the store holds nothing usable. Corrupt or truncated files
    /// are skipped, which is what makes resume robust to a torn final write.
    pub fn latest_good(&self, kind: &str) -> Result<Option<Checkpoint>, ResilienceError> {
        let mut iters: Vec<u64> = self
            .io
            .list()?
            .iter()
            .filter_map(|n| iteration_of(n))
            .collect();
        iters.sort_unstable();
        for &iter in iters.iter().rev().take(self.keep) {
            let bytes = match self.io.read(&name_for(iter)) {
                Ok(b) => b,
                Err(_) => continue,
            };
            match Checkpoint::decode(&bytes) {
                Ok(ckpt) if ckpt.kind == kind => return Ok(Some(ckpt)),
                _ => continue,
            }
        }
        Ok(None)
    }
}

/// Where trainers hand completed-iteration snapshots. Implementations decide
/// persistence; trainers only call [`CheckpointSink::save`] at iteration
/// boundaries.
pub trait CheckpointSink {
    /// Persist one snapshot. Errors are surfaced to the training-control
    /// policy, which decides whether a failed save aborts the run.
    fn save(&self, ckpt: &Checkpoint) -> Result<(), ResilienceError>;
}

impl CheckpointSink for CheckpointStore {
    fn save(&self, ckpt: &Checkpoint) -> Result<(), ResilienceError> {
        CheckpointStore::save(self, ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint::new("lda-gibbs", 42, b"{\"alpha\":0.5}".to_vec())
    }

    #[test]
    fn roundtrip() {
        let ckpt = sample();
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let ckpt = Checkpoint::new("lstm", 0, Vec::new());
        assert_eq!(Checkpoint::decode(&ckpt.encode()).unwrap(), ckpt);
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x01;
            assert!(
                Checkpoint::decode(&damaged).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(Checkpoint::decode(&bytes).is_err());
    }

    #[test]
    fn store_returns_newest_checkpoint() {
        let store = CheckpointStore::new(Box::new(MemIo::new()));
        for iter in [1u64, 2, 3] {
            store
                .save(&Checkpoint::new("lstm", iter, vec![iter as u8; 4]))
                .unwrap();
        }
        let latest = store.latest_good("lstm").unwrap().unwrap();
        assert_eq!(latest.iteration, 3);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_good() {
        let io = MemIo::new();
        io.write(&name_for(1), &Checkpoint::new("lstm", 1, vec![1]).encode())
            .unwrap();
        io.write(&name_for(2), &Checkpoint::new("lstm", 2, vec![2]).encode())
            .unwrap();
        let mut bad = Checkpoint::new("lstm", 3, vec![3, 3]).encode();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        io.write(&name_for(3), &bad).unwrap();
        let store = CheckpointStore::new(Box::new(io));
        let latest = store.latest_good("lstm").unwrap().unwrap();
        assert_eq!(latest.iteration, 2, "corrupt newest must fall back");
    }

    #[test]
    fn latest_good_filters_by_kind_and_handles_empty() {
        let io = MemIo::new();
        io.write(
            &name_for(5),
            &Checkpoint::new("lda-gibbs", 5, vec![9]).encode(),
        )
        .unwrap();
        let store = CheckpointStore::new(Box::new(io));
        assert!(store.latest_good("lstm").unwrap().is_none());
        assert_eq!(
            store.latest_good("lda-gibbs").unwrap().unwrap().iteration,
            5
        );

        let empty = CheckpointStore::new(Box::new(MemIo::new()));
        assert!(empty.latest_good("lstm").unwrap().is_none());
    }

    #[test]
    fn fs_io_roundtrips_and_lists() {
        let dir = std::env::temp_dir().join(format!("hlm-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = FsIo::new(&dir).unwrap();
        io.write("ckpt-000000000001.hlm", b"abc").unwrap();
        assert_eq!(io.read("ckpt-000000000001.hlm").unwrap(), b"abc");
        assert_eq!(io.list().unwrap(), vec!["ckpt-000000000001.hlm"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
