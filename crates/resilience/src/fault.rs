//! Deterministic fault injection for checkpoint IO and training loops.
//!
//! Faults are declared up front in a [`FaultPlan`] and fire by *count* (the
//! Nth write) or by *iteration* — never by wall-clock — so every failure the
//! test suite exercises is reproducible bit for bit.

use crate::checkpoint::CheckpointIo;
use crate::error::ResilienceError;
use std::sync::atomic::{AtomicU64, Ordering};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The `nth` write (1-based) fails outright with an IO error; nothing is
    /// persisted for that write.
    FailWrite {
        /// 1-based index of the write to fail.
        nth: u64,
    },
    /// The `nth` write (1-based) persists only the first `at_byte` bytes,
    /// simulating a crash mid-write / torn file.
    TruncateWrite {
        /// 1-based index of the write to damage.
        nth: u64,
        /// Bytes that make it to storage before the "crash".
        at_byte: usize,
    },
    /// The `nth` write (1-based) persists with the byte at `offset` XOR-ed
    /// with `mask`, simulating silent media corruption.
    FlipByte {
        /// 1-based index of the write to damage.
        nth: u64,
        /// Byte offset to corrupt (clamped into the payload if out of range).
        offset: usize,
        /// XOR mask applied to the byte (0 disables the flip).
        mask: u8,
    },
}

/// A deterministic schedule of [`Fault`]s, plus an optional NaN injection
/// point for training metrics (consumed by
/// [`crate::control::TrainControl::check_metric`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    /// Iteration (0-based) at which reported metrics are replaced with NaN.
    nan_at_iteration: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a fault to the schedule.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Replace the metric reported at `iteration` with NaN.
    pub fn with_nan_at_iteration(mut self, iteration: u64) -> Self {
        self.nan_at_iteration = Some(iteration);
        self
    }

    /// The NaN injection point, if any.
    pub fn nan_at(&self) -> Option<u64> {
        self.nan_at_iteration
    }

    /// True if the plan poisons the metric at this iteration.
    pub fn poisons_metric_at(&self, iteration: u64) -> bool {
        self.nan_at_iteration == Some(iteration)
    }

    fn faults_for_write(&self, nth: u64) -> impl Iterator<Item = &Fault> {
        self.faults.iter().filter(move |f| match f {
            Fault::FailWrite { nth: n }
            | Fault::TruncateWrite { nth: n, .. }
            | Fault::FlipByte { nth: n, .. } => *n == nth,
        })
    }
}

/// Wraps a [`CheckpointIo`] and applies a [`FaultPlan`] to its writes.
/// Reads and listings pass through untouched — corruption is injected at
/// write time so it persists in the underlying store, exactly like real
/// on-disk damage.
pub struct FaultyIo<I: CheckpointIo> {
    inner: I,
    plan: FaultPlan,
    writes: AtomicU64,
}

impl<I: CheckpointIo> FaultyIo<I> {
    /// Wrap `inner`, scheduling the faults in `plan`.
    pub fn new(inner: I, plan: FaultPlan) -> Self {
        FaultyIo {
            inner,
            plan,
            writes: AtomicU64::new(0),
        }
    }

    /// How many writes have been attempted so far (including failed ones).
    pub fn writes_attempted(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }
}

impl<I: CheckpointIo> CheckpointIo for FaultyIo<I> {
    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), ResilienceError> {
        let nth = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        let mut data = bytes.to_vec();
        for fault in self.plan.faults_for_write(nth) {
            match fault {
                Fault::FailWrite { .. } => {
                    return Err(ResilienceError::io(
                        "write",
                        format!("injected failure on write {nth}"),
                    ));
                }
                Fault::TruncateWrite { at_byte, .. } => {
                    data.truncate(*at_byte);
                }
                Fault::FlipByte { offset, mask, .. } => {
                    if !data.is_empty() {
                        let i = (*offset).min(data.len() - 1);
                        data[i] ^= mask;
                    }
                }
            }
        }
        self.inner.write(name, &data)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, ResilienceError> {
        self.inner.read(name)
    }

    fn list(&self) -> Result<Vec<String>, ResilienceError> {
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemIo;

    #[test]
    fn fail_write_fires_only_on_nth() {
        let io = FaultyIo::new(
            MemIo::new(),
            FaultPlan::none().with(Fault::FailWrite { nth: 2 }),
        );
        assert!(io.write("a", b"one").is_ok());
        assert!(io.write("b", b"two").is_err());
        assert!(io.write("c", b"three").is_ok());
        assert_eq!(io.writes_attempted(), 3);
        assert!(io.read("b").is_err(), "failed write must persist nothing");
    }

    #[test]
    fn truncate_write_persists_a_prefix() {
        let io = FaultyIo::new(
            MemIo::new(),
            FaultPlan::none().with(Fault::TruncateWrite { nth: 1, at_byte: 2 }),
        );
        io.write("a", b"abcdef").unwrap();
        assert_eq!(io.read("a").unwrap(), b"ab");
    }

    #[test]
    fn flip_byte_corrupts_in_place() {
        let io = FaultyIo::new(
            MemIo::new(),
            FaultPlan::none().with(Fault::FlipByte {
                nth: 1,
                offset: 1,
                mask: 0xff,
            }),
        );
        io.write("a", b"abc").unwrap();
        assert_eq!(io.read("a").unwrap(), vec![b'a', b'b' ^ 0xff, b'c']);
    }

    #[test]
    fn flip_byte_offset_is_clamped() {
        let io = FaultyIo::new(
            MemIo::new(),
            FaultPlan::none().with(Fault::FlipByte {
                nth: 1,
                offset: 999,
                mask: 0x01,
            }),
        );
        io.write("a", b"xyz").unwrap();
        assert_eq!(io.read("a").unwrap(), vec![b'x', b'y', b'z' ^ 0x01]);
    }

    #[test]
    fn nan_schedule() {
        let plan = FaultPlan::none().with_nan_at_iteration(3);
        assert!(plan.poisons_metric_at(3));
        assert!(!plan.poisons_metric_at(2));
        assert_eq!(plan.nan_at(), Some(3));
        assert_eq!(FaultPlan::none().nan_at(), None);
    }
}
