//! The `hlm` binary: thin dispatcher over the library (see `hlm help`).
//!
//! Exit codes: 0 success, 2 usage error, 3 data error, 4 engine/training
//! error. Errors are printed as a single line on stderr.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let inv = match hlm_cli::parse_invocation(&argv) {
        Ok(inv) => inv,
        Err(e) => {
            let err = hlm_cli::CliError::Usage(format!("{e}; run `hlm help` for usage"));
            eprintln!("error: {err}");
            std::process::exit(err.exit_code());
        }
    };
    match hlm_cli::run_invocation(&inv) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
