//! The `hlm` binary: thin dispatcher over the library (see `hlm help`).

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match hlm_cli::parse_args(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `hlm help` for usage");
            std::process::exit(2);
        }
    };
    match hlm_cli::run(&cmd) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
