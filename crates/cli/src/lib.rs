//! Implementation of the `hlm` command-line tool.
//!
//! Subcommands (see `hlm help`):
//!
//! * `generate` — write a synthetic install-base corpus as CSV,
//! * `stats` — corpus summary (sizes, industries, popular products),
//! * `topics` — train LDA and print the learned topics,
//! * `similar` — top-k similar companies + whitespace recommendations,
//! * `drift` — chi-square concept-drift check between two periods.
//!
//! The argument parser is deliberately dependency-free; every command is a
//! library function returning its output as a `String` so the whole surface
//! is unit-testable.

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, ParsedArgs};

/// Entry point shared by `main` and the tests: dispatches a parsed command.
///
/// # Errors
/// Returns a human-readable message on any failure.
pub fn run(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(commands::help_text()),
        Command::Generate {
            companies,
            seed,
            out,
        } => commands::generate(*companies, *seed, out),
        Command::Stats { data } => commands::stats(data),
        Command::Topics {
            data,
            topics,
            iters,
        } => commands::topics(data, *topics, *iters),
        Command::Similar {
            data,
            company,
            k,
            whitespace,
        } => commands::similar(data, *company, *k, *whitespace),
        Command::Drift {
            data,
            reference,
            recent,
            months,
        } => commands::drift(data, *reference, *recent, *months),
    }
}
