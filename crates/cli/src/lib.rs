//! Implementation of the `hlm` command-line tool.
//!
//! Subcommands (see `hlm help`):
//!
//! * `generate` — write a synthetic install-base corpus as CSV,
//! * `stats` — corpus summary (sizes, industries, popular products),
//! * `topics` — train LDA and print the learned topics,
//! * `similar` — top-k similar companies + whitespace recommendations,
//! * `drift` — chi-square concept-drift check between two periods.
//!
//! The argument parser is deliberately dependency-free; every command is a
//! library function returning its output as a `String` so the whole surface
//! is unit-testable. Failures are typed ([`CliError`]) and carry the process
//! exit code: usage errors exit 2, data errors 3, engine/training errors 4.

pub mod args;
pub mod commands;

pub use args::{
    parse_args, parse_invocation, Command, Invocation, MetricsFormat, ParsedArgs, ReplayFlags,
    ServeFlags, TopicsEstimator, TrainFlags,
};
pub use hlm_engine::{effective_threads, set_threads};

use std::fmt;

/// A command failure, classified so the binary can exit with a stable code
/// that scripts (and CI) can branch on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The invocation itself is wrong: bad flags, bad option values
    /// (exit code 2).
    Usage(String),
    /// The input data cannot be read or parsed: missing files, malformed
    /// CSV, error budget exhausted (exit code 3).
    Data(String),
    /// Training or serving failed: divergence, cancellation, deadline,
    /// checkpoint IO (exit code 4).
    Engine(String),
}

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Data(_) => 3,
            CliError::Engine(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    /// Single-line rendering (newlines flattened) for stderr.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            CliError::Usage(m) | CliError::Data(m) | CliError::Engine(m) => m,
        };
        f.write_str(&msg.replace('\n', " "))
    }
}

impl std::error::Error for CliError {}

/// Entry point shared by `main` and the tests: dispatches a parsed command.
///
/// # Errors
/// Returns a [`CliError`] carrying a human-readable message and the exit
/// code class.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(commands::help_text()),
        Command::Generate {
            companies,
            seed,
            out,
            shards,
        } => commands::generate(*companies, *seed, out, *shards),
        Command::Stats { data } => commands::stats(data),
        Command::Topics {
            data,
            topics,
            iters,
            estimator,
            sampler,
            flags,
        } => commands::topics(data, *topics, *iters, *estimator, *sampler, flags),
        Command::Similar {
            data,
            company,
            k,
            whitespace,
        } => commands::similar(data, *company, *k, *whitespace),
        Command::Serve { data, flags } => commands::serve(data, flags),
        Command::Replay { flags } => commands::replay(flags),
        Command::Drift {
            data,
            reference,
            recent,
            months,
        } => commands::drift(data, *reference, *recent, *months),
    }
}

/// Full entry point for a parsed [`Invocation`]: applies the global options
/// (thread override, metrics recorder), dispatches the command, and — when
/// `--metrics PATH` was given — writes the observability snapshot to `PATH`
/// in the requested format after the command finishes.
///
/// The recorder is a read-only observer: enabling it never changes command
/// output or model results, only adds the snapshot file and the span totals
/// on the timing summary line.
///
/// # Errors
/// Returns the command's own [`CliError`] if it failed; a snapshot that
/// cannot be written surfaces as a [`CliError::Data`] only when the command
/// itself succeeded (the original failure always wins).
pub fn run_invocation(inv: &Invocation) -> Result<String, CliError> {
    if let Some(n) = inv.threads {
        set_threads(n);
    }
    if let Some(units) = inv.par_threshold {
        hlm_engine::set_par_threshold(Some(units));
    }
    if inv.metrics.is_some() {
        hlm_obs::install(hlm_obs::Recorder::enabled());
    }
    let result = run(&inv.command);
    if let Some(path) = &inv.metrics {
        // Stamp the process's memory high-water mark (when the platform
        // exposes it) so every snapshot carries the run's peak RSS.
        if let Some(bytes) = hlm_obs::peak_rss_bytes() {
            hlm_obs::global().set_gauge(hlm_obs::PEAK_RSS_GAUGE, bytes as f64);
        }
        let snapshot = hlm_obs::global().snapshot();
        let text = match inv.metrics_format {
            MetricsFormat::Jsonl => snapshot.to_jsonl(),
            MetricsFormat::Prom => snapshot.to_prometheus(),
        };
        let written = std::fs::write(path, text)
            .map_err(|e| CliError::Data(format!("cannot write metrics file {path:?}: {e}")));
        return match (result, written) {
            (Ok(out), Ok(())) => Ok(out),
            (Ok(_), Err(e)) => Err(e),
            (Err(e), _) => Err(e),
        };
    }
    result
}
