//! The `hlm` subcommand implementations. Each returns its output as a
//! `String` so everything is testable without process spawning.

use hlm_core::representations::{binary_docs, lda_representations};
use hlm_core::{CompanyFilter, DistanceMetric};
use hlm_corpus::io::{from_csv, to_csv};
use hlm_corpus::{Corpus, Month, TimeWindow, Vocabulary};
use hlm_datagen::GeneratorConfig;
use hlm_engine::{Engine, LdaEstimator};
use hlm_lda::{LdaConfig, LdaModel};
use std::fmt::Write as _;
use std::path::Path;

/// Usage text.
pub fn help_text() -> String {
    "\
hlm — hidden-layer models for company install bases

USAGE:
  hlm generate --out DIR [--companies N] [--seed S]
      Generate a synthetic install-base corpus and write
      DIR/companies.csv + DIR/events.csv.
  hlm stats --data DIR
      Corpus summary: sizes, industries, most/least common products.
  hlm topics --data DIR [--topics K] [--iters N]
      Train LDA and print the learned topics.
  hlm similar --data DIR --company DUNS [--k K] [--whitespace W]
      Top-K most similar companies and whitespace recommendations.
  hlm drift --data DIR --reference YYYY-MM --recent YYYY-MM [--months M]
      Chi-square concept-drift check between two M-month periods.
  hlm help
      This text.
"
    .to_string()
}

/// Loads a corpus from `DIR/companies.csv` + `DIR/events.csv`.
fn load(data: &str) -> Result<Corpus, String> {
    let dir = Path::new(data);
    let companies = std::fs::read_to_string(dir.join("companies.csv"))
        .map_err(|e| format!("cannot read {}/companies.csv: {e}", data))?;
    let events = std::fs::read_to_string(dir.join("events.csv"))
        .map_err(|e| format!("cannot read {}/events.csv: {e}", data))?;
    from_csv(Vocabulary::standard(), &companies, &events).map_err(|e| e.to_string())
}

/// `hlm generate`.
pub fn generate(companies: usize, seed: u64, out: &str) -> Result<String, String> {
    if companies == 0 {
        return Err("--companies must be positive".into());
    }
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(companies, seed));
    let (companies_csv, events_csv) = to_csv(&corpus);
    let dir = Path::new(out);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {out}: {e}"))?;
    std::fs::write(dir.join("companies.csv"), companies_csv)
        .map_err(|e| format!("cannot write companies.csv: {e}"))?;
    std::fs::write(dir.join("events.csv"), events_csv)
        .map_err(|e| format!("cannot write events.csv: {e}"))?;
    Ok(format!(
        "wrote {} companies ({} install events) to {out}/companies.csv and {out}/events.csv\n",
        corpus.len(),
        corpus.total_tokens()
    ))
}

/// `hlm stats`.
pub fn stats(data: &str) -> Result<String, String> {
    let corpus = load(data)?;
    let mut out = String::new();
    let _ = writeln!(out, "companies:            {}", corpus.len());
    let _ = writeln!(out, "product categories:   {}", corpus.vocab().len());
    let _ = writeln!(out, "install events:       {}", corpus.total_tokens());
    let _ = writeln!(
        out,
        "mean products/company: {:.2}",
        corpus.mean_products_per_company()
    );
    let _ = writeln!(out, "industries (SIC2):    {}", corpus.industries().len());

    let df = corpus.document_frequencies();
    let mut order: Vec<usize> = (0..df.len()).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(df[p]));
    let name = |p: usize| corpus.vocab().name(hlm_corpus::ProductId(p as u16));
    let _ = writeln!(out, "most common products:");
    for &p in order.iter().take(5) {
        let _ = writeln!(out, "  {:<26} {:>6} companies", name(p), df[p]);
    }
    let _ = writeln!(out, "least common products:");
    for &p in order.iter().rev().take(3) {
        let _ = writeln!(out, "  {:<26} {:>6} companies", name(p), df[p]);
    }

    // Largest industries, with human-readable SIC names.
    let mut by_industry: std::collections::HashMap<hlm_corpus::Sic2, usize> =
        std::collections::HashMap::new();
    for c in corpus.companies() {
        *by_industry.entry(c.industry).or_insert(0) += 1;
    }
    let mut industries: Vec<(hlm_corpus::Sic2, usize)> = by_industry.into_iter().collect();
    industries.sort_by_key(|&(s, n)| (std::cmp::Reverse(n), s));
    let _ = writeln!(out, "largest industries:");
    for (sic, n) in industries.into_iter().take(5) {
        let _ = writeln!(
            out,
            "  {} {:<38} {:>6} companies",
            sic,
            hlm_corpus::sic::major_group_name(sic),
            n
        );
    }
    Ok(out)
}

fn train_lda(corpus: &Corpus, topics: usize, iters: usize) -> Result<LdaModel, String> {
    let ids: Vec<_> = corpus.ids().collect();
    let docs = binary_docs(corpus, &ids);
    let config = LdaConfig {
        n_topics: topics,
        vocab_size: corpus.vocab().len(),
        n_iters: iters.max(2),
        burn_in: iters.max(2) / 2,
        sample_lag: 5,
        ..Default::default()
    };
    hlm_engine::fit_lda(config, LdaEstimator::Gibbs, &docs).map_err(|e| e.to_string())
}

/// `hlm topics`.
pub fn topics(data: &str, topics: usize, iters: usize) -> Result<String, String> {
    if topics == 0 {
        return Err("--topics must be positive".into());
    }
    let corpus = load(data)?;
    let model = train_lda(&corpus, topics, iters)?;
    let mut out = String::new();
    for k in 0..model.n_topics() {
        let tops: Vec<String> = model
            .top_products(k, 8)
            .into_iter()
            .map(|(w, p)| {
                format!(
                    "{} ({:.2})",
                    corpus.vocab().name(hlm_corpus::ProductId(w as u16)),
                    p
                )
            })
            .collect();
        let _ = writeln!(out, "topic {k}: {}", tops.join(", "));
    }
    Ok(out)
}

/// `hlm similar`.
pub fn similar(data: &str, company: u64, k: usize, whitespace: usize) -> Result<String, String> {
    let corpus = load(data)?;
    let query = corpus
        .iter()
        .find(|(_, c)| c.duns == company)
        .map(|(id, _)| id)
        .ok_or_else(|| format!("no company with duns {company}"))?;

    let ids: Vec<_> = corpus.ids().collect();
    let docs = binary_docs(&corpus, &ids);
    let model = train_lda(&corpus, 3, 120)?;
    let reps = lda_representations(&model, &docs);
    let engine = Engine::new(corpus);
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .map_err(|e| e.to_string())?;

    let mut out = String::new();
    let describe = |id: hlm_corpus::CompanyId| -> String {
        let c = app.corpus().company(id);
        format!(
            "{} (duns {}, {}, {} products)",
            c.name,
            c.duns,
            c.industry,
            c.product_count()
        )
    };
    let _ = writeln!(out, "query: {}", describe(query));
    let _ = writeln!(out, "top-{k} similar companies:");
    let similar = app
        .find_similar(query, k, &CompanyFilter::default())
        .map_err(|e| e.to_string())?;
    for s in similar {
        let _ = writeln!(out, "  d={:.4}  {}", s.distance, describe(s.id));
    }
    let recs = app
        .recommend_whitespace(query, k.max(10), &CompanyFilter::default())
        .map_err(|e| e.to_string())?;
    let _ = writeln!(out, "whitespace recommendations:");
    for r in recs.iter().take(whitespace) {
        let _ = writeln!(
            out,
            "  {:<26} score {:.2} ({} similar owners)",
            app.corpus().vocab().name(r.product),
            r.score,
            r.owners_among_similar
        );
    }
    Ok(out)
}

/// `hlm drift`.
pub fn drift(data: &str, reference: Month, recent: Month, months: u32) -> Result<String, String> {
    if months == 0 {
        return Err("--months must be positive".into());
    }
    let corpus = load(data)?;
    let engine = Engine::new(corpus);
    let rep = engine.detect_drift(
        TimeWindow::new(reference, months),
        TimeWindow::new(recent, months),
        0.05,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "reference period: {} + {months} months ({} events)",
        reference, rep.reference_events
    );
    let _ = writeln!(
        out,
        "recent period:    {} + {months} months ({} events)",
        recent, rep.recent_events
    );
    let _ = writeln!(
        out,
        "chi-square:       {:.2} (df {})",
        rep.chi_square, rep.degrees_of_freedom
    );
    let _ = writeln!(out, "p-value:          {:.6}", rep.p_value);
    let _ = writeln!(out, "JS divergence:    {:.4} nats", rep.js_divergence);
    let _ = writeln!(
        out,
        "verdict:          {}",
        if rep.drifted {
            "CONCEPT DRIFT detected — retrain the model"
        } else {
            "no significant drift"
        }
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("hlm_cli_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_stats_round_trips() {
        let dir = tmp_dir("stats");
        let msg = generate(120, 7, &dir).expect("generate works");
        assert!(msg.contains("120 companies"));
        let s = stats(&dir).expect("stats works");
        assert!(s.contains("companies:            120"), "{s}");
        assert!(
            s.contains("OS") || s.contains("network_HW"),
            "popular products listed: {s}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topics_prints_k_topics() {
        let dir = tmp_dir("topics");
        generate(150, 9, &dir).unwrap();
        let out = topics(&dir, 3, 60).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("topic 0:"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn similar_finds_neighbours_and_whitespace() {
        let dir = tmp_dir("similar");
        generate(150, 11, &dir).unwrap();
        // Company duns are 10_000 + index in the generator.
        let out = similar(&dir, 10_005, 5, 3).unwrap();
        assert!(out.contains("top-5 similar companies"), "{out}");
        assert!(out.matches("d=").count() == 5, "{out}");
        assert!(out.contains("whitespace recommendations"));
        let err = similar(&dir, 999, 5, 3).unwrap_err();
        assert!(err.contains("no company"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_detects_stage_shift_on_generated_data() {
        let dir = tmp_dir("drift");
        generate(400, 13, &dir).unwrap();
        let out = drift(&dir, Month::from_ym(1995, 1), Month::from_ym(2013, 1), 24).unwrap();
        assert!(out.contains("CONCEPT DRIFT"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_data_directory_is_a_clean_error() {
        let e = stats("/no/such/dir").unwrap_err();
        assert!(e.contains("companies.csv"));
        assert!(generate(0, 1, "/tmp/x").is_err());
    }

    #[test]
    fn run_dispatches_help() {
        let out = crate::run(&crate::Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }
}
