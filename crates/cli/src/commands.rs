//! The `hlm` subcommand implementations. Each returns its output as a
//! `String` so everything is testable without process spawning.

use crate::{CliError, ReplayFlags, ServeFlags, TopicsEstimator, TrainFlags};
use hlm_core::representations::{binary_docs, lda_representations};
use hlm_core::{CompanyFilter, DistanceMetric};
use hlm_corpus::io::{from_csv, from_csv_lenient, to_csv, LenientOptions, QuarantineReport};
use hlm_corpus::{Corpus, CorpusSource, Month, ShardStore, TimeWindow, Vocabulary};
use hlm_datagen::{EventStreamConfig, GeneratorConfig, LaunchSpec, MixShift};
use hlm_engine::{Engine, LdaEstimator, RunGuard, ServeOptions, TrainPlan};
use hlm_lda::{LdaConfig, LdaModel, OnlineVbOptions};
use hlm_resilience::CheckpointStore;
use hlm_serve::{bundle_from_checkpoint, bundle_from_model, BundleLoader, Server, ServerConfig};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Usage text.
pub fn help_text() -> String {
    "\
hlm — hidden-layer models for company install bases

USAGE:
  hlm generate --out DIR [--companies N] [--seed S] [--shards S]
      Generate a synthetic install-base corpus. Without --shards, write
      DIR/companies.csv + DIR/events.csv in memory. With --shards S,
      stream-generate an out-of-core sharded store (DIR/manifest.json +
      shard_*.bin) one shard at a time — the corpus never has to fit in
      RAM, and its contents are bit-identical to the in-memory path.
  hlm stats --data DIR
      Corpus summary: sizes, industries, most/least common products.
      Malformed rows are quarantined (and reported) instead of aborting.
      On a sharded store, stats stream the manifest only: O(shards)
      memory at any corpus size.
  hlm topics --data DIR [--topics K] [--iters N] [--estimator E]
            [--sampler S] [--checkpoint-dir DIR] [--resume]
            [--max-seconds S]
      Train LDA and print the learned topics. --checkpoint-dir snapshots
      every sweep; --resume continues an interrupted run from the latest
      good checkpoint; --max-seconds bounds the wall-clock budget.
      On a sharded store the run is out-of-core (one shard in memory at
      a time, Gibbs results bit-identical to in-memory training) and
      --estimator picks gibbs (default; --iters = sweeps) or online-vb
      (Hoffman-style stochastic VB; --iters = epochs). --sampler picks
      the Gibbs token kernel: auto (default; by topic count), dense,
      bucket (SparseLDA buckets), or alias (LightLDA alias tables with
      Metropolis-Hastings correction; fastest at large K). A fixed
      choice is part of the sampling schedule — resume with the same
      one.
  hlm similar --data DIR --company DUNS [--k K] [--whitespace W]
      Top-K most similar companies and whitespace recommendations.
  hlm serve --data DIR [--port P] [--port-file PATH] [--workers N]
            [--queue N] [--deadline-ms D] [--checkpoint-dir DIR]
            [--topics K] [--iters N]
      Long-running HTTP recommendation server (see README \"Serving\").
      Warm-starts from the latest good checkpoint in --checkpoint-dir
      when one exists (bit-identical to the run that wrote it), else
      trains first. Endpoints: /healthz /readyz /metrics /v1/similar
      /v1/whitespace /v1/recommend, POST /admin/swap (hot model swap
      with canary + rollback). Overload is shed with 503 + Retry-After;
      SIGTERM drains gracefully.
  hlm drift --data DIR --reference YYYY-MM --recent YYYY-MM [--months M]
      Chi-square concept-drift check between two M-month periods.
  hlm replay [--companies N] [--seed S] [--months M] [--policy P]
            [--topics K] [--iters N] [--launch YYYY-MM] [--shift YYYY-MM]
            [--significance A] [--reference-months R] [--recent-months C]
            [--top-n N] [--checkpoint-dir DIR] [--resume]
            [--abort-at SWEEP] [--abort-fit F] [--out CSV]
      Generate a timestamped event stream and replay its last M months
      against a live in-process server: each month's acquisitions are
      scored against the serving model (precision@N) before being applied,
      drift is tested on trailing reference/recent windows, and the model
      is retrained per --policy (never, periodic:N, or drift) then
      hot-swapped through POST /admin/swap. --launch grows the vocabulary
      mid-stream (served via incremental fold-in, no retrain); --shift
      plants a product-mix drift the detector must catch. Fits checkpoint
      under --checkpoint-dir/fit-NNN; --resume fast-forwards completed
      fits and continues an interrupted one bit-identically. --abort-at
      kills fit --abort-fit at that sweep (resume drill). --out writes
      the precision-over-time curve as CSV.
  hlm help
      This text.

GLOBAL OPTIONS:
  --threads N
      Worker threads for the parallel runtime (default: HLM_THREADS if
      set, else the detected core count). Results are bit-identical at
      any thread count; only the wall-clock changes. `stats` and
      `topics` end with an `elapsed: …s (N threads)` summary line.
  --par-threshold UNITS
      Minimum work (abstract cost units) before the worker pool engages;
      smaller workloads run serially with identical results (default:
      HLM_PAR_THRESHOLD if set, else a one-time calibration). 0 forces
      the pool on for every parallelizable call.
  --metrics PATH [--metrics-format jsonl|prom]
      Record structured metrics (spans, counters, histograms, traces)
      while the command runs and write a snapshot to PATH afterwards.
      jsonl (default) is a schema-versioned JSON-lines event log; prom
      is a Prometheus-style text snapshot. Recording is a read-only
      observer: results are bit-identical with or without it.

EXIT CODES:
  0 success   2 usage error   3 data error   4 engine/training error
"
    .to_string()
}

/// Reads `DIR/companies.csv` + `DIR/events.csv` as strings.
fn read_pair(data: &str) -> Result<(String, String), CliError> {
    let dir = Path::new(data);
    let companies = std::fs::read_to_string(dir.join("companies.csv"))
        .map_err(|e| CliError::Data(format!("cannot read {data}/companies.csv: {e}")))?;
    let events = std::fs::read_to_string(dir.join("events.csv"))
        .map_err(|e| CliError::Data(format!("cannot read {data}/events.csv: {e}")))?;
    Ok((companies, events))
}

/// Loads a corpus strictly (first malformed row is an error).
fn load(data: &str) -> Result<Corpus, CliError> {
    let (companies, events) = read_pair(data)?;
    from_csv(Vocabulary::standard(), &companies, &events).map_err(|e| CliError::Data(e.to_string()))
}

/// Loads a corpus leniently, quarantining malformed rows up to the default
/// error budget.
fn load_lenient(data: &str) -> Result<(Corpus, QuarantineReport), CliError> {
    let (companies, events) = read_pair(data)?;
    from_csv_lenient(
        Vocabulary::standard(),
        &companies,
        &events,
        &LenientOptions::default(),
    )
    .map_err(|e| CliError::Data(e.to_string()))
}

/// `hlm generate`.
pub fn generate(
    companies: usize,
    seed: u64,
    out: &str,
    shards: Option<usize>,
) -> Result<String, CliError> {
    if companies == 0 {
        return Err(CliError::Usage("--companies must be positive".into()));
    }
    if let Some(n_shards) = shards {
        // Out-of-core path: stream shards to disk, never holding more than
        // one shard of companies in memory.
        let cfg = GeneratorConfig::with_size_and_seed(companies, seed);
        let store = hlm_datagen::generate_sharded(&cfg, n_shards, Path::new(out))
            .map_err(|e| CliError::Data(e.to_string()))?;
        let m = store.manifest();
        return Ok(format!(
            "wrote {} companies ({} install events) to {out} as {} shard(s) of {} companies\n",
            m.n_companies,
            m.total_tokens,
            m.shards.len(),
            m.shard_size
        ));
    }
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(companies, seed));
    let (companies_csv, events_csv) = to_csv(&corpus);
    let dir = Path::new(out);
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::Data(format!("cannot create {out}: {e}")))?;
    std::fs::write(dir.join("companies.csv"), companies_csv)
        .map_err(|e| CliError::Data(format!("cannot write companies.csv: {e}")))?;
    std::fs::write(dir.join("events.csv"), events_csv)
        .map_err(|e| CliError::Data(format!("cannot write events.csv: {e}")))?;
    Ok(format!(
        "wrote {} companies ({} install events) to {out}/companies.csv and {out}/events.csv\n",
        corpus.len(),
        corpus.total_tokens()
    ))
}

/// True when `data` holds a sharded store rather than CSVs.
fn is_sharded(data: &str) -> bool {
    ShardStore::exists(Path::new(data))
}

/// Opens a sharded store, mapping failures to data errors.
fn open_store(data: &str) -> Result<ShardStore, CliError> {
    ShardStore::open(Path::new(data)).map_err(|e| CliError::Data(e.to_string()))
}

/// `hlm stats` on a sharded store: streams the manifest's shard headers
/// only, so memory stays O(shards) no matter how many companies the store
/// holds — this is what makes `stats` usable at the 1M-company scale.
fn stats_sharded(data: &str) -> Result<String, CliError> {
    let t0 = std::time::Instant::now();
    let store = open_store(data)?;
    let m = store.manifest();
    let mut out = String::new();
    let _ = writeln!(out, "sharded corpus:       {data}/manifest.json");
    let _ = writeln!(out, "companies:            {}", m.n_companies);
    let _ = writeln!(out, "product categories:   {}", m.vocab.len());
    let _ = writeln!(out, "install events:       {}", m.total_tokens);
    let _ = writeln!(
        out,
        "mean products/company: {:.2}",
        m.total_tokens as f64 / (m.n_companies.max(1)) as f64
    );
    let total_bytes: u64 = m.shards.iter().map(|s| s.bytes).sum();
    let _ = writeln!(
        out,
        "shards:               {} x {} companies ({:.1} MiB on disk)",
        m.shards.len(),
        m.shard_size,
        total_bytes as f64 / (1024.0 * 1024.0)
    );
    let show = m.shards.len().min(4);
    for entry in m.shards.iter().take(show) {
        let _ = writeln!(
            out,
            "  {:<16} companies {:>8}..{:<8} {:>10} events  {:>4} products",
            entry.file, entry.company_lo, entry.company_hi, entry.tokens, entry.products_used
        );
    }
    if m.shards.len() > show {
        let _ = writeln!(out, "  … {} more shard(s)", m.shards.len() - show);
    }
    let _ = writeln!(out, "{}", timing_summary(t0));
    Ok(out)
}

/// `hlm stats`. Uses the lenient CSV path: malformed rows are quarantined
/// and summarised rather than failing the whole command. Sharded stores take
/// the manifest-streaming path instead.
pub fn stats(data: &str) -> Result<String, CliError> {
    if is_sharded(data) {
        return stats_sharded(data);
    }
    let t0 = std::time::Instant::now();
    let (corpus, report) = load_lenient(data)?;
    let mut out = String::new();
    let _ = writeln!(out, "companies:            {}", corpus.len());
    let _ = writeln!(out, "product categories:   {}", corpus.vocab().len());
    let _ = writeln!(out, "install events:       {}", corpus.total_tokens());
    let _ = writeln!(
        out,
        "mean products/company: {:.2}",
        corpus.mean_products_per_company()
    );
    let _ = writeln!(out, "industries (SIC2):    {}", corpus.industries().len());

    let df = corpus.document_frequencies();
    let mut order: Vec<usize> = (0..df.len()).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(df[p]));
    let name = |p: usize| corpus.vocab().name(hlm_corpus::ProductId(p as u16));
    let _ = writeln!(out, "most common products:");
    for &p in order.iter().take(5) {
        let _ = writeln!(out, "  {:<26} {:>6} companies", name(p), df[p]);
    }
    let _ = writeln!(out, "least common products:");
    for &p in order.iter().rev().take(3) {
        let _ = writeln!(out, "  {:<26} {:>6} companies", name(p), df[p]);
    }

    // Largest industries, with human-readable SIC names.
    let mut by_industry: std::collections::HashMap<hlm_corpus::Sic2, usize> =
        std::collections::HashMap::new();
    for c in corpus.companies() {
        *by_industry.entry(c.industry).or_insert(0) += 1;
    }
    let mut industries: Vec<(hlm_corpus::Sic2, usize)> = by_industry.into_iter().collect();
    industries.sort_by_key(|&(s, n)| (std::cmp::Reverse(n), s));
    let _ = writeln!(out, "largest industries:");
    for (sic, n) in industries.into_iter().take(5) {
        let _ = writeln!(
            out,
            "  {} {:<38} {:>6} companies",
            sic,
            hlm_corpus::sic::major_group_name(sic),
            n
        );
    }
    if !report.is_empty() {
        let _ = writeln!(out, "note: {}", report.summary());
        for row in report.rows().iter().take(5) {
            let _ = writeln!(out, "  {}.csv line {}: {}", row.file, row.line, row.reason);
        }
    }
    let _ = writeln!(out, "{}", timing_summary(t0));
    Ok(out)
}

/// The trailing `elapsed … (N threads)` summary line for commands that do
/// real work — the operator's first clue when tuning `--threads`. With
/// `--metrics` the recorder is live and the line also reports how many spans
/// were recorded and their summed root duration.
fn timing_summary(t0: std::time::Instant) -> String {
    let base = format!(
        "elapsed: {:.3}s ({} threads)",
        t0.elapsed().as_secs_f64(),
        hlm_engine::effective_threads()
    );
    let rec = hlm_obs::global();
    if !rec.is_enabled() {
        return base;
    }
    let (n_spans, root_ms) = rec.snapshot().span_totals();
    format!("{base} — {n_spans} spans, {root_ms:.1}ms in root spans")
}

/// Maps an engine failure, pointing interrupted runs at `--resume`.
fn engine_err(e: hlm_engine::EngineError) -> CliError {
    if e.is_interruption() {
        CliError::Engine(format!(
            "{e}; re-run with --resume to continue from the last checkpoint"
        ))
    } else {
        CliError::Engine(e.to_string())
    }
}

fn train_lda(
    corpus: &Corpus,
    topics: usize,
    iters: usize,
    sampler: hlm_lda::SamplerChoice,
    flags: &TrainFlags,
) -> Result<(LdaModel, Vec<String>), CliError> {
    let ids: Vec<_> = corpus.ids().collect();
    let docs = binary_docs(corpus, &ids);
    let config = LdaConfig {
        n_topics: topics,
        vocab_size: corpus.vocab().len(),
        n_iters: iters.max(2),
        burn_in: iters.max(2) / 2,
        sample_lag: 5,
        sampler,
        ..Default::default()
    };
    if !flags.is_active() {
        return hlm_engine::fit_lda(config, LdaEstimator::Gibbs, &docs)
            .map(|m| (m, Vec::new()))
            .map_err(engine_err);
    }

    let plan = build_plan(flags)?;
    let fit = hlm_engine::fit_lda_resilient(config, LdaEstimator::Gibbs, &docs, plan)
        .map_err(engine_err)?;
    let notes = fit_notes(&fit, flags, "sweep");
    Ok((fit.model, notes))
}

/// Builds the resilience plan (store, resume, watchdog) from the CLI flags.
fn build_plan(flags: &TrainFlags) -> Result<TrainPlan, CliError> {
    let mut plan = TrainPlan::new().resume(flags.resume);
    if let Some(dir) = &flags.checkpoint_dir {
        plan = plan.on_disk(dir).map_err(engine_err)?;
    }
    let mut guard = RunGuard::unlimited();
    if let Some(secs) = flags.max_seconds {
        guard = guard.with_deadline_millis(secs.saturating_mul(1000));
    }
    if let Some(n) = flags.abort_at {
        guard = guard.abort_at_iteration(n);
    }
    Ok(plan.with_guard(guard))
}

/// Operator-facing notes about how a resilient fit got its model.
/// `unit` names the iteration granularity ("sweep" in memory, "step" —
/// one shard of one pass — out of core).
fn fit_notes(
    fit: &hlm_engine::ResilientFit<LdaModel>,
    flags: &TrainFlags,
    unit: &str,
) -> Vec<String> {
    let mut notes = Vec::new();
    if let Some(iter) = fit.resumed_from {
        notes.push(format!("resumed from checkpoint at {unit} {iter}"));
    }
    if fit.checkpoints_written > 0 {
        notes.push(format!(
            "wrote {} checkpoint(s) to {}",
            fit.checkpoints_written,
            flags.checkpoint_dir.as_deref().unwrap_or("?"),
        ));
    }
    if let Some(e) = &fit.rolled_back {
        notes.push(format!(
            "training diverged ({e}); rolled back to the last good checkpoint"
        ));
    }
    notes
}

/// Out-of-core LDA on a sharded store: one shard of companies in memory at
/// a time. Gibbs spills per-shard sampler state next to the checkpoints
/// (or under the store for unplanned runs); online VB needs no spills.
fn train_lda_sharded(
    store: &ShardStore,
    topics: usize,
    iters: usize,
    estimator: TopicsEstimator,
    sampler: hlm_lda::SamplerChoice,
    flags: &TrainFlags,
) -> Result<(LdaModel, Vec<String>), CliError> {
    let config = LdaConfig {
        n_topics: topics,
        vocab_size: store.vocab().len(),
        n_iters: iters.max(2),
        burn_in: iters.max(2) / 2,
        sample_lag: 5,
        sampler,
        ..Default::default()
    };
    let plan = build_plan(flags)?;
    let fit = match estimator {
        TopicsEstimator::Gibbs => {
            let work_dir = match &flags.checkpoint_dir {
                Some(dir) => Path::new(dir).join("spills"),
                None => store.dir().join(".gibbs_work"),
            };
            hlm_engine::fit_lda_sharded_gibbs(config, store, work_dir, plan).map_err(engine_err)?
        }
        TopicsEstimator::OnlineVb => {
            let opts = OnlineVbOptions {
                epochs: iters.max(1),
                ..OnlineVbOptions::default()
            };
            hlm_engine::fit_lda_sharded_online_vb(config, opts, store, plan).map_err(engine_err)?
        }
    };
    let notes = fit_notes(&fit, flags, "step");
    Ok((fit.model, notes))
}

/// `hlm topics`.
pub fn topics(
    data: &str,
    topics: usize,
    iters: usize,
    estimator: TopicsEstimator,
    sampler: hlm_lda::SamplerChoice,
    flags: &TrainFlags,
) -> Result<String, CliError> {
    if topics == 0 {
        return Err(CliError::Usage("--topics must be positive".into()));
    }
    let t0 = std::time::Instant::now();
    let (model, notes, vocab) = if is_sharded(data) {
        let store = open_store(data)?;
        let (model, notes) = train_lda_sharded(&store, topics, iters, estimator, sampler, flags)?;
        (model, notes, store.vocab().clone())
    } else {
        if estimator == TopicsEstimator::OnlineVb {
            return Err(CliError::Usage(
                "--estimator online-vb needs a sharded data directory \
                 (generate with --shards)"
                    .into(),
            ));
        }
        let corpus = load(data)?;
        let (model, notes) = train_lda(&corpus, topics, iters, sampler, flags)?;
        let vocab = corpus.vocab().clone();
        (model, notes, vocab)
    };
    let mut out = String::new();
    for note in notes {
        let _ = writeln!(out, "note: {note}");
    }
    for k in 0..model.n_topics() {
        let tops: Vec<String> = model
            .top_products(k, 8)
            .into_iter()
            .map(|(w, p)| format!("{} ({:.2})", vocab.name(hlm_corpus::ProductId(w as u16)), p))
            .collect();
        let _ = writeln!(out, "topic {k}: {}", tops.join(", "));
    }
    let _ = writeln!(out, "{}", timing_summary(t0));
    Ok(out)
}

/// `hlm similar`.
pub fn similar(data: &str, company: u64, k: usize, whitespace: usize) -> Result<String, CliError> {
    let corpus = load(data)?;
    let query = corpus
        .iter()
        .find(|(_, c)| c.duns == company)
        .map(|(id, _)| id)
        .ok_or_else(|| CliError::Data(format!("no company with duns {company}")))?;

    let ids: Vec<_> = corpus.ids().collect();
    let docs = binary_docs(&corpus, &ids);
    let (model, _) = train_lda(
        &corpus,
        3,
        120,
        hlm_lda::SamplerChoice::Auto,
        &TrainFlags::default(),
    )?;
    let reps = lda_representations(&model, &docs);
    let engine = Engine::new(corpus);
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .map_err(engine_err)?;

    let mut out = String::new();
    let describe = |id: hlm_corpus::CompanyId| -> String {
        let c = app.corpus().company(id);
        format!(
            "{} (duns {}, {}, {} products)",
            c.name,
            c.duns,
            c.industry,
            c.product_count()
        )
    };
    let _ = writeln!(out, "query: {}", describe(query));
    let _ = writeln!(out, "top-{k} similar companies:");
    let similar = app
        .find_similar(query, k, &CompanyFilter::default())
        .map_err(|e| CliError::Engine(e.to_string()))?;
    for s in similar {
        let _ = writeln!(out, "  d={:.4}  {}", s.distance, describe(s.id));
    }
    let recs = app
        .recommend_whitespace(query, k.max(10), &CompanyFilter::default())
        .map_err(|e| CliError::Engine(e.to_string()))?;
    let _ = writeln!(out, "whitespace recommendations:");
    for r in recs.iter().take(whitespace) {
        let _ = writeln!(
            out,
            "  {:<26} score {:.2} ({} similar owners)",
            app.corpus().vocab().name(r.product),
            r.score,
            r.owners_among_similar
        );
    }
    Ok(out)
}

/// The LDA shape every serving path shares (mirrors [`train_lda`], so a
/// server warmed from a `hlm topics --checkpoint-dir` run reads its
/// checkpoints with the exact config that wrote them).
fn serve_lda_config(vocab_size: usize, topics: usize, iters: usize) -> LdaConfig {
    LdaConfig {
        n_topics: topics,
        vocab_size,
        n_iters: iters.max(2),
        burn_in: iters.max(2) / 2,
        sample_lag: 5,
        ..Default::default()
    }
}

/// `hlm serve`: warm a model and answer similarity / whitespace /
/// recommendation queries over HTTP until SIGTERM, then drain.
pub fn serve(data: &str, flags: &ServeFlags) -> Result<String, CliError> {
    // A server is a long-running observable process: its `/metrics`
    // endpoint is only useful with the recorder live, so turn it on
    // unconditionally (read-only observer; results are unaffected).
    hlm_obs::install(hlm_obs::Recorder::enabled());
    let stop = hlm_serve::install_term_handler();
    serve_until(data, flags, stop)
}

/// [`serve`] with an injectable stop flag, so tests can run a real server
/// in-process and shut it down without sending signals.
pub fn serve_until(
    data: &str,
    flags: &ServeFlags,
    stop: Arc<AtomicBool>,
) -> Result<String, CliError> {
    if flags.topics == 0 {
        return Err(CliError::Usage("--topics must be positive".into()));
    }
    let corpus = load(data)?;
    let config = serve_lda_config(corpus.vocab().len(), flags.topics, flags.iters);
    let engine = Arc::new(Engine::new(corpus));
    let opts = ServeOptions {
        request_budget_millis: Some(flags.deadline_ms),
        ..ServeOptions::default()
    };

    // Warm start beats retraining: when the checkpoint dir has a good
    // checkpoint, the server comes up answering bit-identically to the one
    // that wrote it. Otherwise train now — checkpointing into the dir when
    // one was given, so the *next* start is warm.
    let mut note = String::new();
    let store = match &flags.checkpoint_dir {
        Some(dir) => Some(
            CheckpointStore::on_disk(dir)
                .map_err(|e| CliError::Engine(format!("cannot open checkpoint dir {dir}: {e}")))?,
        ),
        None => None,
    };
    let warm = store.as_ref().and_then(|s| {
        match bundle_from_checkpoint(&engine, &config, s, DistanceMetric::Cosine, opts.clone()) {
            Ok(b) => Some(b),
            Err(e) => {
                note = format!("cold start ({e})");
                None
            }
        }
    });
    let bundle = match warm {
        Some(b) => {
            note = format!(
                "warm start from checkpoint at sweep {}",
                b.checkpoint_iteration
            );
            b
        }
        None => {
            let ids: Vec<_> = engine.corpus().ids().collect();
            let docs = binary_docs(engine.corpus(), &ids);
            let mut plan = TrainPlan::new();
            if let Some(dir) = &flags.checkpoint_dir {
                plan = plan.on_disk(dir).map_err(engine_err)?;
            }
            let fit =
                hlm_engine::fit_lda_resilient(config.clone(), LdaEstimator::Gibbs, &docs, plan)
                    .map_err(engine_err)?;
            if note.is_empty() {
                note = format!(
                    "trained LDA{} for {} sweeps",
                    config.n_topics, config.n_iters
                );
            }
            bundle_from_model(
                &engine,
                fit.model,
                config.n_iters as u64,
                DistanceMetric::Cosine,
                opts.clone(),
            )
            .map_err(CliError::Engine)?
        }
    };

    // With a checkpoint dir, `POST /admin/swap` hot-reloads whatever good
    // checkpoint a concurrent training run has produced since.
    let loader: Option<BundleLoader> = flags.checkpoint_dir.as_ref().map(|dir| {
        let engine = Arc::clone(&engine);
        let config = config.clone();
        let dir = dir.clone();
        let opts = opts.clone();
        Box::new(move || {
            let store = CheckpointStore::on_disk(&dir).map_err(|e| e.to_string())?;
            bundle_from_checkpoint(
                &engine,
                &config,
                &store,
                DistanceMetric::Cosine,
                opts.clone(),
            )
        }) as BundleLoader
    });

    let server_config = ServerConfig {
        addr: format!("127.0.0.1:{}", flags.port),
        workers: flags.workers,
        queue_capacity: flags.queue,
        default_deadline_millis: flags.deadline_ms,
        ..ServerConfig::default()
    };
    let label = bundle.label.clone();
    let generation = bundle.generation;
    let server = Server::bind(server_config, engine, bundle, loader)
        .map_err(|e| CliError::Data(format!("cannot bind 127.0.0.1:{}: {e}", flags.port)))?;
    let addr = server.local_addr();
    if let Some(path) = &flags.port_file {
        std::fs::write(path, addr.port().to_string())
            .map_err(|e| CliError::Data(format!("cannot write port file {path}: {e}")))?;
    }
    // Announce readiness on stdout *before* blocking in the accept loop —
    // operators and scripts key off this line, not the exit summary.
    println!("note: {note}");
    println!("serving {label} (generation {generation}) on http://{addr} — SIGTERM drains");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run(stop);
    Ok(format!("server on {addr} drained cleanly\n"))
}

/// `hlm drift`.
pub fn drift(data: &str, reference: Month, recent: Month, months: u32) -> Result<String, CliError> {
    if months == 0 {
        return Err(CliError::Usage("--months must be positive".into()));
    }
    let corpus = load(data)?;
    let engine = Engine::new(corpus);
    let rep = engine.detect_drift(
        TimeWindow::new(reference, months),
        TimeWindow::new(recent, months),
        0.05,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "reference period: {} + {months} months ({} events)",
        reference, rep.reference_events
    );
    let _ = writeln!(
        out,
        "recent period:    {} + {months} months ({} events)",
        recent, rep.recent_events
    );
    if !rep.is_valid() {
        let _ = writeln!(
            out,
            "verdict:          insufficient data — the test needs at least one \
             event in each period and two observed categories"
        );
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "chi-square:       {:.2} (df {})",
        rep.chi_square, rep.degrees_of_freedom
    );
    let _ = writeln!(out, "p-value:          {:.6}", rep.p_value);
    let _ = writeln!(out, "JS divergence:    {:.4} nats", rep.js_divergence);
    let _ = writeln!(
        out,
        "verdict:          {}",
        if rep.drifted {
            "CONCEPT DRIFT detected — retrain the model"
        } else {
            "no significant drift"
        }
    );
    Ok(out)
}

/// `hlm replay`: generate an event stream, replay it month by month against
/// a live in-process server, retrain per policy, and hot-swap on success.
pub fn replay(flags: &ReplayFlags) -> Result<String, CliError> {
    let mut stream = EventStreamConfig::with_size_and_seed(flags.companies, flags.seed);
    let horizon = stream.base.horizon;
    if let Some(month) = flags.launch {
        if month >= horizon {
            return Err(CliError::Usage(format!(
                "--launch {month} must be before the stream horizon {horizon}"
            )));
        }
        stream.launches.push(LaunchSpec {
            name: "replay_launch".to_string(),
            month,
            adoption: 0.04,
        });
    }
    if let Some(month) = flags.shift {
        if month >= horizon {
            return Err(CliError::Usage(format!(
                "--shift {month} must be before the stream horizon {horizon}"
            )));
        }
        stream.shift = Some(MixShift {
            month,
            products: vec!["retail".to_string(), "media".to_string()],
            monthly_rate: 0.15,
        });
    }

    let mut cfg = hlm_serve::ReplayConfig::new(stream);
    cfg.serve_months = flags.months;
    cfg.policy = flags.policy;
    cfg.significance = flags.significance;
    cfg.reference_months = flags.reference_months;
    cfg.recent_months = flags.recent_months;
    cfg.top_n = flags.top_n;
    cfg.lda = serve_lda_config(0, flags.topics, flags.iters); // vocab_size set per fit
    cfg.lda.seed = flags.seed;
    cfg.checkpoint_dir = flags.checkpoint_dir.as_ref().map(std::path::PathBuf::from);
    cfg.resume = flags.resume;
    cfg.abort = flags.abort_at.map(|iteration| hlm_serve::FitAbort {
        fit_index: flags.abort_fit,
        iteration,
    });

    let outcome = hlm_serve::replay(&cfg).map_err(|e| {
        if e.is_interruption() {
            CliError::Engine(format!("replay interrupted: {e} (rerun with --resume)"))
        } else {
            engine_err(e)
        }
    })?;

    if let Some(path) = &flags.out {
        std::fs::write(path, outcome.csv())
            .map_err(|e| CliError::Data(format!("cannot write curve to {path}: {e}")))?;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed {} months ({} events) under policy {:?}",
        outcome.rows.len(),
        outcome.events,
        flags.policy
    );
    let _ = writeln!(
        out,
        "drift checks:   {} valid ({} triggered)",
        outcome.drift_checks,
        outcome.rows.iter().filter(|r| r.drifted).count()
    );
    let _ = writeln!(out, "retrains:       {}", outcome.retrains);
    let _ = writeln!(out, "fold-ins:       {}", outcome.fold_ins);
    let _ = writeln!(out, "hot swaps:      {}", outcome.swaps);
    let _ = writeln!(
        out,
        "market at end:  {} companies, {} product categories",
        outcome.companies, outcome.vocab_len
    );
    let evaluated: u64 = outcome.rows.iter().map(|r| r.evaluated).sum();
    let hits: u64 = outcome.rows.iter().map(|r| r.hits).sum();
    if evaluated > 0 {
        let _ = writeln!(
            out,
            "precision@{}:    {:.4} overall ({hits}/{evaluated}), {:.4} last 12 evaluable months",
            flags.top_n,
            hits as f64 / evaluated as f64,
            outcome.late_hit_rate(12)
        );
    } else {
        let _ = writeln!(
            out,
            "precision@{}:    n/a (no evaluable acquisitions)",
            flags.top_n
        );
    }
    if let Some(path) = &flags.out {
        let _ = writeln!(out, "curve written:  {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("hlm_cli_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_stats_round_trips() {
        let dir = tmp_dir("stats");
        let msg = generate(120, 7, &dir, None).expect("generate works");
        assert!(msg.contains("120 companies"));
        let s = stats(&dir).expect("stats works");
        assert!(s.contains("companies:            120"), "{s}");
        assert!(
            s.contains("OS") || s.contains("network_HW"),
            "popular products listed: {s}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topics_prints_k_topics() {
        let dir = tmp_dir("topics");
        generate(150, 9, &dir, None).unwrap();
        let out = topics(
            &dir,
            3,
            60,
            TopicsEstimator::Gibbs,
            hlm_lda::SamplerChoice::Auto,
            &TrainFlags::default(),
        )
        .unwrap();
        // 3 topic lines + the trailing elapsed/threads summary.
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("topic 0:"));
        let last = out.lines().last().unwrap();
        assert!(
            last.starts_with("elapsed: ") && last.ends_with("threads)"),
            "{last}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topics_kill_and_resume_via_cli_flags() {
        let dir = tmp_dir("resume");
        generate(150, 9, &dir, None).unwrap();
        let ck = format!("{dir}/checkpoints");

        // A deterministic "kill" at sweep 20: exit class is engine/training
        // (4) and the message tells the operator how to continue.
        let killed = TrainFlags {
            checkpoint_dir: Some(ck.clone()),
            abort_at: Some(20),
            ..TrainFlags::default()
        };
        let err = topics(
            &dir,
            3,
            60,
            TopicsEstimator::Gibbs,
            hlm_lda::SamplerChoice::Auto,
            &killed,
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("--resume"), "{err}");

        // Resume completes and says where it picked up.
        let resumed = TrainFlags {
            checkpoint_dir: Some(ck),
            resume: true,
            ..TrainFlags::default()
        };
        let out = topics(
            &dir,
            3,
            60,
            TopicsEstimator::Gibbs,
            hlm_lda::SamplerChoice::Auto,
            &resumed,
        )
        .unwrap();
        assert!(out.contains("resumed from checkpoint at sweep 20"), "{out}");
        assert!(out.contains("topic 0:"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_quarantines_malformed_rows_and_reports_them() {
        let dir = tmp_dir("lenient");
        generate(80, 21, &dir, None).unwrap();
        let events_path = Path::new(&dir).join("events.csv");
        let mut events = std::fs::read_to_string(&events_path).unwrap();
        events.push_str("999999,OS,2001-05,2001-05,1\n"); // unknown company
        events.push_str("10000,OS,2001-05,2001-05,42\n"); // confidence out of range
        std::fs::write(&events_path, events).unwrap();

        let out = stats(&dir).unwrap();
        assert!(out.contains("companies:            80"), "{out}");
        assert!(
            out.contains("quarantined 2 malformed rows (companies: 0, events: 2)"),
            "{out}"
        );
        assert!(out.contains("confidence"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_map_to_stable_exit_codes() {
        assert_eq!(CliError::Usage("u".into()).exit_code(), 2);
        assert_eq!(CliError::Data("d".into()).exit_code(), 3);
        assert_eq!(CliError::Engine("e".into()).exit_code(), 4);

        // Usage: bad option value.
        let e = topics(
            "ignored",
            0,
            10,
            TopicsEstimator::Gibbs,
            hlm_lda::SamplerChoice::Auto,
            &TrainFlags::default(),
        )
        .unwrap_err();
        assert_eq!(e.exit_code(), 2);
        // Data: unreadable input.
        let e = stats("/no/such/dir").unwrap_err();
        assert_eq!(e.exit_code(), 3);
        // Stderr rendering is a single line even for multi-line messages.
        assert_eq!(CliError::Data("a\nb".into()).to_string(), "a b");
    }

    #[test]
    fn similar_finds_neighbours_and_whitespace() {
        let dir = tmp_dir("similar");
        generate(150, 11, &dir, None).unwrap();
        // Company duns are 10_000 + index in the generator.
        let out = similar(&dir, 10_005, 5, 3).unwrap();
        assert!(out.contains("top-5 similar companies"), "{out}");
        assert!(out.matches("d=").count() == 5, "{out}");
        assert!(out.contains("whitespace recommendations"));
        let err = similar(&dir, 999, 5, 3).unwrap_err();
        assert!(err.to_string().contains("no company"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_detects_stage_shift_on_generated_data() {
        let dir = tmp_dir("drift");
        generate(400, 13, &dir, None).unwrap();
        let out = drift(&dir, Month::from_ym(1995, 1), Month::from_ym(2013, 1), 24).unwrap();
        assert!(out.contains("CONCEPT DRIFT"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_with_empty_period_reports_insufficient_data() {
        let dir = tmp_dir("drift-empty");
        generate(100, 13, &dir, None).unwrap();
        // 1900 predates every founding date: zero events in that window.
        let out = drift(&dir, Month::from_ym(1900, 1), Month::from_ym(2013, 1), 12).unwrap();
        assert!(out.contains("insufficient data"), "{out}");
        assert!(!out.contains("NaN"), "no bare NaN p-value: {out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_data_directory_is_a_clean_error() {
        let e = stats("/no/such/dir").unwrap_err();
        assert!(e.to_string().contains("companies.csv"));
        assert!(generate(0, 1, "/tmp/x", None).is_err());
    }

    #[test]
    fn run_dispatches_help() {
        let out = crate::run(&crate::Command::Help).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("hlm serve"), "{out}");
    }

    #[test]
    fn serve_until_answers_http_then_drains_on_stop() {
        use std::io::{Read as _, Write as _};

        let dir = tmp_dir("serve");
        generate(100, 5, &dir, None).unwrap();
        let port_file = format!("{dir}/port");
        let flags = ServeFlags {
            port_file: Some(port_file.clone()),
            iters: 12,
            ..ServeFlags::default()
        };
        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let dir = dir.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve_until(&dir, &flags, stop))
        };

        // The port file appears once the server is listening.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let port: u16 = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                break s.trim().parse().expect("port file holds a port");
            }
            assert!(std::time::Instant::now() < deadline, "server never came up");
            std::thread::sleep(std::time::Duration::from_millis(25));
        };

        let fetch = |path: &str| -> String {
            let mut conn =
                std::net::TcpStream::connect(("127.0.0.1", port)).expect("server accepts");
            write!(
                conn,
                "GET {path} HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n"
            )
            .unwrap();
            let mut buf = String::new();
            conn.read_to_string(&mut buf).unwrap();
            buf
        };
        assert!(fetch("/healthz").starts_with("HTTP/1.1 200"), "healthz");
        let sim = fetch("/v1/similar?company=0&k=3&deadline_ms=30000");
        assert!(sim.starts_with("HTTP/1.1 200"), "{sim}");
        assert!(sim.contains("\"results\""), "{sim}");

        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("drained cleanly"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_generate_then_stats_streams_the_manifest() {
        let dir = tmp_dir("sharded_stats");
        let msg = generate(256, 7, &dir, Some(4)).expect("sharded generate works");
        assert!(msg.contains("256 companies"), "{msg}");
        assert!(msg.contains("4 shard(s)"), "{msg}");
        let s = stats(&dir).expect("sharded stats works");
        assert!(s.contains("sharded corpus:"), "{s}");
        assert!(s.contains("companies:            256"), "{s}");
        assert!(s.contains("4 x 64 companies"), "{s}");
        assert!(s.contains("shard_00003.bin"), "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_topics_trains_gibbs_and_online_vb() {
        let dir = tmp_dir("sharded_topics");
        generate(150, 9, &dir, Some(2)).unwrap();

        // Out-of-core Gibbs: same 4-line shape as the in-memory path.
        let out = topics(
            &dir,
            3,
            30,
            TopicsEstimator::Gibbs,
            hlm_lda::SamplerChoice::Auto,
            &TrainFlags::default(),
        )
        .unwrap();
        assert_eq!(out.lines().count(), 4, "{out}");
        assert!(out.contains("topic 0:"), "{out}");

        // Online VB: one epoch per requested iteration, same output shape.
        let out = topics(
            &dir,
            3,
            2,
            TopicsEstimator::OnlineVb,
            hlm_lda::SamplerChoice::Auto,
            &TrainFlags::default(),
        )
        .unwrap();
        assert_eq!(out.lines().count(), 4, "{out}");
        assert!(out.contains("topic 0:"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn online_vb_requires_a_sharded_corpus() {
        let dir = tmp_dir("vb_needs_shards");
        generate(80, 3, &dir, None).unwrap();
        let err = topics(
            &dir,
            3,
            2,
            TopicsEstimator::OnlineVb,
            hlm_lda::SamplerChoice::Auto,
            &TrainFlags::default(),
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--shards"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_topics_kill_and_resume_via_cli_flags() {
        let dir = tmp_dir("sharded_resume");
        generate(150, 9, &dir, Some(2)).unwrap();
        let ck = format!("{dir}/checkpoints");

        let killed = TrainFlags {
            checkpoint_dir: Some(ck.clone()),
            abort_at: Some(20),
            ..TrainFlags::default()
        };
        let err = topics(
            &dir,
            3,
            30,
            TopicsEstimator::Gibbs,
            hlm_lda::SamplerChoice::Auto,
            &killed,
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("--resume"), "{err}");

        let resumed = TrainFlags {
            checkpoint_dir: Some(ck),
            resume: true,
            ..TrainFlags::default()
        };
        let out = topics(
            &dir,
            3,
            30,
            TopicsEstimator::Gibbs,
            hlm_lda::SamplerChoice::Auto,
            &resumed,
        )
        .unwrap();
        assert!(out.contains("resumed from checkpoint at step 20"), "{out}");
        assert!(out.contains("topic 0:"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
