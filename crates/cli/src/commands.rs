//! The `hlm` subcommand implementations. Each returns its output as a
//! `String` so everything is testable without process spawning.

use crate::{CliError, TrainFlags};
use hlm_core::representations::{binary_docs, lda_representations};
use hlm_core::{CompanyFilter, DistanceMetric};
use hlm_corpus::io::{from_csv, from_csv_lenient, to_csv, LenientOptions, QuarantineReport};
use hlm_corpus::{Corpus, Month, TimeWindow, Vocabulary};
use hlm_datagen::GeneratorConfig;
use hlm_engine::{Engine, LdaEstimator, RunGuard, TrainPlan};
use hlm_lda::{LdaConfig, LdaModel};
use std::fmt::Write as _;
use std::path::Path;

/// Usage text.
pub fn help_text() -> String {
    "\
hlm — hidden-layer models for company install bases

USAGE:
  hlm generate --out DIR [--companies N] [--seed S]
      Generate a synthetic install-base corpus and write
      DIR/companies.csv + DIR/events.csv.
  hlm stats --data DIR
      Corpus summary: sizes, industries, most/least common products.
      Malformed rows are quarantined (and reported) instead of aborting.
  hlm topics --data DIR [--topics K] [--iters N]
            [--checkpoint-dir DIR] [--resume] [--max-seconds S]
      Train LDA and print the learned topics. --checkpoint-dir snapshots
      every sweep; --resume continues an interrupted run from the latest
      good checkpoint; --max-seconds bounds the wall-clock budget.
  hlm similar --data DIR --company DUNS [--k K] [--whitespace W]
      Top-K most similar companies and whitespace recommendations.
  hlm drift --data DIR --reference YYYY-MM --recent YYYY-MM [--months M]
      Chi-square concept-drift check between two M-month periods.
  hlm help
      This text.

GLOBAL OPTIONS:
  --threads N
      Worker threads for the parallel runtime (default: HLM_THREADS if
      set, else the detected core count). Results are bit-identical at
      any thread count; only the wall-clock changes. `stats` and
      `topics` end with an `elapsed: …s (N threads)` summary line.
  --par-threshold UNITS
      Minimum work (abstract cost units) before the worker pool engages;
      smaller workloads run serially with identical results (default:
      HLM_PAR_THRESHOLD if set, else a one-time calibration). 0 forces
      the pool on for every parallelizable call.
  --metrics PATH [--metrics-format jsonl|prom]
      Record structured metrics (spans, counters, histograms, traces)
      while the command runs and write a snapshot to PATH afterwards.
      jsonl (default) is a schema-versioned JSON-lines event log; prom
      is a Prometheus-style text snapshot. Recording is a read-only
      observer: results are bit-identical with or without it.

EXIT CODES:
  0 success   2 usage error   3 data error   4 engine/training error
"
    .to_string()
}

/// Reads `DIR/companies.csv` + `DIR/events.csv` as strings.
fn read_pair(data: &str) -> Result<(String, String), CliError> {
    let dir = Path::new(data);
    let companies = std::fs::read_to_string(dir.join("companies.csv"))
        .map_err(|e| CliError::Data(format!("cannot read {data}/companies.csv: {e}")))?;
    let events = std::fs::read_to_string(dir.join("events.csv"))
        .map_err(|e| CliError::Data(format!("cannot read {data}/events.csv: {e}")))?;
    Ok((companies, events))
}

/// Loads a corpus strictly (first malformed row is an error).
fn load(data: &str) -> Result<Corpus, CliError> {
    let (companies, events) = read_pair(data)?;
    from_csv(Vocabulary::standard(), &companies, &events).map_err(|e| CliError::Data(e.to_string()))
}

/// Loads a corpus leniently, quarantining malformed rows up to the default
/// error budget.
fn load_lenient(data: &str) -> Result<(Corpus, QuarantineReport), CliError> {
    let (companies, events) = read_pair(data)?;
    from_csv_lenient(
        Vocabulary::standard(),
        &companies,
        &events,
        &LenientOptions::default(),
    )
    .map_err(|e| CliError::Data(e.to_string()))
}

/// `hlm generate`.
pub fn generate(companies: usize, seed: u64, out: &str) -> Result<String, CliError> {
    if companies == 0 {
        return Err(CliError::Usage("--companies must be positive".into()));
    }
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(companies, seed));
    let (companies_csv, events_csv) = to_csv(&corpus);
    let dir = Path::new(out);
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::Data(format!("cannot create {out}: {e}")))?;
    std::fs::write(dir.join("companies.csv"), companies_csv)
        .map_err(|e| CliError::Data(format!("cannot write companies.csv: {e}")))?;
    std::fs::write(dir.join("events.csv"), events_csv)
        .map_err(|e| CliError::Data(format!("cannot write events.csv: {e}")))?;
    Ok(format!(
        "wrote {} companies ({} install events) to {out}/companies.csv and {out}/events.csv\n",
        corpus.len(),
        corpus.total_tokens()
    ))
}

/// `hlm stats`. Uses the lenient CSV path: malformed rows are quarantined
/// and summarised rather than failing the whole command.
pub fn stats(data: &str) -> Result<String, CliError> {
    let t0 = std::time::Instant::now();
    let (corpus, report) = load_lenient(data)?;
    let mut out = String::new();
    let _ = writeln!(out, "companies:            {}", corpus.len());
    let _ = writeln!(out, "product categories:   {}", corpus.vocab().len());
    let _ = writeln!(out, "install events:       {}", corpus.total_tokens());
    let _ = writeln!(
        out,
        "mean products/company: {:.2}",
        corpus.mean_products_per_company()
    );
    let _ = writeln!(out, "industries (SIC2):    {}", corpus.industries().len());

    let df = corpus.document_frequencies();
    let mut order: Vec<usize> = (0..df.len()).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(df[p]));
    let name = |p: usize| corpus.vocab().name(hlm_corpus::ProductId(p as u16));
    let _ = writeln!(out, "most common products:");
    for &p in order.iter().take(5) {
        let _ = writeln!(out, "  {:<26} {:>6} companies", name(p), df[p]);
    }
    let _ = writeln!(out, "least common products:");
    for &p in order.iter().rev().take(3) {
        let _ = writeln!(out, "  {:<26} {:>6} companies", name(p), df[p]);
    }

    // Largest industries, with human-readable SIC names.
    let mut by_industry: std::collections::HashMap<hlm_corpus::Sic2, usize> =
        std::collections::HashMap::new();
    for c in corpus.companies() {
        *by_industry.entry(c.industry).or_insert(0) += 1;
    }
    let mut industries: Vec<(hlm_corpus::Sic2, usize)> = by_industry.into_iter().collect();
    industries.sort_by_key(|&(s, n)| (std::cmp::Reverse(n), s));
    let _ = writeln!(out, "largest industries:");
    for (sic, n) in industries.into_iter().take(5) {
        let _ = writeln!(
            out,
            "  {} {:<38} {:>6} companies",
            sic,
            hlm_corpus::sic::major_group_name(sic),
            n
        );
    }
    if !report.is_empty() {
        let _ = writeln!(out, "note: {}", report.summary());
        for row in report.rows().iter().take(5) {
            let _ = writeln!(out, "  {}.csv line {}: {}", row.file, row.line, row.reason);
        }
    }
    let _ = writeln!(out, "{}", timing_summary(t0));
    Ok(out)
}

/// The trailing `elapsed … (N threads)` summary line for commands that do
/// real work — the operator's first clue when tuning `--threads`. With
/// `--metrics` the recorder is live and the line also reports how many spans
/// were recorded and their summed root duration.
fn timing_summary(t0: std::time::Instant) -> String {
    let base = format!(
        "elapsed: {:.3}s ({} threads)",
        t0.elapsed().as_secs_f64(),
        hlm_engine::effective_threads()
    );
    let rec = hlm_obs::global();
    if !rec.is_enabled() {
        return base;
    }
    let (n_spans, root_ms) = rec.snapshot().span_totals();
    format!("{base} — {n_spans} spans, {root_ms:.1}ms in root spans")
}

/// Maps an engine failure, pointing interrupted runs at `--resume`.
fn engine_err(e: hlm_engine::EngineError) -> CliError {
    if e.is_interruption() {
        CliError::Engine(format!(
            "{e}; re-run with --resume to continue from the last checkpoint"
        ))
    } else {
        CliError::Engine(e.to_string())
    }
}

fn train_lda(
    corpus: &Corpus,
    topics: usize,
    iters: usize,
    flags: &TrainFlags,
) -> Result<(LdaModel, Vec<String>), CliError> {
    let ids: Vec<_> = corpus.ids().collect();
    let docs = binary_docs(corpus, &ids);
    let config = LdaConfig {
        n_topics: topics,
        vocab_size: corpus.vocab().len(),
        n_iters: iters.max(2),
        burn_in: iters.max(2) / 2,
        sample_lag: 5,
        ..Default::default()
    };
    if !flags.is_active() {
        return hlm_engine::fit_lda(config, LdaEstimator::Gibbs, &docs)
            .map(|m| (m, Vec::new()))
            .map_err(engine_err);
    }

    let mut plan = TrainPlan::new().resume(flags.resume);
    if let Some(dir) = &flags.checkpoint_dir {
        plan = plan.on_disk(dir).map_err(engine_err)?;
    }
    let mut guard = RunGuard::unlimited();
    if let Some(secs) = flags.max_seconds {
        guard = guard.with_deadline_millis(secs.saturating_mul(1000));
    }
    if let Some(n) = flags.abort_at {
        guard = guard.abort_at_iteration(n);
    }
    let fit =
        hlm_engine::fit_lda_resilient(config, LdaEstimator::Gibbs, &docs, plan.with_guard(guard))
            .map_err(engine_err)?;

    let mut notes = Vec::new();
    if let Some(iter) = fit.resumed_from {
        notes.push(format!("resumed from checkpoint at sweep {iter}"));
    }
    if fit.checkpoints_written > 0 {
        notes.push(format!(
            "wrote {} checkpoint(s) to {}",
            fit.checkpoints_written,
            flags.checkpoint_dir.as_deref().unwrap_or("?"),
        ));
    }
    if let Some(e) = &fit.rolled_back {
        notes.push(format!(
            "training diverged ({e}); rolled back to the last good checkpoint"
        ));
    }
    Ok((fit.model, notes))
}

/// `hlm topics`.
pub fn topics(
    data: &str,
    topics: usize,
    iters: usize,
    flags: &TrainFlags,
) -> Result<String, CliError> {
    if topics == 0 {
        return Err(CliError::Usage("--topics must be positive".into()));
    }
    let t0 = std::time::Instant::now();
    let corpus = load(data)?;
    let (model, notes) = train_lda(&corpus, topics, iters, flags)?;
    let mut out = String::new();
    for note in notes {
        let _ = writeln!(out, "note: {note}");
    }
    for k in 0..model.n_topics() {
        let tops: Vec<String> = model
            .top_products(k, 8)
            .into_iter()
            .map(|(w, p)| {
                format!(
                    "{} ({:.2})",
                    corpus.vocab().name(hlm_corpus::ProductId(w as u16)),
                    p
                )
            })
            .collect();
        let _ = writeln!(out, "topic {k}: {}", tops.join(", "));
    }
    let _ = writeln!(out, "{}", timing_summary(t0));
    Ok(out)
}

/// `hlm similar`.
pub fn similar(data: &str, company: u64, k: usize, whitespace: usize) -> Result<String, CliError> {
    let corpus = load(data)?;
    let query = corpus
        .iter()
        .find(|(_, c)| c.duns == company)
        .map(|(id, _)| id)
        .ok_or_else(|| CliError::Data(format!("no company with duns {company}")))?;

    let ids: Vec<_> = corpus.ids().collect();
    let docs = binary_docs(&corpus, &ids);
    let (model, _) = train_lda(&corpus, 3, 120, &TrainFlags::default())?;
    let reps = lda_representations(&model, &docs);
    let engine = Engine::new(corpus);
    let app = engine
        .sales_app(reps, DistanceMetric::Cosine)
        .map_err(engine_err)?;

    let mut out = String::new();
    let describe = |id: hlm_corpus::CompanyId| -> String {
        let c = app.corpus().company(id);
        format!(
            "{} (duns {}, {}, {} products)",
            c.name,
            c.duns,
            c.industry,
            c.product_count()
        )
    };
    let _ = writeln!(out, "query: {}", describe(query));
    let _ = writeln!(out, "top-{k} similar companies:");
    let similar = app
        .find_similar(query, k, &CompanyFilter::default())
        .map_err(|e| CliError::Engine(e.to_string()))?;
    for s in similar {
        let _ = writeln!(out, "  d={:.4}  {}", s.distance, describe(s.id));
    }
    let recs = app
        .recommend_whitespace(query, k.max(10), &CompanyFilter::default())
        .map_err(|e| CliError::Engine(e.to_string()))?;
    let _ = writeln!(out, "whitespace recommendations:");
    for r in recs.iter().take(whitespace) {
        let _ = writeln!(
            out,
            "  {:<26} score {:.2} ({} similar owners)",
            app.corpus().vocab().name(r.product),
            r.score,
            r.owners_among_similar
        );
    }
    Ok(out)
}

/// `hlm drift`.
pub fn drift(data: &str, reference: Month, recent: Month, months: u32) -> Result<String, CliError> {
    if months == 0 {
        return Err(CliError::Usage("--months must be positive".into()));
    }
    let corpus = load(data)?;
    let engine = Engine::new(corpus);
    let rep = engine.detect_drift(
        TimeWindow::new(reference, months),
        TimeWindow::new(recent, months),
        0.05,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "reference period: {} + {months} months ({} events)",
        reference, rep.reference_events
    );
    let _ = writeln!(
        out,
        "recent period:    {} + {months} months ({} events)",
        recent, rep.recent_events
    );
    let _ = writeln!(
        out,
        "chi-square:       {:.2} (df {})",
        rep.chi_square, rep.degrees_of_freedom
    );
    let _ = writeln!(out, "p-value:          {:.6}", rep.p_value);
    let _ = writeln!(out, "JS divergence:    {:.4} nats", rep.js_divergence);
    let _ = writeln!(
        out,
        "verdict:          {}",
        if rep.drifted {
            "CONCEPT DRIFT detected — retrain the model"
        } else {
            "no significant drift"
        }
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("hlm_cli_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_stats_round_trips() {
        let dir = tmp_dir("stats");
        let msg = generate(120, 7, &dir).expect("generate works");
        assert!(msg.contains("120 companies"));
        let s = stats(&dir).expect("stats works");
        assert!(s.contains("companies:            120"), "{s}");
        assert!(
            s.contains("OS") || s.contains("network_HW"),
            "popular products listed: {s}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topics_prints_k_topics() {
        let dir = tmp_dir("topics");
        generate(150, 9, &dir).unwrap();
        let out = topics(&dir, 3, 60, &TrainFlags::default()).unwrap();
        // 3 topic lines + the trailing elapsed/threads summary.
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("topic 0:"));
        let last = out.lines().last().unwrap();
        assert!(
            last.starts_with("elapsed: ") && last.ends_with("threads)"),
            "{last}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topics_kill_and_resume_via_cli_flags() {
        let dir = tmp_dir("resume");
        generate(150, 9, &dir).unwrap();
        let ck = format!("{dir}/checkpoints");

        // A deterministic "kill" at sweep 20: exit class is engine/training
        // (4) and the message tells the operator how to continue.
        let killed = TrainFlags {
            checkpoint_dir: Some(ck.clone()),
            abort_at: Some(20),
            ..TrainFlags::default()
        };
        let err = topics(&dir, 3, 60, &killed).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("--resume"), "{err}");

        // Resume completes and says where it picked up.
        let resumed = TrainFlags {
            checkpoint_dir: Some(ck),
            resume: true,
            ..TrainFlags::default()
        };
        let out = topics(&dir, 3, 60, &resumed).unwrap();
        assert!(out.contains("resumed from checkpoint at sweep 20"), "{out}");
        assert!(out.contains("topic 0:"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_quarantines_malformed_rows_and_reports_them() {
        let dir = tmp_dir("lenient");
        generate(80, 21, &dir).unwrap();
        let events_path = Path::new(&dir).join("events.csv");
        let mut events = std::fs::read_to_string(&events_path).unwrap();
        events.push_str("999999,OS,2001-05,2001-05,1\n"); // unknown company
        events.push_str("10000,OS,2001-05,2001-05,42\n"); // confidence out of range
        std::fs::write(&events_path, events).unwrap();

        let out = stats(&dir).unwrap();
        assert!(out.contains("companies:            80"), "{out}");
        assert!(
            out.contains("quarantined 2 malformed rows (companies: 0, events: 2)"),
            "{out}"
        );
        assert!(out.contains("confidence"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_map_to_stable_exit_codes() {
        assert_eq!(CliError::Usage("u".into()).exit_code(), 2);
        assert_eq!(CliError::Data("d".into()).exit_code(), 3);
        assert_eq!(CliError::Engine("e".into()).exit_code(), 4);

        // Usage: bad option value.
        let e = topics("ignored", 0, 10, &TrainFlags::default()).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        // Data: unreadable input.
        let e = stats("/no/such/dir").unwrap_err();
        assert_eq!(e.exit_code(), 3);
        // Stderr rendering is a single line even for multi-line messages.
        assert_eq!(CliError::Data("a\nb".into()).to_string(), "a b");
    }

    #[test]
    fn similar_finds_neighbours_and_whitespace() {
        let dir = tmp_dir("similar");
        generate(150, 11, &dir).unwrap();
        // Company duns are 10_000 + index in the generator.
        let out = similar(&dir, 10_005, 5, 3).unwrap();
        assert!(out.contains("top-5 similar companies"), "{out}");
        assert!(out.matches("d=").count() == 5, "{out}");
        assert!(out.contains("whitespace recommendations"));
        let err = similar(&dir, 999, 5, 3).unwrap_err();
        assert!(err.to_string().contains("no company"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_detects_stage_shift_on_generated_data() {
        let dir = tmp_dir("drift");
        generate(400, 13, &dir).unwrap();
        let out = drift(&dir, Month::from_ym(1995, 1), Month::from_ym(2013, 1), 24).unwrap();
        assert!(out.contains("CONCEPT DRIFT"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_data_directory_is_a_clean_error() {
        let e = stats("/no/such/dir").unwrap_err();
        assert!(e.to_string().contains("companies.csv"));
        assert!(generate(0, 1, "/tmp/x").is_err());
    }

    #[test]
    fn run_dispatches_help() {
        let out = crate::run(&crate::Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }
}
