//! Dependency-free argument parsing for the `hlm` tool.

use hlm_corpus::Month;
use hlm_lda::SamplerChoice;
use hlm_serve::RetrainPolicy;

/// Resilience options shared by training subcommands.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrainFlags {
    /// Directory for training checkpoints; enables checkpointing when set.
    pub checkpoint_dir: Option<String>,
    /// Resume from the latest good checkpoint in `checkpoint_dir`.
    pub resume: bool,
    /// Wall-clock training budget in seconds.
    pub max_seconds: Option<u64>,
    /// Deterministically stop before iteration N, as if the process had been
    /// killed there (kill/resume drills in tests and CI).
    pub abort_at: Option<u64>,
}

impl TrainFlags {
    /// True when any resilience option was given (the plain fast path is
    /// used otherwise).
    pub fn is_active(&self) -> bool {
        self != &TrainFlags::default()
    }
}

/// Options for the long-running `hlm serve` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeFlags {
    /// TCP port to bind on 127.0.0.1 (0 picks a free port).
    pub port: u16,
    /// Write the bound port number to this file once listening — how
    /// scripts and tests discover an ephemeral port.
    pub port_file: Option<String>,
    /// Model-worker threads draining the admission queue.
    pub workers: usize,
    /// Admission-queue capacity; requests beyond it are shed with 503.
    pub queue: usize,
    /// Default per-request deadline in milliseconds.
    pub deadline_ms: u64,
    /// Checkpoint directory: warm-start from its latest good checkpoint
    /// when one exists, checkpoint fresh training into it otherwise, and
    /// enable `POST /admin/swap` to hot-reload from it.
    pub checkpoint_dir: Option<String>,
    /// Number of latent topics when training is needed.
    pub topics: usize,
    /// Gibbs sweeps when training is needed.
    pub iters: usize,
}

impl Default for ServeFlags {
    fn default() -> Self {
        ServeFlags {
            port: 0,
            port_file: None,
            workers: 2,
            queue: 256,
            deadline_ms: 250,
            checkpoint_dir: None,
            topics: 3,
            iters: 60,
        }
    }
}

/// Options for the `hlm replay` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayFlags {
    /// Companies in the generated event stream.
    pub companies: usize,
    /// Stream seed.
    pub seed: u64,
    /// Live months replayed (everything earlier is warmup history).
    pub months: u32,
    /// Retraining policy: `never`, `periodic:N`, or `drift`.
    pub policy: RetrainPolicy,
    /// Latent topics per fit.
    pub topics: usize,
    /// Gibbs sweeps per fit.
    pub iters: usize,
    /// Drift-test significance level.
    pub significance: f64,
    /// Reference window length in months.
    pub reference_months: u32,
    /// Recent window length in months.
    pub recent_months: u32,
    /// Recommendations per company when scoring hit rate.
    pub top_n: usize,
    /// Launch a new product category this month (grows the vocabulary).
    pub launch: Option<Month>,
    /// Inject a product-mix shift from this month (planted drift).
    pub shift: Option<Month>,
    /// Checkpoint root (`fit-NNN/` per fit); enables resume.
    pub checkpoint_dir: Option<String>,
    /// Fast-forward completed fits and continue an interrupted one.
    pub resume: bool,
    /// Kill fit `abort_fit` at this sweep (resume drill).
    pub abort_at: Option<u64>,
    /// Which fit `--abort-at` kills (0 = initial fit, 1 = first retrain).
    pub abort_fit: usize,
    /// Write the precision-over-time curve to this CSV path.
    pub out: Option<String>,
}

impl Default for ReplayFlags {
    fn default() -> Self {
        ReplayFlags {
            companies: 300,
            seed: 42,
            months: 60,
            policy: RetrainPolicy::DriftTriggered,
            topics: 3,
            iters: 60,
            significance: 0.05,
            reference_months: 12,
            recent_months: 6,
            top_n: 5,
            launch: None,
            shift: None,
            checkpoint_dir: None,
            resume: false,
            abort_at: None,
            abort_fit: 0,
            out: None,
        }
    }
}

/// Which LDA estimator `hlm topics` trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopicsEstimator {
    /// Collapsed Gibbs sampling (the default; `--iters` counts sweeps).
    #[default]
    Gibbs,
    /// Online variational Bayes — sharded (manifest) data only; `--iters`
    /// counts epochs (one epoch = one pass over the shards).
    OnlineVb,
}

/// A parsed subcommand with its options.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Generate a synthetic corpus and write CSVs (or a sharded binary
    /// store) into `out`.
    Generate {
        /// Number of companies.
        companies: usize,
        /// Generator seed.
        seed: u64,
        /// Output directory.
        out: String,
        /// When set, stream-generate an out-of-core [`ShardStore`] of this
        /// many shards instead of in-memory CSVs.
        ///
        /// [`ShardStore`]: hlm_corpus::ShardStore
        shards: Option<usize>,
    },
    /// Print a corpus summary.
    Stats {
        /// Directory holding `companies.csv` + `events.csv`, or a sharded
        /// store's `manifest.json`.
        data: String,
    },
    /// Train LDA and print topics.
    Topics {
        /// Data directory.
        data: String,
        /// Number of latent topics.
        topics: usize,
        /// Gibbs sweeps (or online-VB epochs).
        iters: usize,
        /// Estimator: collapsed Gibbs or (sharded data only) online VB.
        estimator: TopicsEstimator,
        /// Gibbs token-sampler kernel (`Auto` picks by topic count; a fixed
        /// choice is part of the sampling schedule). Ignored by online VB.
        sampler: SamplerChoice,
        /// Checkpoint/resume/watchdog options.
        flags: TrainFlags,
    },
    /// Similar companies + whitespace for one company.
    Similar {
        /// Data directory.
        data: String,
        /// D-U-N-S-like id of the query company.
        company: u64,
        /// Number of neighbours.
        k: usize,
        /// Number of whitespace products to print.
        whitespace: usize,
    },
    /// Serve recommendations over HTTP until SIGTERM (then drain).
    Serve {
        /// Data directory.
        data: String,
        /// Server options.
        flags: ServeFlags,
    },
    /// Replay a live event stream month by month against a serving model,
    /// retraining per policy and hot-swapping through the server.
    Replay {
        /// Replay options.
        flags: ReplayFlags,
    },
    /// Concept-drift check between two periods.
    Drift {
        /// Data directory.
        data: String,
        /// Start of the reference period.
        reference: Month,
        /// Start of the recent period.
        recent: Month,
        /// Length of each period in months.
        months: u32,
    },
}

impl Command {
    /// The subcommand's name, e.g. for the root metrics span `cli.<name>`.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Help => "help",
            Command::Generate { .. } => "generate",
            Command::Stats { .. } => "stats",
            Command::Topics { .. } => "topics",
            Command::Similar { .. } => "similar",
            Command::Serve { .. } => "serve",
            Command::Replay { .. } => "replay",
            Command::Drift { .. } => "drift",
        }
    }
}

/// Output format for the `--metrics` snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// JSON-lines event log (one record per span/counter/histogram/trace).
    #[default]
    Jsonl,
    /// Prometheus text exposition format.
    Prom,
}

/// A fully parsed invocation: the subcommand plus the options that apply to
/// every subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand with its own options.
    pub command: Command,
    /// Worker-thread override (`--threads N`); `None` leaves the pool at the
    /// `HLM_THREADS` / detected-core default. Results are identical at any
    /// setting — the runtime is deterministic — so this only trades
    /// wall-clock for cores.
    pub threads: Option<usize>,
    /// Parallelism-threshold override in abstract work units
    /// (`--par-threshold UNITS`); `None` leaves the calibrated cost model
    /// (or `HLM_PAR_THRESHOLD`) in charge of the serial-vs-pool choice.
    /// `0` forces the pool on for every budgeted call; results are
    /// identical at any setting.
    pub par_threshold: Option<u64>,
    /// Write an observability snapshot to this path after the command runs
    /// (`--metrics PATH`). Enables the process-wide recorder; results are
    /// bit-identical with or without it — metrics are read-only observers.
    pub metrics: Option<String>,
    /// Snapshot format (`--metrics-format jsonl|prom`).
    pub metrics_format: MetricsFormat,
}

/// Result of parsing: the command or a usage error.
pub type ParsedArgs = Result<Command, String>;

fn get_opt<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn parse_num<T: std::str::FromStr>(
    pairs: &[(String, String)],
    key: &str,
    default: T,
) -> Result<T, String> {
    match get_opt(pairs, key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value {v:?} for --{key}")),
    }
}

fn require<'a>(pairs: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    get_opt(pairs, key).ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_opt_num<T: std::str::FromStr>(
    pairs: &[(String, String)],
    key: &str,
) -> Result<Option<T>, String> {
    match get_opt(pairs, key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value {v:?} for --{key}")),
    }
}

fn parse_month_opt(pairs: &[(String, String)], key: &str) -> Result<Month, String> {
    let v = require(pairs, key)?;
    let (y, m) = v
        .split_once('-')
        .ok_or_else(|| format!("--{key} must be YYYY-MM, got {v:?}"))?;
    let year: i32 = y
        .parse()
        .map_err(|_| format!("bad year in --{key} {v:?}"))?;
    let month: u32 = m
        .parse()
        .map_err(|_| format!("bad month in --{key} {v:?}"))?;
    if !(1..=12).contains(&month) {
        return Err(format!("month out of range in --{key} {v:?}"));
    }
    Ok(Month::from_ym(year, month))
}

fn parse_month_optional(pairs: &[(String, String)], key: &str) -> Result<Option<Month>, String> {
    match get_opt(pairs, key) {
        None => Ok(None),
        Some(_) => parse_month_opt(pairs, key).map(Some),
    }
}

/// Parses command-line arguments (excluding the program name) into just the
/// subcommand, discarding global options. Prefer [`parse_invocation`]; this
/// stays for callers that only dispatch on the command.
pub fn parse_args(argv: &[String]) -> ParsedArgs {
    parse_invocation(argv).map(|inv| inv.command)
}

/// Parses command-line arguments (excluding the program name).
///
/// Options are `--key value` pairs following the subcommand; unknown keys
/// are rejected so typos surface immediately. `--threads N` is accepted by
/// every subcommand and returned on the [`Invocation`] rather than the
/// command.
pub fn parse_invocation(argv: &[String]) -> Result<Invocation, String> {
    let Some(sub) = argv.first() else {
        return Ok(Invocation {
            command: Command::Help,
            threads: None,
            par_threshold: None,
            metrics: None,
            metrics_format: MetricsFormat::default(),
        });
    };
    // Collect --key value pairs; a few options are bare boolean flags.
    const BOOL_FLAGS: &[&str] = &["resume"];
    let rest = &argv[1..];
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let k = &rest[i];
        let Some(key) = k.strip_prefix("--") else {
            return Err(format!("expected an option starting with --, got {k:?}"));
        };
        if BOOL_FLAGS.contains(&key) {
            pairs.push((key.to_string(), "true".to_string()));
            i += 1;
            continue;
        }
        let Some(v) = rest.get(i + 1) else {
            return Err(format!("option --{key} is missing a value"));
        };
        pairs.push((key.to_string(), v.clone()));
        i += 2;
    }
    // `--threads`, `--metrics` and `--metrics-format` are global: pull them
    // out before the per-command allow-lists.
    let threads = match parse_opt_num::<usize>(&pairs, "threads")? {
        Some(0) => return Err("--threads must be positive".to_string()),
        t => t,
    };
    let par_threshold = parse_opt_num::<u64>(&pairs, "par-threshold")?;
    let metrics = get_opt(&pairs, "metrics").map(String::from);
    let metrics_format = match get_opt(&pairs, "metrics-format") {
        None => MetricsFormat::default(),
        Some("jsonl") => MetricsFormat::Jsonl,
        Some("prom") => MetricsFormat::Prom,
        Some(other) => {
            return Err(format!(
                "invalid value {other:?} for --metrics-format (expected jsonl or prom)"
            ))
        }
    };
    if metrics.is_none() && get_opt(&pairs, "metrics-format").is_some() {
        return Err("--metrics-format requires --metrics".to_string());
    }
    pairs.retain(|(k, _)| {
        k != "threads" && k != "par-threshold" && k != "metrics" && k != "metrics-format"
    });
    let allow = |allowed: &[&str]| -> Result<(), String> {
        for (k, _) in &pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown option --{k} for `{sub}`"));
            }
        }
        Ok(())
    };

    let command = match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            allow(&["companies", "seed", "out", "shards"])?;
            let shards = match parse_opt_num::<usize>(&pairs, "shards")? {
                Some(0) => return Err("--shards must be positive".to_string()),
                s => s,
            };
            Ok(Command::Generate {
                companies: parse_num(&pairs, "companies", 2_000usize)?,
                seed: parse_num(&pairs, "seed", 42u64)?,
                out: require(&pairs, "out")?.to_string(),
                shards,
            })
        }
        "stats" => {
            allow(&["data"])?;
            Ok(Command::Stats {
                data: require(&pairs, "data")?.to_string(),
            })
        }
        "topics" => {
            allow(&[
                "data",
                "topics",
                "iters",
                "estimator",
                "sampler",
                "checkpoint-dir",
                "resume",
                "max-seconds",
                "abort-at",
            ])?;
            let estimator = match get_opt(&pairs, "estimator") {
                None | Some("gibbs") => TopicsEstimator::Gibbs,
                Some("online-vb") => TopicsEstimator::OnlineVb,
                Some(other) => {
                    return Err(format!(
                        "invalid value {other:?} for --estimator (expected gibbs or online-vb)"
                    ))
                }
            };
            let sampler = match get_opt(&pairs, "sampler") {
                None => SamplerChoice::Auto,
                Some(s) => s
                    .parse::<SamplerChoice>()
                    .map_err(|e| format!("invalid value for --sampler: {e}"))?,
            };
            let flags = TrainFlags {
                checkpoint_dir: get_opt(&pairs, "checkpoint-dir").map(String::from),
                resume: get_opt(&pairs, "resume").is_some(),
                max_seconds: parse_opt_num(&pairs, "max-seconds")?,
                abort_at: parse_opt_num(&pairs, "abort-at")?,
            };
            if flags.resume && flags.checkpoint_dir.is_none() {
                return Err("--resume requires --checkpoint-dir".to_string());
            }
            Ok(Command::Topics {
                data: require(&pairs, "data")?.to_string(),
                topics: parse_num(&pairs, "topics", 3usize)?,
                iters: parse_num(&pairs, "iters", 150usize)?,
                estimator,
                sampler,
                flags,
            })
        }
        "similar" => {
            allow(&["data", "company", "k", "whitespace"])?;
            Ok(Command::Similar {
                data: require(&pairs, "data")?.to_string(),
                company: require(&pairs, "company")?
                    .parse()
                    .map_err(|_| "invalid value for --company".to_string())?,
                k: parse_num(&pairs, "k", 10usize)?,
                whitespace: parse_num(&pairs, "whitespace", 5usize)?,
            })
        }
        "serve" => {
            allow(&[
                "data",
                "port",
                "port-file",
                "workers",
                "queue",
                "deadline-ms",
                "checkpoint-dir",
                "topics",
                "iters",
            ])?;
            let defaults = ServeFlags::default();
            let workers = parse_num(&pairs, "workers", defaults.workers)?;
            if workers == 0 {
                return Err("--workers must be positive".to_string());
            }
            let queue = parse_num(&pairs, "queue", defaults.queue)?;
            if queue == 0 {
                return Err("--queue must be positive".to_string());
            }
            let deadline_ms = parse_num(&pairs, "deadline-ms", defaults.deadline_ms)?;
            if deadline_ms == 0 {
                return Err("--deadline-ms must be positive".to_string());
            }
            Ok(Command::Serve {
                data: require(&pairs, "data")?.to_string(),
                flags: ServeFlags {
                    port: parse_num(&pairs, "port", defaults.port)?,
                    port_file: get_opt(&pairs, "port-file").map(String::from),
                    workers,
                    queue,
                    deadline_ms,
                    checkpoint_dir: get_opt(&pairs, "checkpoint-dir").map(String::from),
                    topics: parse_num(&pairs, "topics", defaults.topics)?,
                    iters: parse_num(&pairs, "iters", defaults.iters)?,
                },
            })
        }
        "replay" => {
            allow(&[
                "companies",
                "seed",
                "months",
                "policy",
                "topics",
                "iters",
                "significance",
                "reference-months",
                "recent-months",
                "top-n",
                "launch",
                "shift",
                "checkpoint-dir",
                "resume",
                "abort-at",
                "abort-fit",
                "out",
            ])?;
            let defaults = ReplayFlags::default();
            let policy = match get_opt(&pairs, "policy") {
                None => defaults.policy,
                Some(v) => v.parse::<RetrainPolicy>()?,
            };
            let flags = ReplayFlags {
                companies: parse_num(&pairs, "companies", defaults.companies)?,
                seed: parse_num(&pairs, "seed", defaults.seed)?,
                months: parse_num(&pairs, "months", defaults.months)?,
                policy,
                topics: parse_num(&pairs, "topics", defaults.topics)?,
                iters: parse_num(&pairs, "iters", defaults.iters)?,
                significance: parse_num(&pairs, "significance", defaults.significance)?,
                reference_months: parse_num(&pairs, "reference-months", defaults.reference_months)?,
                recent_months: parse_num(&pairs, "recent-months", defaults.recent_months)?,
                top_n: parse_num(&pairs, "top-n", defaults.top_n)?,
                launch: parse_month_optional(&pairs, "launch")?,
                shift: parse_month_optional(&pairs, "shift")?,
                checkpoint_dir: get_opt(&pairs, "checkpoint-dir").map(String::from),
                resume: get_opt(&pairs, "resume").is_some(),
                abort_at: parse_opt_num(&pairs, "abort-at")?,
                abort_fit: parse_num(&pairs, "abort-fit", defaults.abort_fit)?,
                out: get_opt(&pairs, "out").map(String::from),
            };
            if flags.topics == 0 || flags.iters == 0 {
                return Err("--topics and --iters must be positive".to_string());
            }
            if flags.months == 0 {
                return Err("--months must be positive".to_string());
            }
            if flags.resume && flags.checkpoint_dir.is_none() {
                return Err("--resume requires --checkpoint-dir".to_string());
            }
            if flags.abort_at.is_some() && flags.checkpoint_dir.is_none() {
                return Err("--abort-at requires --checkpoint-dir".to_string());
            }
            Ok(Command::Replay { flags })
        }
        "drift" => {
            allow(&["data", "reference", "recent", "months"])?;
            Ok(Command::Drift {
                data: require(&pairs, "data")?.to_string(),
                reference: parse_month_opt(&pairs, "reference")?,
                recent: parse_month_opt(&pairs, "recent")?,
                months: parse_num(&pairs, "months", 24u32)?,
            })
        }
        other => Err(format!("unknown subcommand {other:?}; run `hlm help`")),
    }?;
    Ok(Invocation {
        command,
        threads,
        par_threshold,
        metrics,
        metrics_format,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn generate_with_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["generate", "--out", "/tmp/x"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                companies: 2_000,
                seed: 42,
                out: "/tmp/x".into(),
                shards: None
            }
        );
        let cmd = parse_args(&argv(&[
            "generate",
            "--companies",
            "500",
            "--seed",
            "7",
            "--out",
            "d",
            "--shards",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                companies: 500,
                seed: 7,
                out: "d".into(),
                shards: Some(4)
            }
        );
        let e = parse_args(&argv(&["generate", "--out", "d", "--shards", "0"])).unwrap_err();
        assert!(e.contains("--shards"), "{e}");
    }

    #[test]
    fn missing_required_option_is_an_error() {
        let e = parse_args(&argv(&["generate"])).unwrap_err();
        assert!(e.contains("--out"), "{e}");
        let e = parse_args(&argv(&["stats"])).unwrap_err();
        assert!(e.contains("--data"));
    }

    #[test]
    fn unknown_options_and_subcommands_rejected() {
        let e = parse_args(&argv(&["stats", "--data", "d", "--bogus", "1"])).unwrap_err();
        assert!(e.contains("--bogus"));
        let e = parse_args(&argv(&["frobnicate"])).unwrap_err();
        assert!(e.contains("unknown subcommand"));
        let e = parse_args(&argv(&["stats", "data"])).unwrap_err();
        assert!(e.contains("starting with --"));
        let e = parse_args(&argv(&["stats", "--data"])).unwrap_err();
        assert!(e.contains("missing a value"));
    }

    #[test]
    fn drift_parses_months() {
        let cmd = parse_args(&argv(&[
            "drift",
            "--data",
            "d",
            "--reference",
            "2010-03",
            "--recent",
            "2014-01",
        ]))
        .unwrap();
        match cmd {
            Command::Drift {
                reference,
                recent,
                months,
                ..
            } => {
                assert_eq!(reference, Month::from_ym(2010, 3));
                assert_eq!(recent, Month::from_ym(2014, 1));
                assert_eq!(months, 24);
            }
            other => panic!("wrong command {other:?}"),
        }
        let e = parse_args(&argv(&[
            "drift",
            "--data",
            "d",
            "--reference",
            "201003",
            "--recent",
            "2014-01",
        ]))
        .unwrap_err();
        assert!(e.contains("YYYY-MM"));
    }

    #[test]
    fn topics_estimator_parses_and_rejects_unknown() {
        let cmd = parse_args(&argv(&["topics", "--data", "d"])).unwrap();
        match cmd {
            Command::Topics { estimator, .. } => assert_eq!(estimator, TopicsEstimator::Gibbs),
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&argv(&[
            "topics",
            "--data",
            "d",
            "--estimator",
            "online-vb",
        ]))
        .unwrap();
        match cmd {
            Command::Topics { estimator, .. } => assert_eq!(estimator, TopicsEstimator::OnlineVb),
            other => panic!("wrong command {other:?}"),
        }
        let e = parse_args(&argv(&["topics", "--data", "d", "--estimator", "em"])).unwrap_err();
        assert!(e.contains("gibbs or online-vb"), "{e}");
    }

    #[test]
    fn topics_resilience_flags_parse() {
        let cmd = parse_args(&argv(&["topics", "--data", "d"])).unwrap();
        match cmd {
            Command::Topics { flags, .. } => {
                assert_eq!(flags, TrainFlags::default());
                assert!(!flags.is_active());
            }
            other => panic!("wrong command {other:?}"),
        }

        let cmd = parse_args(&argv(&[
            "topics",
            "--data",
            "d",
            "--checkpoint-dir",
            "/tmp/ck",
            "--resume",
            "--max-seconds",
            "30",
            "--abort-at",
            "12",
        ]))
        .unwrap();
        match cmd {
            Command::Topics { flags, .. } => {
                assert_eq!(flags.checkpoint_dir.as_deref(), Some("/tmp/ck"));
                assert!(flags.resume);
                assert_eq!(flags.max_seconds, Some(30));
                assert_eq!(flags.abort_at, Some(12));
                assert!(flags.is_active());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn resume_requires_checkpoint_dir() {
        let e = parse_args(&argv(&["topics", "--data", "d", "--resume"])).unwrap_err();
        assert!(e.contains("--checkpoint-dir"), "{e}");
        // --resume is a bare flag: the next option must still parse.
        let cmd = parse_args(&argv(&[
            "topics",
            "--data",
            "d",
            "--resume",
            "--checkpoint-dir",
            "ck",
        ]))
        .unwrap();
        match cmd {
            Command::Topics { flags, .. } => assert!(flags.resume),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn threads_is_accepted_by_every_subcommand() {
        let inv = parse_invocation(&argv(&["stats", "--data", "d", "--threads", "4"])).unwrap();
        assert_eq!(inv.threads, Some(4));
        assert_eq!(inv.command, Command::Stats { data: "d".into() });
        let inv = parse_invocation(&argv(&["topics", "--data", "d", "--threads", "2"])).unwrap();
        assert_eq!(inv.threads, Some(2));
        let inv = parse_invocation(&argv(&["generate", "--out", "o"])).unwrap();
        assert_eq!(inv.threads, None);
        let e = parse_invocation(&argv(&["stats", "--data", "d", "--threads", "0"])).unwrap_err();
        assert!(e.contains("positive"), "{e}");
        let e = parse_invocation(&argv(&["stats", "--data", "d", "--threads", "x"])).unwrap_err();
        assert!(e.contains("--threads"), "{e}");
    }

    #[test]
    fn par_threshold_is_global_and_zero_is_allowed() {
        let inv =
            parse_invocation(&argv(&["topics", "--data", "d", "--par-threshold", "0"])).unwrap();
        assert_eq!(inv.par_threshold, Some(0));
        let inv = parse_invocation(&argv(&["stats", "--data", "d"])).unwrap();
        assert_eq!(inv.par_threshold, None);
        let e =
            parse_invocation(&argv(&["stats", "--data", "d", "--par-threshold", "x"])).unwrap_err();
        assert!(e.contains("--par-threshold"), "{e}");
    }

    #[test]
    fn metrics_flags_are_global_and_validated() {
        let inv =
            parse_invocation(&argv(&["stats", "--data", "d", "--metrics", "m.jsonl"])).unwrap();
        assert_eq!(inv.metrics.as_deref(), Some("m.jsonl"));
        assert_eq!(inv.metrics_format, MetricsFormat::Jsonl);
        let inv = parse_invocation(&argv(&[
            "topics",
            "--data",
            "d",
            "--metrics",
            "m.prom",
            "--metrics-format",
            "prom",
        ]))
        .unwrap();
        assert_eq!(inv.metrics.as_deref(), Some("m.prom"));
        assert_eq!(inv.metrics_format, MetricsFormat::Prom);
        let inv = parse_invocation(&argv(&["generate", "--out", "o"])).unwrap();
        assert_eq!(inv.metrics, None);
        let e = parse_invocation(&argv(&[
            "stats",
            "--data",
            "d",
            "--metrics",
            "m",
            "--metrics-format",
            "xml",
        ]))
        .unwrap_err();
        assert!(e.contains("jsonl or prom"), "{e}");
        let e = parse_invocation(&argv(&["stats", "--data", "d", "--metrics-format", "prom"]))
            .unwrap_err();
        assert!(e.contains("requires --metrics"), "{e}");
    }

    #[test]
    fn serve_parses_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["serve", "--data", "d"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                data: "d".into(),
                flags: ServeFlags::default()
            }
        );
        let cmd = parse_args(&argv(&[
            "serve",
            "--data",
            "d",
            "--port",
            "8080",
            "--port-file",
            "/tmp/p",
            "--workers",
            "4",
            "--queue",
            "64",
            "--deadline-ms",
            "150",
            "--checkpoint-dir",
            "ck",
            "--topics",
            "5",
            "--iters",
            "30",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                data: "d".into(),
                flags: ServeFlags {
                    port: 8080,
                    port_file: Some("/tmp/p".into()),
                    workers: 4,
                    queue: 64,
                    deadline_ms: 150,
                    checkpoint_dir: Some("ck".into()),
                    topics: 5,
                    iters: 30,
                }
            }
        );
    }

    #[test]
    fn serve_rejects_bad_values() {
        assert!(parse_args(&argv(&["serve"]))
            .unwrap_err()
            .contains("--data"));
        let e = parse_args(&argv(&["serve", "--data", "d", "--workers", "0"])).unwrap_err();
        assert!(e.contains("--workers"), "{e}");
        let e = parse_args(&argv(&["serve", "--data", "d", "--queue", "0"])).unwrap_err();
        assert!(e.contains("--queue"), "{e}");
        let e = parse_args(&argv(&["serve", "--data", "d", "--deadline-ms", "0"])).unwrap_err();
        assert!(e.contains("--deadline-ms"), "{e}");
        let e = parse_args(&argv(&["serve", "--data", "d", "--port", "99999"])).unwrap_err();
        assert!(e.contains("--port"), "{e}");
        let e = parse_args(&argv(&["serve", "--data", "d", "--resume"])).unwrap_err();
        assert!(e.contains("--resume"), "{e}");
    }

    #[test]
    fn similar_requires_company() {
        let cmd = parse_args(&argv(&["similar", "--data", "d", "--company", "10042"])).unwrap();
        assert_eq!(
            cmd,
            Command::Similar {
                data: "d".into(),
                company: 10042,
                k: 10,
                whitespace: 5
            }
        );
        assert!(parse_args(&argv(&["similar", "--data", "d"])).is_err());
    }

    #[test]
    fn replay_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["replay"])).unwrap();
        assert_eq!(
            cmd,
            Command::Replay {
                flags: ReplayFlags::default()
            }
        );
        let cmd = parse_args(&argv(&[
            "replay",
            "--companies",
            "120",
            "--seed",
            "7",
            "--months",
            "36",
            "--policy",
            "periodic:6",
            "--launch",
            "2012-06",
            "--shift",
            "2013-01",
            "--checkpoint-dir",
            "/tmp/ck",
            "--resume",
            "--abort-at",
            "5",
            "--abort-fit",
            "1",
            "--out",
            "/tmp/curve.csv",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Replay {
                flags: ReplayFlags {
                    companies: 120,
                    seed: 7,
                    months: 36,
                    policy: RetrainPolicy::Periodic(6),
                    launch: Some(Month::from_ym(2012, 6)),
                    shift: Some(Month::from_ym(2013, 1)),
                    checkpoint_dir: Some("/tmp/ck".into()),
                    resume: true,
                    abort_at: Some(5),
                    abort_fit: 1,
                    out: Some("/tmp/curve.csv".into()),
                    ..ReplayFlags::default()
                }
            }
        );
    }

    #[test]
    fn replay_rejects_bad_invocations() {
        let e = parse_args(&argv(&["replay", "--policy", "sometimes"])).unwrap_err();
        assert!(e.contains("policy"), "{e}");
        let e = parse_args(&argv(&["replay", "--policy", "periodic:0"])).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        let e = parse_args(&argv(&["replay", "--resume"])).unwrap_err();
        assert!(e.contains("--checkpoint-dir"), "{e}");
        let e = parse_args(&argv(&["replay", "--abort-at", "3"])).unwrap_err();
        assert!(e.contains("--checkpoint-dir"), "{e}");
        let e = parse_args(&argv(&["replay", "--launch", "2012-13"])).unwrap_err();
        assert!(e.contains("month out of range"), "{e}");
        let e = parse_args(&argv(&["replay", "--months", "0"])).unwrap_err();
        assert!(e.contains("--months"), "{e}");
        let e = parse_args(&argv(&["replay", "--data", "d"])).unwrap_err();
        assert!(e.contains("unknown option"), "{e}");
    }
}
