//! Dependency-free argument parsing for the `hlm` tool.

use hlm_corpus::Month;

/// A parsed subcommand with its options.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Generate a synthetic corpus and write CSVs into `out`.
    Generate {
        /// Number of companies.
        companies: usize,
        /// Generator seed.
        seed: u64,
        /// Output directory.
        out: String,
    },
    /// Print a corpus summary.
    Stats {
        /// Directory holding `companies.csv` and `events.csv`.
        data: String,
    },
    /// Train LDA and print topics.
    Topics {
        /// Data directory.
        data: String,
        /// Number of latent topics.
        topics: usize,
        /// Gibbs sweeps.
        iters: usize,
    },
    /// Similar companies + whitespace for one company.
    Similar {
        /// Data directory.
        data: String,
        /// D-U-N-S-like id of the query company.
        company: u64,
        /// Number of neighbours.
        k: usize,
        /// Number of whitespace products to print.
        whitespace: usize,
    },
    /// Concept-drift check between two periods.
    Drift {
        /// Data directory.
        data: String,
        /// Start of the reference period.
        reference: Month,
        /// Start of the recent period.
        recent: Month,
        /// Length of each period in months.
        months: u32,
    },
}

/// Result of parsing: the command or a usage error.
pub type ParsedArgs = Result<Command, String>;

fn get_opt<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn parse_num<T: std::str::FromStr>(
    pairs: &[(String, String)],
    key: &str,
    default: T,
) -> Result<T, String> {
    match get_opt(pairs, key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value {v:?} for --{key}")),
    }
}

fn require<'a>(pairs: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    get_opt(pairs, key).ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_month_opt(pairs: &[(String, String)], key: &str) -> Result<Month, String> {
    let v = require(pairs, key)?;
    let (y, m) = v
        .split_once('-')
        .ok_or_else(|| format!("--{key} must be YYYY-MM, got {v:?}"))?;
    let year: i32 = y
        .parse()
        .map_err(|_| format!("bad year in --{key} {v:?}"))?;
    let month: u32 = m
        .parse()
        .map_err(|_| format!("bad month in --{key} {v:?}"))?;
    if !(1..=12).contains(&month) {
        return Err(format!("month out of range in --{key} {v:?}"));
    }
    Ok(Month::from_ym(year, month))
}

/// Parses command-line arguments (excluding the program name).
///
/// Options are `--key value` pairs following the subcommand; unknown keys
/// are rejected so typos surface immediately.
pub fn parse_args(argv: &[String]) -> ParsedArgs {
    let Some(sub) = argv.first() else {
        return Ok(Command::Help);
    };
    // Collect --key value pairs.
    let rest = &argv[1..];
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let k = &rest[i];
        let Some(key) = k.strip_prefix("--") else {
            return Err(format!("expected an option starting with --, got {k:?}"));
        };
        let Some(v) = rest.get(i + 1) else {
            return Err(format!("option --{key} is missing a value"));
        };
        pairs.push((key.to_string(), v.clone()));
        i += 2;
    }
    let allow = |allowed: &[&str]| -> Result<(), String> {
        for (k, _) in &pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown option --{k} for `{sub}`"));
            }
        }
        Ok(())
    };

    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            allow(&["companies", "seed", "out"])?;
            Ok(Command::Generate {
                companies: parse_num(&pairs, "companies", 2_000usize)?,
                seed: parse_num(&pairs, "seed", 42u64)?,
                out: require(&pairs, "out")?.to_string(),
            })
        }
        "stats" => {
            allow(&["data"])?;
            Ok(Command::Stats {
                data: require(&pairs, "data")?.to_string(),
            })
        }
        "topics" => {
            allow(&["data", "topics", "iters"])?;
            Ok(Command::Topics {
                data: require(&pairs, "data")?.to_string(),
                topics: parse_num(&pairs, "topics", 3usize)?,
                iters: parse_num(&pairs, "iters", 150usize)?,
            })
        }
        "similar" => {
            allow(&["data", "company", "k", "whitespace"])?;
            Ok(Command::Similar {
                data: require(&pairs, "data")?.to_string(),
                company: require(&pairs, "company")?
                    .parse()
                    .map_err(|_| "invalid value for --company".to_string())?,
                k: parse_num(&pairs, "k", 10usize)?,
                whitespace: parse_num(&pairs, "whitespace", 5usize)?,
            })
        }
        "drift" => {
            allow(&["data", "reference", "recent", "months"])?;
            Ok(Command::Drift {
                data: require(&pairs, "data")?.to_string(),
                reference: parse_month_opt(&pairs, "reference")?,
                recent: parse_month_opt(&pairs, "recent")?,
                months: parse_num(&pairs, "months", 24u32)?,
            })
        }
        other => Err(format!("unknown subcommand {other:?}; run `hlm help`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn generate_with_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["generate", "--out", "/tmp/x"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                companies: 2_000,
                seed: 42,
                out: "/tmp/x".into()
            }
        );
        let cmd = parse_args(&argv(&[
            "generate",
            "--companies",
            "500",
            "--seed",
            "7",
            "--out",
            "d",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                companies: 500,
                seed: 7,
                out: "d".into()
            }
        );
    }

    #[test]
    fn missing_required_option_is_an_error() {
        let e = parse_args(&argv(&["generate"])).unwrap_err();
        assert!(e.contains("--out"), "{e}");
        let e = parse_args(&argv(&["stats"])).unwrap_err();
        assert!(e.contains("--data"));
    }

    #[test]
    fn unknown_options_and_subcommands_rejected() {
        let e = parse_args(&argv(&["stats", "--data", "d", "--bogus", "1"])).unwrap_err();
        assert!(e.contains("--bogus"));
        let e = parse_args(&argv(&["frobnicate"])).unwrap_err();
        assert!(e.contains("unknown subcommand"));
        let e = parse_args(&argv(&["stats", "data"])).unwrap_err();
        assert!(e.contains("starting with --"));
        let e = parse_args(&argv(&["stats", "--data"])).unwrap_err();
        assert!(e.contains("missing a value"));
    }

    #[test]
    fn drift_parses_months() {
        let cmd = parse_args(&argv(&[
            "drift",
            "--data",
            "d",
            "--reference",
            "2010-03",
            "--recent",
            "2014-01",
        ]))
        .unwrap();
        match cmd {
            Command::Drift {
                reference,
                recent,
                months,
                ..
            } => {
                assert_eq!(reference, Month::from_ym(2010, 3));
                assert_eq!(recent, Month::from_ym(2014, 1));
                assert_eq!(months, 24);
            }
            other => panic!("wrong command {other:?}"),
        }
        let e = parse_args(&argv(&[
            "drift",
            "--data",
            "d",
            "--reference",
            "201003",
            "--recent",
            "2014-01",
        ]))
        .unwrap_err();
        assert!(e.contains("YYYY-MM"));
    }

    #[test]
    fn similar_requires_company() {
        let cmd = parse_args(&argv(&["similar", "--data", "d", "--company", "10042"])).unwrap();
        assert_eq!(
            cmd,
            Command::Similar {
                data: "d".into(),
                company: 10042,
                k: 10,
                whitespace: 5
            }
        );
        assert!(parse_args(&argv(&["similar", "--data", "d"])).is_err());
    }
}
