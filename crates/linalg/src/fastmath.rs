//! Opt-in reduced-precision kernels behind the `fast-math` cargo feature.
//!
//! With the feature **off** (the default) every function here forwards to the
//! exact `f64` implementation in [`crate::vector`] / [`crate::matrix`], so
//! enabling a dependent crate without the feature changes nothing — the
//! workspace's bit-identity contracts (DESIGN.md §3.3) hold untouched.
//!
//! With `fast-math` **on**, `dot`, `axpy` and `matmul_nt` accumulate in `f32`
//! with an 8-wide manual unroll. The lane structure is fixed by the input
//! length alone, so results are still deterministic run-to-run and
//! thread-count-independent — they just differ from the f64 path by rounding.
//! Callers that feed results back into checkpointed state (Gibbs counts, LSTM
//! parameters) must therefore treat the feature as a *different model
//! configuration*, not a drop-in: checkpoints written with the feature on are
//! only resumable with it on. The LDA sampler and the LSTM minibatch path opt
//! in through their own forwarded `fast-math` features.

use crate::matrix::Matrix;

/// True when this build was compiled with the `fast-math` feature, so callers
/// (benches, metrics) can label reduced-precision results honestly.
pub const FAST_MATH_ENABLED: bool = cfg!(feature = "fast-math");

/// Dot product; f32 accumulation when `fast-math` is enabled.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(not(feature = "fast-math"))]
    {
        crate::vector::dot(a, b)
    }
    #[cfg(feature = "fast-math")]
    {
        assert_eq!(
            a.len(),
            b.len(),
            "dot length mismatch: {} vs {}",
            a.len(),
            b.len()
        );
        // Eight independent f32 accumulators: twice the lanes of the exact
        // path because f32 FMAs retire at double the SIMD width.
        let mut ca = a.chunks_exact(8);
        let mut cb = b.chunks_exact(8);
        let mut s = [0.0f32; 8];
        for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
            for l in 0..8 {
                s[l] += xa[l] as f32 * xb[l] as f32;
            }
        }
        let mut tail = 0.0f32;
        for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
            tail += x as f32 * y as f32;
        }
        let lo = (s[0] + s[1]) + (s[2] + s[3]);
        let hi = (s[4] + s[5]) + (s[6] + s[7]);
        ((lo + hi) + tail) as f64
    }
}

/// In-place `a += alpha * b`; f32 products when `fast-math` is enabled.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
    #[cfg(not(feature = "fast-math"))]
    {
        crate::vector::axpy(a, alpha, b)
    }
    #[cfg(feature = "fast-math")]
    {
        assert_eq!(a.len(), b.len(), "axpy length mismatch");
        let alpha32 = alpha as f32;
        let mut ca = a.chunks_exact_mut(8);
        let mut cb = b.chunks_exact(8);
        for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
            for l in 0..8 {
                xa[l] += (alpha32 * xb[l] as f32) as f64;
            }
        }
        for (x, &y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
            *x += (alpha32 * y as f32) as f64;
        }
    }
}

/// `A * B^T`; per-cell `fastmath::dot` when `fast-math` is enabled, the
/// tiled exact kernel otherwise.
///
/// # Panics
/// Panics if the inner dimensions (`a.cols` vs `b.cols`) differ.
#[inline]
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    #[cfg(not(feature = "fast-math"))]
    {
        a.matmul_nt(b)
    }
    #[cfg(feature = "fast-math")]
    {
        assert_eq!(
            a.cols(),
            b.cols(),
            "matmul_nt dimension mismatch: {}x{} * ({}x{})^T",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            let ra = a.row(i);
            let orow = &mut out.as_mut_slice()[i * b.rows()..(i + 1) * b.rows()];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot(ra, b.row(j));
            }
        }
        out
    }
}

/// Dot product over native `f32` slices with the same 4-lane unroll as the
/// exact `f64` kernel. Unlike the feature-gated functions above, this is
/// always available: callers opt in *at runtime* by materializing `f32`
/// data (e.g. `hlm-core`'s `RepStore` f32 scoring path). The lane structure
/// is fixed by the input length alone, so results are deterministic
/// run-to-run and thread-count-independent.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot_f32 length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        s0 += xa[0] * xb[0];
        s1 += xa[1] * xb[1];
        s2 += xa[2] * xb[2];
        s3 += xa[3] * xb[3];
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Squared L2 norm of an `f32` slice (`dot_f32(a, a)`).
#[inline]
pub fn sq_norm_f32(a: &[f32]) -> f32 {
    dot_f32(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_f32_matches_f64_within_rounding() {
        let a: Vec<f64> = (0..53).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..53).map(|i| (i as f64 * 0.21).cos()).collect();
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let exact = crate::vector::dot(&a, &b);
        let fast = dot_f32(&a32, &b32) as f64;
        assert!((fast - exact).abs() < 1e-4 * exact.abs().max(1.0));
        assert!((sq_norm_f32(&a32) as f64 - crate::vector::dot(&a, &a)).abs() < 1e-3);
    }

    #[test]
    fn dot_f32_is_deterministic_and_length_checked() {
        let a = vec![1.0f32; 9];
        let b = vec![2.0f32; 9];
        assert_eq!(dot_f32(&a, &b).to_bits(), dot_f32(&a, &b).to_bits());
        assert_eq!(dot_f32(&a, &b), 18.0);
    }

    #[test]
    fn dot_tracks_exact_path() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).cos()).collect();
        let fast = dot(&a, &b);
        let exact = crate::vector::dot(&a, &b);
        // Exact equality with the feature off; f32-rounding tolerance on.
        if FAST_MATH_ENABLED {
            assert!((fast - exact).abs() < 1e-4 * exact.abs().max(1.0));
        } else {
            assert_eq!(fast.to_bits(), exact.to_bits());
        }
    }

    #[test]
    fn axpy_tracks_exact_path() {
        let b: Vec<f64> = (0..21).map(|i| i as f64 * 0.25 - 2.0).collect();
        let mut fast = vec![1.0; 21];
        let mut exact = vec![1.0; 21];
        axpy(&mut fast, 0.5, &b);
        crate::vector::axpy(&mut exact, 0.5, &b);
        for (f, e) in fast.iter().zip(&exact) {
            if FAST_MATH_ENABLED {
                assert!((f - e).abs() < 1e-5);
            } else {
                assert_eq!(f.to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn matmul_nt_tracks_exact_path() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.5, -1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        let fast = matmul_nt(&a, &b);
        let exact = a.matmul_nt(&b);
        for (f, e) in fast.as_slice().iter().zip(exact.as_slice()) {
            if FAST_MATH_ENABLED {
                assert!((f - e).abs() < 1e-4);
            } else {
                assert_eq!(f.to_bits(), e.to_bits());
            }
        }
    }
}
