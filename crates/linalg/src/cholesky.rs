//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! Used by the multivariate-normal and Wishart samplers (BPMF Gibbs sweeps)
//! and anywhere a small SPD system needs solving. The decomposition stores the
//! lower-triangular factor `L` with `A = L Lᵀ`.

use crate::matrix::Matrix;

/// Error raised when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Pivot index at which the decomposition broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot {} non-positive)",
            self.pivot
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor of an SPD matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Decomposes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass a matrix
    /// whose upper triangle is stale.
    ///
    /// # Errors
    /// Returns [`NotPositiveDefinite`] when a pivot is non-positive.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn decompose(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NotPositiveDefinite { pivot: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Decomposes `a + jitter * I`, escalating jitter by 10x up to
    /// `max_tries` times. This is the pragmatic fallback the Gibbs samplers
    /// use when accumulated covariance estimates drift slightly indefinite.
    ///
    /// # Errors
    /// Returns the final [`NotPositiveDefinite`] if all attempts fail.
    pub fn decompose_with_jitter(
        a: &Matrix,
        mut jitter: f64,
        max_tries: usize,
    ) -> Result<Self, NotPositiveDefinite> {
        match Self::decompose(a) {
            Ok(c) => return Ok(c),
            Err(e) if max_tries == 0 => return Err(e),
            Err(_) => {}
        }
        let n = a.rows();
        let mut last_err = NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_tries {
            let mut aj = a.clone();
            for i in 0..n {
                aj.add_at(i, i, jitter);
            }
            match Self::decompose(&aj) {
                Ok(c) => return Ok(c),
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via forward then backward substitution.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.forward_substitute(b);
        self.backward_substitute(&y)
    }

    /// Solves `L y = b` (forward substitution).
    pub fn forward_substitute(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve dimension mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l.get(i, k) * yk;
            }
            y[i] = sum / self.l.get(i, i);
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    pub fn backward_substitute(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l.get(k, i) * xk;
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Inverse of the original matrix, computed column by column.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e);
            for (r, &v) in col.iter().enumerate() {
                inv.set(r, c, v);
            }
            e[c] = 0.0;
        }
        inv
    }

    /// Log-determinant of the original matrix: `2 Σ ln L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Applies the factor: returns `L v` (used to color white noise when
    /// sampling from a multivariate normal).
    pub fn apply_factor(&self, v: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(v.len(), n, "apply_factor dimension mismatch");
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (k, &vk) in v.iter().enumerate().take(i + 1) {
                sum += self.l.get(i, k) * vk;
            }
            *o = sum;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd_3x3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn reconstructs_original() {
        let a = spd_3x3();
        let ch = Cholesky::decompose(&a).unwrap();
        let l = ch.factor();
        let rebuilt = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rebuilt.get(i, j) - a.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_3x3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let ch = Cholesky::decompose(&a).unwrap();
        let x = ch.solve(&b);
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd_3x3();
        let inv = Cholesky::decompose(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 3.0]]);
        let det: f64 = 2.0 * 3.0 - 0.25;
        let ch = Cholesky::decompose(&a).unwrap();
        assert!((ch.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::decompose(&a).is_err());
    }

    #[test]
    fn jitter_rescues_near_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // rank 1
        assert!(Cholesky::decompose(&a).is_err());
        let ch = Cholesky::decompose_with_jitter(&a, 1e-8, 10).unwrap();
        assert!(ch.factor().is_finite());
    }

    #[test]
    fn apply_factor_matches_matvec() {
        let a = spd_3x3();
        let ch = Cholesky::decompose(&a).unwrap();
        let v = [0.3, -1.0, 2.0];
        let direct = ch.factor().matvec(&v);
        assert_eq!(ch.apply_factor(&v), direct);
    }

    proptest! {
        #[test]
        fn random_spd_roundtrip(seed in 0u64..500, n in 1usize..6) {
            // Build SPD as B Bᵀ + n*I from a pseudorandom B.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let b = Matrix::from_fn(n, n, |_, _| next());
            let mut a = b.matmul(&b.transpose());
            for i in 0..n { a.add_at(i, i, n as f64); }
            let ch = Cholesky::decompose(&a).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 1.0).collect();
            let rhs = a.matvec(&x_true);
            let x = ch.solve(&rhs);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-6);
            }
        }
    }
}
