//! Free functions over `&[f64]` slices: inner products, norms and the
//! distances used for company similarity (Equation 5 of the paper allows any
//! vector distance; the workspace uses Euclidean and cosine).

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    // Four independent accumulators break the serial add dependency chain
    // so the FPU pipelines; the fixed lane structure keeps results
    // deterministic for a given length.
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// In-place `a += alpha * b`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    // 4-way unroll: each lane writes a distinct element, so unlike `dot`
    // there is no reassociation — results are identical to the naive loop.
    let mut chunks_a = a.chunks_exact_mut(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        ca[0] += alpha * cb[0];
        ca[1] += alpha * cb[1];
        ca[2] += alpha * cb[2];
        ca[3] += alpha * cb[3];
    }
    for (x, &y) in chunks_a
        .into_remainder()
        .iter_mut()
        .zip(chunks_b.remainder())
    {
        *x += alpha * y;
    }
}

/// In-place scaling `a *= alpha`.
#[inline]
pub fn scale(a: &mut [f64], alpha: f64) {
    a.iter_mut().for_each(|x| *x *= alpha);
}

/// Squared Euclidean distance.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn euclidean_distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    euclidean_distance_sq(a, b).sqrt()
}

/// Cosine distance `1 - cos(a, b)`, in `[0, 2]`.
///
/// The distance between any vector and the zero vector is defined as 1
/// (maximal dissimilarity short of opposition), which keeps downstream
/// similarity search total over degenerate company representations.
#[inline]
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    // Clamp to counter floating-point drift outside [-1, 1].
    let cos = (dot(a, b) / (na * nb)).clamp(-1.0, 1.0);
    1.0 - cos
}

/// Normalizes `a` to unit L2 norm in place; zero vectors are left unchanged.
#[inline]
pub fn normalize(a: &mut [f64]) {
    let n = norm(a);
    if n != 0.0 {
        scale(a, 1.0 / n);
    }
}

/// Normalizes `a` to sum to one in place; zero-sum vectors are left unchanged.
#[inline]
pub fn normalize_l1(a: &mut [f64]) {
    let s: f64 = a.iter().sum();
    if s != 0.0 {
        scale(a, 1.0 / s);
    }
}

/// Arithmetic mean, or 0 for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Index of the maximum element, or `None` for an empty slice.
///
/// NaN elements never win the comparison.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        match best {
            Some((_, bx)) if x.partial_cmp(&bx) != Some(std::cmp::Ordering::Greater) => {}
            _ if x.is_nan() => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_l1(&[-1.0, 2.0]), 3.0);
    }

    #[test]
    fn distances() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!(cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0 < 1e-12);
        assert!((cosine_distance(&[1.0, 1.0], &[-1.0, -1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_defined() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
        assert_eq!(cosine_distance(&[0.0], &[0.0]), 1.0);
    }

    #[test]
    fn normalize_unit_and_l1() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut w = vec![2.0, 2.0];
        normalize_l1(&mut w);
        assert_eq!(w, vec![0.5, 0.5]);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        // Ties resolve to the first occurrence.
        assert_eq!(argmax(&[7.0, 7.0]), Some(0));
    }

    #[test]
    fn axpy_and_mean() {
        let mut a = vec![1.0, 2.0];
        axpy(&mut a, 2.0, &[1.0, 1.0]);
        assert_eq!(a, vec![3.0, 4.0]);
        assert_eq!(mean(&a), 3.5);
        assert_eq!(mean(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn cosine_distance_in_range(a in prop::collection::vec(-10.0f64..10.0, 1..8)) {
            let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect();
            let d = cosine_distance(&a, &b);
            prop_assert!((-1e-12..=2.0 + 1e-12).contains(&d));
        }

        #[test]
        fn self_cosine_distance_is_zero(a in prop::collection::vec(0.1f64..10.0, 1..8)) {
            prop_assert!(cosine_distance(&a, &a) < 1e-9);
        }

        #[test]
        fn triangle_inequality_euclidean(
            a in prop::collection::vec(-5.0f64..5.0, 3),
            b in prop::collection::vec(-5.0f64..5.0, 3),
            c in prop::collection::vec(-5.0f64..5.0, 3),
        ) {
            let ab = euclidean_distance(&a, &b);
            let bc = euclidean_distance(&b, &c);
            let ac = euclidean_distance(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }
    }
}
