//! Special functions: log-gamma, digamma, error function, normal CDF and
//! quantile, log-sum-exp and softmax.
//!
//! These are the numeric primitives behind the LDA sampler (gamma-family
//! identities), the evaluation statistics (normal tail probabilities for
//! confidence intervals and binomial tests), and every softmax in the LSTM.

use std::f64::consts::PI;

/// Natural log of the gamma function via the Lanczos approximation (g = 7,
/// n = 9 coefficients). Accurate to ~1e-13 over the positive reals.
///
/// # Panics
/// Panics for non-positive non-integer-safe inputs only through the
/// reflection formula domain; `x > 0` is always safe.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x)
        let s = (PI * x).sin();
        assert!(s != 0.0, "ln_gamma pole at non-positive integer {x}");
        return (PI / s.abs()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function ψ(x) = d/dx ln Γ(x) via upward recurrence plus the
/// asymptotic series. Accurate to ~1e-12 for `x > 0`.
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut result = 0.0;
    // Recurrence ψ(x) = ψ(x+1) − 1/x until x is large enough for the series.
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n} / (2n x^{2n}).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))))
}

/// Error function via the Abramowitz & Stegun 7.1.26 rational approximation,
/// |error| < 1.5e-7 — sufficient for p-values and CI half-widths.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile Φ⁻¹(p) via Acklam's rational approximation
/// (relative error < 1.15e-9).
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Numerically stable `ln Σ exp(x_i)`. Returns `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// In-place numerically stable softmax; an all-`-inf` input becomes uniform.
pub fn softmax_in_place(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        let u = 1.0 / xs.len() as f64;
        xs.iter_mut().for_each(|x| *x = u);
        return;
    }
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    xs.iter_mut().for_each(|x| *x /= sum);
}

/// Returns the softmax of `xs` as a new vector.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)` via the
/// series expansion for `x < a + 1` and the continued fraction otherwise
/// (Numerical Recipes `gammp`).
///
/// # Panics
/// Panics unless `a > 0` and `x >= 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
/// Panics unless `a > 0` and `x >= 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

/// Series expansion of `P(a, x)` (converges fast for `x < a + 1`).
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Lentz continued fraction for `Q(a, x)` (converges fast for `x >= a + 1`).
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (h * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: `P(X ≥ x) = Q(df/2, x/2)`.
///
/// # Panics
/// Panics unless `df > 0` and `x >= 0`.
pub fn chi_square_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi_square_sf requires df > 0");
    gamma_q(df / 2.0, x / 2.0)
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// # Panics
/// Panics if `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial requires k <= n");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma(n as f64 + 1.0);
            assert!((lg - f.ln()).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!((ln_gamma(0.5) - 0.5 * PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_known_values() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + EULER).abs() < 1e-10);
        // ψ(x+1) = ψ(x) + 1/x
        assert!((digamma(2.0) - (digamma(1.0) + 1.0)).abs() < 1e-10);
        assert!((digamma(0.5) + EULER + 2.0 * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn erf_and_normal_cdf() {
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn log_sum_exp_stability() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert!((log_sum_exp(&[-1e6, 0.0]) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_sums_to_one_even_when_degenerate() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        let deg = softmax(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(deg, vec![0.5, 0.5]);
    }

    #[test]
    fn incomplete_gamma_complements() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}: P+Q = {}", p + q);
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!(
                (gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "x={x}"
            );
        }
        // P(1/2, x) = erf(sqrt(x)).
        for &x in &[0.25f64, 1.0, 4.0] {
            let expect = erf(x.sqrt());
            assert!((gamma_p(0.5, x) - expect).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn chi_square_sf_known_quantiles() {
        // df = 1: the 5% critical value is 3.841.
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        // df = 2: sf(x) = exp(-x/2) exactly.
        for &x in &[0.5, 2.0, 6.0] {
            assert!((chi_square_sf(x, 2.0) - (-x / 2.0).exp()).abs() < 1e-12);
        }
        // df = 10: the 5% critical value is 18.307.
        assert!((chi_square_sf(18.307, 10.0) - 0.05).abs() < 1e-3);
        // Monotone decreasing in x.
        assert!(chi_square_sf(1.0, 5.0) > chi_square_sf(2.0, 5.0));
    }

    #[test]
    fn ln_binomial_small_cases() {
        assert!((ln_binomial(5, 2) - 10.0_f64.ln()).abs() < 1e-10);
        assert!((ln_binomial(10, 0)).abs() < 1e-10);
        assert!((ln_binomial(10, 10)).abs() < 1e-10);
    }

    proptest! {
        #[test]
        fn ln_gamma_recurrence(x in 0.1f64..50.0) {
            // ln Γ(x+1) = ln Γ(x) + ln x
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }

        #[test]
        fn softmax_is_distribution(xs in prop::collection::vec(-50.0f64..50.0, 1..10)) {
            let s = softmax(&xs);
            prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn normal_cdf_monotone(a in -5.0f64..5.0, d in 0.001f64..2.0) {
            prop_assert!(normal_cdf(a + d) >= normal_cdf(a));
        }
    }
}
