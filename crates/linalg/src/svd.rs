//! Truncated singular value decomposition via power iteration with
//! deflation.
//!
//! Supports the Latent Semantic Indexing baseline (the topic-modelling
//! alternative the paper cites in Section 3.5) and spectral co-clustering
//! (the Section-3.1 comparison). The matrices involved are `N x 38`, so a
//! simple subspace-free power method with Gram-matrix tricks is accurate and
//! fast.

use crate::matrix::Matrix;
use crate::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A rank-`k` truncated SVD: `A ≈ U diag(S) Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `n x k` (orthonormal columns).
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors, `m x k` (orthonormal columns).
    pub v: Matrix,
}

/// Computes the top-`k` singular triplets of `a` by power iteration on the
/// smaller Gram matrix, deflating after each extracted component.
///
/// Singular values below `1e-10 * s_1` are dropped, so the returned rank may
/// be lower than requested for (near-)rank-deficient input.
///
/// # Panics
/// Panics if `k == 0` or `a` is empty.
pub fn truncated_svd(a: &Matrix, k: usize, seed: u64) -> TruncatedSvd {
    assert!(k >= 1, "rank must be at least 1");
    assert!(a.rows() > 0 && a.cols() > 0, "empty matrix");
    let k = k.min(a.rows()).min(a.cols());
    let mut rng = StdRng::seed_from_u64(seed);

    // Work on a deflating copy.
    let mut residual = a.clone();
    let mut u_cols: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut v_cols: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut s_vals: Vec<f64> = Vec::with_capacity(k);

    for _ in 0..k {
        // Power-iterate v on AᵀA (m-dimensional, m = 38 in practice).
        let m = residual.cols();
        let mut v: Vec<f64> = (0..m)
            .map(|_| crate::dist::sample_standard_normal(&mut rng))
            .collect();
        vector::normalize(&mut v);
        let mut sigma = 0.0;
        for _ in 0..200 {
            // w = Aᵀ (A v)
            let av = residual.matvec(&v);
            let mut w = residual.vecmat(&av);
            let n = vector::norm(&w);
            if n < 1e-14 {
                sigma = 0.0;
                break;
            }
            vector::scale(&mut w, 1.0 / n);
            let delta = vector::euclidean_distance(&w, &v);
            v = w;
            sigma = n.sqrt(); // ||A v|| after convergence equals sigma
            if delta < 1e-12 {
                break;
            }
        }
        if sigma <= 0.0 {
            break;
        }
        let mut u = residual.matvec(&v);
        let s = vector::norm(&u);
        if s < 1e-10 * s_vals.first().copied().unwrap_or(s).max(1e-300) {
            break;
        }
        vector::scale(&mut u, 1.0 / s);

        // Deflate: A ← A − s u vᵀ.
        residual.add_outer(-s, &u, &v);
        u_cols.push(u);
        v_cols.push(v);
        s_vals.push(s);
    }

    assert!(!s_vals.is_empty(), "no singular components extracted");
    let rank = s_vals.len();
    let u = Matrix::from_fn(a.rows(), rank, |i, j| u_cols[j][i]);
    let v = Matrix::from_fn(a.cols(), rank, |i, j| v_cols[j][i]);
    TruncatedSvd { u, s: s_vals, v }
}

impl TruncatedSvd {
    /// Extracted rank.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// The rank-`k` reconstruction `U diag(S) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let mut scaled_u = self.u.clone();
        for i in 0..scaled_u.rows() {
            for (j, &s) in self.s.iter().enumerate() {
                scaled_u.set(i, j, scaled_u.get(i, j) * s);
            }
        }
        scaled_u.matmul(&self.v.transpose())
    }

    /// Row embeddings `U diag(S)` (documents in LSI space).
    pub fn row_embeddings(&self) -> Matrix {
        let mut out = self.u.clone();
        for i in 0..out.rows() {
            for (j, &s) in self.s.iter().enumerate() {
                out.set(i, j, out.get(i, j) * s);
            }
        }
        out
    }

    /// Column embeddings `V diag(S)` (terms in LSI space).
    pub fn col_embeddings(&self) -> Matrix {
        let mut out = self.v.clone();
        for i in 0..out.rows() {
            for (j, &s) in self.s.iter().enumerate() {
                out.set(i, j, out.get(i, j) * s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank-2 matrix with known singular structure.
    fn low_rank() -> Matrix {
        // A = 5 * u1 v1ᵀ + 2 * u2 v2ᵀ with orthonormal u, v.
        let u1 = [0.5, 0.5, 0.5, 0.5];
        let u2 = [0.5, -0.5, 0.5, -0.5];
        let v1 = [1.0 / 2.0_f64.sqrt(), 1.0 / 2.0_f64.sqrt(), 0.0];
        let v2 = [0.0, 0.0, 1.0];
        let mut a = Matrix::zeros(4, 3);
        a.add_outer(5.0, &u1, &v1);
        a.add_outer(2.0, &u2, &v2);
        a
    }

    #[test]
    fn recovers_singular_values() {
        let a = low_rank();
        let svd = truncated_svd(&a, 3, 1);
        assert!(svd.rank() >= 2);
        assert!((svd.s[0] - 5.0).abs() < 1e-8, "s1 = {}", svd.s[0]);
        assert!((svd.s[1] - 2.0).abs() < 1e-8, "s2 = {}", svd.s[1]);
        if svd.rank() > 2 {
            assert!(svd.s[2] < 1e-8);
        }
    }

    #[test]
    fn reconstruction_matches_low_rank_input() {
        let a = low_rank();
        let svd = truncated_svd(&a, 2, 2);
        let r = svd.reconstruct();
        assert!(r.sub(&a).frobenius_norm() < 1e-8);
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let a = Matrix::from_fn(10, 6, |i, j| ((i * 13 + j * 7) % 9) as f64 - 4.0);
        let svd = truncated_svd(&a, 3, 3);
        for i in 0..svd.rank() {
            for j in 0..svd.rank() {
                let du = vector::dot(&svd.u.col(i), &svd.u.col(j));
                let dv = vector::dot(&svd.v.col(i), &svd.v.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((du - expect).abs() < 1e-6, "u[{i}]·u[{j}] = {du}");
                assert!((dv - expect).abs() < 1e-6, "v[{i}]·v[{j}] = {dv}");
            }
        }
    }

    #[test]
    fn singular_values_descend() {
        let a = Matrix::from_fn(12, 8, |i, j| ((i + 1) * (j + 2)) as f64 % 7.0);
        let svd = truncated_svd(&a, 5, 4);
        for pair in svd.s.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9);
        }
    }

    #[test]
    fn truncation_minimizes_frobenius_error_direction() {
        // Rank-1 truncation of the low-rank matrix keeps the sigma=5 part.
        let a = low_rank();
        let svd = truncated_svd(&a, 1, 5);
        let err = svd.reconstruct().sub(&a).frobenius_norm();
        assert!(
            (err - 2.0).abs() < 1e-6,
            "residual is the dropped sigma=2 component"
        );
    }

    #[test]
    fn rank_clamped_to_dimensions() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let svd = truncated_svd(&a, 10, 6);
        assert!(svd.rank() <= 2);
    }
}
