//! Generation-stamped sparse accumulators for the count-table hot paths.
//!
//! A Gibbs chunk touches only a handful of `(topic, word)` cells out of a
//! `K×M` table, but the dense delta representation pays `O(K·M)` to zero,
//! write and merge every chunk. [`SparseDelta`] keeps O(1) reads and writes
//! with O(touched) reset and iteration: each cell carries a generation stamp,
//! and bumping the generation invalidates every previous write without
//! touching memory. The touched list preserves **first-touch order**, which
//! is deterministic for a deterministic caller — the workspace's chunk-order
//! merge contract (DESIGN.md §3.3) extends through it unchanged.

/// One stamped cell. Stamp and value live side by side so a random probe
/// touches a single cache line instead of one line in a stamp array plus
/// one in a value array — the Gibbs alias kernel issues a handful of
/// `get`/`add` probes per token, all at data-dependent indices.
#[derive(Debug, Clone, Copy)]
struct Cell {
    stamp: u32,
    val: f64,
}

/// A sparse `f64` delta over a fixed-size index space.
#[derive(Debug, Clone)]
pub struct SparseDelta {
    cells: Vec<Cell>,
    gen: u32,
    touched: Vec<u32>,
}

impl SparseDelta {
    /// Creates a delta over indices `0..n`, initially all zero.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "SparseDelta index space too large");
        SparseDelta {
            cells: vec![Cell { stamp: 0, val: 0.0 }; n],
            gen: 1,
            touched: Vec::new(),
        }
    }

    /// Size of the index space.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the index space is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Resets every entry to zero in O(touched) by bumping the generation.
    pub fn begin(&mut self) {
        self.touched.clear();
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // A full u32 wrap could alias stale stamps; pay one dense clear
            // every 2^32 generations to restore the invariant.
            self.cells.iter_mut().for_each(|c| c.stamp = 0);
            self.gen = 1;
        }
    }

    /// Adds `v` to entry `i`.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        let c = &mut self.cells[i];
        if c.stamp == self.gen {
            c.val += v;
        } else {
            c.stamp = self.gen;
            c.val = v;
            self.touched.push(i as u32);
        }
    }

    /// Current value of entry `i` (zero if untouched this generation).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        let c = self.cells[i];
        if c.stamp == self.gen {
            c.val
        } else {
            0.0
        }
    }

    /// Indices written this generation, in first-touch order. Entries whose
    /// accumulated value returned to zero are still listed.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_reset() {
        let mut d = SparseDelta::new(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.get(3), 0.0);
        d.add(3, 1.5);
        d.add(3, 0.5);
        d.add(7, -1.0);
        assert_eq!(d.get(3), 2.0);
        assert_eq!(d.get(7), -1.0);
        assert_eq!(d.touched(), &[3, 7]);
        d.begin();
        assert_eq!(d.get(3), 0.0);
        assert!(d.touched().is_empty());
        d.add(3, 4.0);
        assert_eq!(d.get(3), 4.0);
    }

    #[test]
    fn first_touch_order_is_preserved() {
        let mut d = SparseDelta::new(5);
        for &i in &[4usize, 1, 4, 0, 1, 2] {
            d.add(i, 1.0);
        }
        assert_eq!(d.touched(), &[4, 1, 0, 2]);
    }

    #[test]
    fn zero_sum_entries_stay_listed() {
        let mut d = SparseDelta::new(3);
        d.add(1, 1.0);
        d.add(1, -1.0);
        assert_eq!(d.get(1), 0.0);
        assert_eq!(d.touched(), &[1]);
    }
}
