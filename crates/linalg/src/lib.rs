//! Dense linear algebra, special functions and probability distributions.
//!
//! This crate is the numeric substrate for the hidden-layer-models workspace.
//! Everything here is implemented from scratch on top of `std` and the `rand`
//! RNG core:
//!
//! * [`Matrix`] — a small dense row-major `f64` matrix with the operations the
//!   model crates need (products, transposes, row/column views).
//! * [`Cholesky`] — decomposition of symmetric positive-definite matrices with
//!   solve / inverse / log-determinant, used by the BPMF Gibbs sampler and the
//!   multivariate normal sampler.
//! * [`special`] — log-gamma, digamma, erf, normal CDF and quantile,
//!   log-sum-exp and softmax.
//! * [`dist`] — random distributions (normal, gamma, beta, Dirichlet,
//!   categorical with alias tables, Wishart, multivariate normal) built
//!   directly on any [`rand::Rng`].
//! * [`vector`] — free functions over `&[f64]` slices: dot products, norms,
//!   Euclidean and cosine distances.
//!
//! # Example
//!
//! ```
//! use hlm_linalg::{Matrix, vector};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = a.matmul(&a.transpose());
//! assert_eq!(b.get(0, 0), 5.0);
//! assert!(vector::cosine_distance(&[1.0, 0.0], &[1.0, 0.0]) < 1e-12);
//! ```

pub mod cholesky;
pub mod dist;
pub mod fastmath;
pub mod matrix;
pub mod sparse;
pub mod special;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use sparse::SparseDelta;
pub use svd::{truncated_svd, TruncatedSvd};
