//! A dense row-major `f64` matrix.
//!
//! The matrix sizes used across the workspace are small-to-medium (topic-word
//! tables of `K x 38`, LSTM weight blocks of a few hundred squared, BPMF
//! factor matrices of `N x D`), so a straightforward dense representation with
//! cache-friendly row-major loops is the right tool. No BLAS, no generics —
//! predictable, easy to audit numerics.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the value at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the value at `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] += v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Fills every cell with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j order keeps both inner accesses sequential in memory.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        self.iter_rows()
            .map(|row| crate::vector::dot(row, v))
            .collect()
    }

    /// Vector-matrix product `v^T * self`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vecmat dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(r).iter()) {
                *o += vr * m;
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns the matrix scaled by `alpha`.
    pub fn scale(&self, alpha: f64) -> Matrix {
        let data = self.data.iter().map(|&x| x * alpha).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scaling by `alpha`.
    pub fn scale_mut(&mut self, alpha: f64) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Outer product `a * b^T` as an `a.len() x b.len()` matrix.
    pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
        let mut out = Matrix::zeros(a.len(), b.len());
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out.set(i, j, ai * bj);
            }
        }
        out
    }

    /// Adds the outer product `alpha * a * b^T` in place.
    ///
    /// # Panics
    /// Panics if shapes disagree with `(a.len(), b.len())`.
    pub fn add_outer(&mut self, alpha: f64, a: &[f64], b: &[f64]) {
        assert_eq!(self.rows, a.len(), "add_outer row mismatch");
        assert_eq!(self.cols, b.len(), "add_outer col mismatch");
        for (i, &ai) in a.iter().enumerate() {
            let s = alpha * ai;
            if s == 0.0 {
                continue;
            }
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &bj) in row.iter_mut().zip(b.iter()) {
                *o += s * bj;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Normalizes each row to sum to one.
    ///
    /// Rows whose sum is zero are left untouched.
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let s: f64 = row.iter().sum();
            if s != 0.0 {
                row.iter_mut().for_each(|x| *x /= s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn outer_product() {
        let o = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o.get(1, 2), 10.0);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 1.0], &[1.0, 0.0]);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn normalize_rows_handles_zero_rows() {
        let mut m = Matrix::from_rows(&[&[2.0, 2.0], &[0.0, 0.0]]);
        m.normalize_rows();
        assert_eq!(m.row(0), &[0.5, 0.5]);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).row(0), &[2.0, 2.0]);
        assert_eq!(a.hadamard(&b).row(0), &[3.0, 8.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.row(0), &[7.0, 10.0]);
    }

    proptest! {
        #[test]
        fn transpose_preserves_frobenius(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let m = Matrix::from_fn(rows, cols, |_, _| next());
            let t = m.transpose();
            prop_assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
        }

        #[test]
        fn matmul_identity_is_noop(rows in 1usize..5, cols in 1usize..5) {
            let m = Matrix::from_fn(rows, cols, |i, j| (i * 7 + j * 3) as f64);
            let prod = m.matmul(&Matrix::identity(cols));
            prop_assert_eq!(prod, m);
        }

        #[test]
        fn matvec_agrees_with_matmul(rows in 1usize..5, cols in 1usize..5) {
            let m = Matrix::from_fn(rows, cols, |i, j| (i + 2 * j) as f64 * 0.5);
            let v: Vec<f64> = (0..cols).map(|j| j as f64 - 1.0).collect();
            let as_mat = Matrix::from_vec(cols, 1, v.clone());
            let prod = m.matmul(&as_mat);
            let mv = m.matvec(&v);
            for i in 0..rows {
                prop_assert!((prod.get(i, 0) - mv[i]).abs() < 1e-12);
            }
        }
    }
}
