//! A dense row-major `f64` matrix.
//!
//! The matrix sizes used across the workspace are small-to-medium (topic-word
//! tables of `K x 38`, LSTM weight blocks of a few hundred squared, BPMF
//! factor matrices of `N x D`), so a straightforward dense representation with
//! cache-friendly row-major loops is the right tool. No BLAS, no generics —
//! predictable, easy to audit numerics.

use serde::{Deserialize, Serialize};

/// Multiply-add count above which `matmul`/`matvec` fan out across the
/// global worker pool. Below it the spawn cost dwarfs the arithmetic.
const PAR_FLOP_CUTOFF: usize = 1 << 18;

/// Output rows per parallel block. Fixed (never derived from the thread
/// count) so chunk boundaries are a pure function of the shapes.
const PAR_ROW_CHUNK: usize = 16;

/// Inner-dimension tile: `K_TILE` rows of the right operand stay cache-hot
/// while a block of output rows consumes them.
const K_TILE: usize = 64;

/// Probes up to 16 evenly spaced elements of a row segment; the zero-skip
/// branch in the matmul kernel is only enabled when at least half the
/// probes hit zeros. On dense data the always-taken branch costs more than
/// the multiplications it saves.
fn segment_probe_sparse(seg: &[f64]) -> bool {
    if seg.is_empty() {
        return false;
    }
    // Odd stride so the sample pattern cannot alias with even-periodic
    // sparsity structure.
    let stride = ((seg.len() / 16) | 1).max(1);
    let mut zeros = 0usize;
    let mut total = 0usize;
    let mut i = 0;
    while i < seg.len() {
        zeros += usize::from(seg[i] == 0.0);
        total += 1;
        i += stride;
    }
    2 * zeros >= total
}

/// Dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the value at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the value at `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] += v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Fills every cell with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Overwrites this matrix with `other`'s contents in place, reusing the
    /// existing buffer (the allocation-free alternative to `clone`).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Cache-blocked over the inner dimension (a tile of `other`'s rows
    /// stays hot while a block of output rows consumes it) and parallelized
    /// across output-row blocks above [`PAR_FLOP_CUTOFF`]. Per output cell
    /// the inner-dimension accumulation order is the plain ascending-`k`
    /// order, so blocked, parallel and naive i-k-j results are bit-identical
    /// for finite inputs, at any thread count.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        if self.rows == 0 || self.cols == 0 || other.cols == 0 {
            return out;
        }
        let n = other.cols;
        let pool = hlm_par::Pool::global();
        let flops = self.rows * self.cols * n;
        if flops >= PAR_FLOP_CUTOFF && pool.threads() > 1 && self.rows > 1 {
            hlm_par::par_for_each_init(
                &pool,
                &mut out.data,
                PAR_ROW_CHUNK * n,
                |_| (),
                |(), block_idx, out_block| {
                    self.mul_rows_into(other, block_idx * PAR_ROW_CHUNK, out_block);
                },
            );
        } else {
            self.mul_rows_into(other, 0, &mut out.data);
        }
        out
    }

    /// Computes output rows `row0..` of `self * other` into `out_block`
    /// (`out_block.len()` must be a multiple of `other.cols`): the k-tiled
    /// i-k-j kernel shared by the serial and parallel paths.
    fn mul_rows_into(&self, other: &Matrix, row0: usize, out_block: &mut [f64]) {
        let n = other.cols;
        let n_rows = out_block.len() / n;
        let mut k0 = 0;
        while k0 < self.cols {
            let k1 = (k0 + K_TILE).min(self.cols);
            for (r, out_row) in out_block.chunks_exact_mut(n).enumerate().take(n_rows) {
                let a_seg = &self.row(row0 + r)[k0..k1];
                // Zero entries of A contribute nothing either way; skipping
                // them only pays when the segment is actually sparse —
                // probing first avoids a mispredicting branch on dense data.
                let skip_zeros = segment_probe_sparse(a_seg);
                for (k, &a_ik) in a_seg.iter().enumerate() {
                    if skip_zeros && a_ik == 0.0 {
                        continue;
                    }
                    crate::vector::axpy(out_row, a_ik, other.row(k0 + k));
                }
            }
            k0 = k1;
        }
    }

    /// Matrix product with a transposed right operand: `self * other^T`,
    /// where `other` is `m x k` with `k == self.cols()`. Both operands are
    /// walked along rows, so every inner product is two sequential streams —
    /// the fast path for Gram-style products without materializing a
    /// transpose.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        if self.rows == 0 || other.rows == 0 {
            return out;
        }
        let n = other.rows;
        let pool = hlm_par::Pool::global();
        let flops = self.rows * self.cols * n;
        let nt_kernel = |row0: usize, out_block: &mut [f64]| {
            for (r, out_row) in out_block.chunks_exact_mut(n).enumerate() {
                let a_row = self.row(row0 + r);
                for (o, b_row) in out_row.iter_mut().zip(other.iter_rows()) {
                    *o = crate::vector::dot(a_row, b_row);
                }
            }
        };
        if flops >= PAR_FLOP_CUTOFF && pool.threads() > 1 && self.rows > 1 {
            hlm_par::par_for_each_init(
                &pool,
                &mut out.data,
                PAR_ROW_CHUNK * n,
                |_| (),
                |(), block_idx, out_block| nt_kernel(block_idx * PAR_ROW_CHUNK, out_block),
            );
        } else {
            nt_kernel(0, &mut out.data);
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Row results are independent dot products, so the parallel path (taken
    /// above [`PAR_FLOP_CUTOFF`]) is bit-identical to the serial one.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let pool = hlm_par::Pool::global();
        if self.rows * self.cols >= PAR_FLOP_CUTOFF && pool.threads() > 1 {
            let n_chunks = hlm_par::chunk_count(self.rows, PAR_ROW_CHUNK);
            let blocks = pool.run(n_chunks, |c| {
                let (lo, hi) = hlm_par::chunk_bounds(self.rows, PAR_ROW_CHUNK, c);
                (lo..hi)
                    .map(|r| crate::vector::dot(self.row(r), v))
                    .collect::<Vec<f64>>()
            });
            return blocks.concat();
        }
        self.iter_rows()
            .map(|row| crate::vector::dot(row, v))
            .collect()
    }

    /// Vector-matrix product `v^T * self`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vecmat dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(r).iter()) {
                *o += vr * m;
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns the matrix scaled by `alpha`.
    pub fn scale(&self, alpha: f64) -> Matrix {
        let data = self.data.iter().map(|&x| x * alpha).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scaling by `alpha`.
    pub fn scale_mut(&mut self, alpha: f64) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Outer product `a * b^T` as an `a.len() x b.len()` matrix.
    pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
        let mut out = Matrix::zeros(a.len(), b.len());
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out.set(i, j, ai * bj);
            }
        }
        out
    }

    /// Adds the outer product `alpha * a * b^T` in place.
    ///
    /// # Panics
    /// Panics if shapes disagree with `(a.len(), b.len())`.
    pub fn add_outer(&mut self, alpha: f64, a: &[f64], b: &[f64]) {
        assert_eq!(self.rows, a.len(), "add_outer row mismatch");
        assert_eq!(self.cols, b.len(), "add_outer col mismatch");
        for (i, &ai) in a.iter().enumerate() {
            let s = alpha * ai;
            if s == 0.0 {
                continue;
            }
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &bj) in row.iter_mut().zip(b.iter()) {
                *o += s * bj;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Normalizes each row to sum to one.
    ///
    /// Rows whose sum is zero are left untouched.
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let s: f64 = row.iter().sum();
            if s != 0.0 {
                row.iter_mut().for_each(|x| *x /= s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn outer_product() {
        let o = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o.get(1, 2), 10.0);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 1.0], &[1.0, 0.0]);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn normalize_rows_handles_zero_rows() {
        let mut m = Matrix::from_rows(&[&[2.0, 2.0], &[0.0, 0.0]]);
        m.normalize_rows();
        assert_eq!(m.row(0), &[0.5, 0.5]);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).row(0), &[2.0, 2.0]);
        assert_eq!(a.hadamard(&b).row(0), &[3.0, 8.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.row(0), &[7.0, 10.0]);
    }

    /// Reference naive i-k-j product without blocking, skipping or
    /// parallelism.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                for j in 0..b.cols() {
                    out.add_at(i, j, a.get(i, k) * b.get(k, j));
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise() {
        // 70x130 * 130x90 crosses both the K_TILE boundary and the parallel
        // flop cutoff; with ~30% zeros the sparsity probe takes both paths.
        let a = Matrix::from_fn(70, 130, |i, j| {
            if (i * 131 + j * 7) % 10 < 3 {
                0.0
            } else {
                ((i * 31 + j) as f64).sin()
            }
        });
        let b = Matrix::from_fn(130, 90, |i, j| ((i + 3 * j) as f64).cos());
        let expect = naive_matmul(&a, &b);
        assert_eq!(a.matmul(&b), expect);
    }

    #[test]
    fn matmul_is_thread_count_independent() {
        let a = Matrix::from_fn(64, 96, |i, j| ((i * 17 + j * 5) as f64).sin());
        let b = Matrix::from_fn(96, 64, |i, j| ((i + j * 11) as f64).cos());
        hlm_par::set_threads(1);
        let serial = a.matmul(&b);
        let serial_nt = a.matmul_nt(&b.transpose());
        let serial_mv = a.matvec(&b.col(0));
        for threads in [2, 7] {
            hlm_par::set_threads(threads);
            assert_eq!(a.matmul(&b), serial, "{threads} threads");
            assert_eq!(a.matmul_nt(&b.transpose()), serial_nt, "{threads} threads");
            assert_eq!(a.matvec(&b.col(0)), serial_mv, "{threads} threads");
        }
        hlm_par::set_threads(0);
    }

    #[test]
    fn matmul_nt_matches_matmul_of_transpose() {
        let a = Matrix::from_fn(9, 13, |i, j| (i * 13 + j) as f64 * 0.25);
        let b = Matrix::from_fn(7, 13, |i, j| ((i + j) as f64).sqrt());
        let via_transpose = a.matmul(&b.transpose());
        let direct = a.matmul_nt(&b);
        assert_eq!(direct.shape(), (9, 7));
        for i in 0..9 {
            for j in 0..7 {
                assert!((direct.get(i, j) - via_transpose.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sparsity_probe_detects_density() {
        assert!(segment_probe_sparse(&[0.0; 32]));
        assert!(!segment_probe_sparse(&[1.0; 32]));
        assert!(!segment_probe_sparse(&[]));
        let mostly_zero: Vec<f64> = (0..64)
            .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
            .collect();
        assert!(segment_probe_sparse(&mostly_zero));
    }

    proptest! {
        #[test]
        fn transpose_preserves_frobenius(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let m = Matrix::from_fn(rows, cols, |_, _| next());
            let t = m.transpose();
            prop_assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
        }

        #[test]
        fn matmul_identity_is_noop(rows in 1usize..5, cols in 1usize..5) {
            let m = Matrix::from_fn(rows, cols, |i, j| (i * 7 + j * 3) as f64);
            let prod = m.matmul(&Matrix::identity(cols));
            prop_assert_eq!(prod, m);
        }

        #[test]
        fn matvec_agrees_with_matmul(rows in 1usize..5, cols in 1usize..5) {
            let m = Matrix::from_fn(rows, cols, |i, j| (i + 2 * j) as f64 * 0.5);
            let v: Vec<f64> = (0..cols).map(|j| j as f64 - 1.0).collect();
            let as_mat = Matrix::from_vec(cols, 1, v.clone());
            let prod = m.matmul(&as_mat);
            let mv = m.matvec(&v);
            for (i, &mvi) in mv.iter().enumerate() {
                prop_assert!((prod.get(i, 0) - mvi).abs() < 1e-12);
            }
        }
    }
}
