//! Random distributions implemented directly on top of any [`rand::Rng`].
//!
//! The workspace deliberately does not depend on `rand_distr`: the samplers
//! here (polar normal, Marsaglia–Tsang gamma, stick-free Dirichlet, Walker
//! alias tables, Bartlett Wishart, Cholesky-colored multivariate normal) are
//! the exact set the model crates need and are kept auditable in one place.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use rand::Rng;

/// Draws a standard normal variate using the Marsaglia polar method.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws from `Normal(mean, std_dev)`.
///
/// # Panics
/// Panics if `std_dev < 0`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev >= 0.0,
        "std_dev must be non-negative, got {std_dev}"
    );
    mean + std_dev * sample_standard_normal(rng)
}

/// Draws from `Gamma(shape, scale)` via Marsaglia & Tsang (2000), with the
/// usual `U^{1/shape}` boost for `shape < 1`.
///
/// # Panics
/// Panics unless `shape > 0` and `scale > 0`.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    assert!(scale > 0.0, "gamma scale must be positive, got {scale}");
    if shape < 1.0 {
        // Gamma(a) = Gamma(a+1) * U^{1/a}
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        return sample_gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u = rng.gen::<f64>();
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

/// Draws from `Beta(a, b)` as a ratio of gammas.
///
/// # Panics
/// Panics unless both parameters are positive.
pub fn sample_beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = sample_gamma(rng, a, 1.0);
    let y = sample_gamma(rng, b, 1.0);
    x / (x + y)
}

/// Draws a probability vector from `Dirichlet(alphas)`.
///
/// # Panics
/// Panics if `alphas` is empty or contains a non-positive entry.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alphas: &[f64]) -> Vec<f64> {
    assert!(
        !alphas.is_empty(),
        "Dirichlet needs at least one concentration"
    );
    let mut draws: Vec<f64> = alphas.iter().map(|&a| sample_gamma(rng, a, 1.0)).collect();
    let sum: f64 = draws.iter().sum();
    if sum == 0.0 {
        // Extremely small alphas can underflow every gamma draw; fall back to
        // a one-hot on a uniformly chosen coordinate, the limiting behaviour.
        let k = rng.gen_range(0..draws.len());
        draws.iter_mut().for_each(|x| *x = 0.0);
        draws[k] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|x| *x /= sum);
    draws
}

/// Draws a symmetric `Dirichlet(alpha, ..., alpha)` of dimension `k`.
pub fn sample_symmetric_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    sample_dirichlet(rng, &vec![alpha; k])
}

/// Samples an index proportionally to non-negative `weights` (not necessarily
/// normalized) via a single linear scan.
///
/// # Panics
/// Panics if `weights` is empty, contains a negative or non-finite entry, or
/// sums to zero.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical needs at least one weight");
    let mut total = 0.0;
    for &w in weights {
        assert!(w.is_finite() && w >= 0.0, "invalid categorical weight {w}");
        total += w;
    }
    assert!(total > 0.0, "categorical weights sum to zero");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    // Floating-point slack can leave target marginally positive.
    weights.len() - 1
}

/// Samples an index from unnormalized log-weights.
///
/// # Panics
/// Panics if all weights are `-inf` or the slice is empty.
pub fn sample_categorical_log<R: Rng + ?Sized>(rng: &mut R, log_weights: &[f64]) -> usize {
    let weights = crate::special::softmax(log_weights);
    sample_categorical(rng, &weights)
}

/// Walker alias table for O(1) categorical sampling, used in the hot Gibbs
/// and data-generation loops.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, has invalid entries, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights
            .iter()
            .inspect(|&&w| assert!(w.is_finite() && w >= 0.0, "invalid alias weight {w}"))
            .sum();
        assert!(total > 0.0, "alias table weights sum to zero");

        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never constructible; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// A family of Walker alias tables sharing flat storage, built for the
/// LightLDA-style Gibbs sampler: one table per vocabulary word, each over the
/// same `k` topics, rebuilt every sweep from the sweep-start count snapshot.
///
/// Compared to a `Vec<AliasTable>` this keeps a single `prob`/`alias`
/// allocation plus reusable small/large build stacks, so per-sweep rebuild is
/// allocation-free after the first sweep. Construction is the same Walker
/// pairing as [`AliasTable::new`]; a table built twice from the same weights
/// is bit-identical (leftover slots are canonicalized to `alias[i] = i`), so
/// rebuilds are pure functions of the weights — the property the sharded
/// trainer relies on to match the in-memory trainer bit-for-bit.
#[derive(Debug, Clone)]
pub struct AliasTableSet {
    k: usize,
    prob: Vec<f64>,
    alias: Vec<u32>,
    small: Vec<u32>,
    large: Vec<u32>,
}

impl AliasTableSet {
    /// Allocates `n_tables` tables of `k` categories each. Every table must
    /// be [`build_table`](Self::build_table)-ed before it is sampled.
    pub fn new(n_tables: usize, k: usize) -> Self {
        assert!(k > 0, "alias tables need at least one category");
        assert!(
            k <= u32::MAX as usize,
            "alias table category space too large"
        );
        AliasTableSet {
            k,
            prob: vec![0.0; n_tables * k],
            alias: vec![0; n_tables * k],
            small: Vec::with_capacity(k),
            large: Vec::with_capacity(k),
        }
    }

    /// Categories per table.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of tables in the set.
    pub fn n_tables(&self) -> usize {
        self.prob.len().checked_div(self.k).unwrap_or(0)
    }

    /// (Re)builds table `t` from non-negative `weights`, reusing the set's
    /// storage and build stacks.
    ///
    /// # Panics
    /// Panics if `weights.len() != k`, any weight is negative or non-finite,
    /// or the weights sum to zero.
    pub fn build_table(&mut self, t: usize, weights: &[f64]) {
        assert_eq!(weights.len(), self.k, "alias table weight length mismatch");
        let total: f64 = weights
            .iter()
            .inspect(|&&w| assert!(w.is_finite() && w >= 0.0, "invalid alias weight {w}"))
            .sum();
        assert!(total > 0.0, "alias table weights sum to zero");

        let base = t * self.k;
        let prob = &mut self.prob[base..base + self.k];
        let alias = &mut self.alias[base..base + self.k];
        let scale = self.k as f64 / total;
        self.small.clear();
        self.large.clear();
        for (i, (p, &w)) in prob.iter_mut().zip(weights).enumerate() {
            *p = w * scale;
            if *p < 1.0 {
                self.small.push(i as u32);
            } else {
                self.large.push(i as u32);
            }
        }
        while let Some(s) = self.small.pop() {
            let Some(l) = self.large.pop() else {
                // Conservation leaves prob[s] numerically 1.0; keep it for the
                // canonicalizing drain below instead of dropping it with a
                // stale alias.
                self.small.push(s);
                break;
            };
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                self.small.push(l);
            } else {
                self.large.push(l);
            }
        }
        // Leftovers are numerically 1.0; canonicalize their alias so a
        // rebuild from identical weights reproduces identical storage bits.
        for i in self.small.drain(..).chain(self.large.drain(..)) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
    }

    /// Draws a category from table `t` in O(1) (two RNG draws). The slot
    /// index maps one u64 draw onto `0..k` by multiply-shift rather than
    /// `gen_range`'s modulo — no integer division on the hot path, at a
    /// uniformity bias ≤ `k/2⁶⁴` (orders of magnitude below the `f64`
    /// rounding already inherent in the table's probabilities).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, t: usize, rng: &mut R) -> usize {
        let base = t * self.k;
        let i = ((rng.gen::<u64>() as u128 * self.k as u128) >> 64) as usize;
        if rng.gen::<f64>() < self.prob[base + i] {
            i
        } else {
            self.alias[base + i] as usize
        }
    }

    /// The probability mass table `t` assigns to category `i`, reconstructed
    /// from the alias representation. Used by tests to verify construction;
    /// sums to 1 over `i` up to accumulated rounding.
    pub fn implied_mass(&self, t: usize, i: usize) -> f64 {
        let base = t * self.k;
        let mut mass = self.prob[base + i];
        for j in 0..self.k {
            if j != i && self.alias[base + j] as usize == i {
                mass += 1.0 - self.prob[base + j];
            }
        }
        mass / self.k as f64
    }
}

/// Draws from a `Wishart(df, scale)` distribution via the Bartlett
/// decomposition. `scale` must be SPD; `df` must exceed `dim - 1`.
///
/// Returns a `dim x dim` SPD matrix.
///
/// # Panics
/// Panics on dimension/df violations or a non-SPD scale.
pub fn sample_wishart<R: Rng + ?Sized>(rng: &mut R, df: f64, scale: &Matrix) -> Matrix {
    let d = scale.rows();
    assert_eq!(scale.rows(), scale.cols(), "Wishart scale must be square");
    assert!(
        df > d as f64 - 1.0,
        "Wishart df {df} must exceed dim-1 = {}",
        d - 1
    );
    let chol = Cholesky::decompose_with_jitter(scale, 1e-10, 8)
        .expect("Wishart scale matrix must be positive definite");

    // Bartlett: A lower-triangular with sqrt(chi2_{df-i}) diagonal, N(0,1) below.
    let mut a = Matrix::zeros(d, d);
    for i in 0..d {
        let chi2 = 2.0 * sample_gamma(rng, (df - i as f64) / 2.0, 1.0);
        a.set(i, i, chi2.sqrt());
        for j in 0..i {
            a.set(i, j, sample_standard_normal(rng));
        }
    }
    let la = chol.factor().matmul(&a);
    la.matmul(&la.transpose())
}

/// Draws from a multivariate normal with the given mean and SPD covariance.
///
/// # Panics
/// Panics on dimension mismatch or non-SPD covariance.
pub fn sample_multivariate_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: &[f64],
    cov: &Matrix,
) -> Vec<f64> {
    assert_eq!(
        mean.len(),
        cov.rows(),
        "MVN mean/covariance dimension mismatch"
    );
    let chol = Cholesky::decompose_with_jitter(cov, 1e-10, 8)
        .expect("MVN covariance must be positive definite");
    sample_multivariate_normal_chol(rng, mean, &chol)
}

/// Draws from a multivariate normal given a pre-computed Cholesky factor of
/// the covariance (the fast path inside Gibbs sweeps).
pub fn sample_multivariate_normal_chol<R: Rng + ?Sized>(
    rng: &mut R,
    mean: &[f64],
    cov_chol: &Cholesky,
) -> Vec<f64> {
    let d = cov_chol.dim();
    assert_eq!(mean.len(), d, "MVN mean/Cholesky dimension mismatch");
    let white: Vec<f64> = (0..d).map(|_| sample_standard_normal(rng)).collect();
    let mut colored = cov_chol.apply_factor(&white);
    for (c, &m) in colored.iter_mut().zip(mean) {
        *c += m;
    }
    colored
}

/// Fisher–Yates shuffle of a slice (thin wrapper kept here so model crates do
/// not need the `rand` `SliceRandom` trait in scope).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_normal(&mut r, 2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn gamma_moments_all_regimes() {
        let mut r = rng();
        for &(shape, scale) in &[(0.5, 1.0), (2.0, 2.0), (9.0, 0.5)] {
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| sample_gamma(&mut r, shape, scale)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            assert!(xs.iter().all(|&x| x > 0.0));
            assert!(
                (mean - shape * scale).abs() < 0.15 * (shape * scale).max(0.5),
                "shape={shape} mean={mean}"
            );
        }
    }

    #[test]
    fn beta_mean() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_beta(&mut r, 2.0, 6.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02);
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn dirichlet_is_simplex_and_mean_matches() {
        let mut r = rng();
        let alphas = [1.0, 2.0, 7.0];
        let mut acc = [0.0; 3];
        let n = 5_000;
        for _ in 0..n {
            let d = sample_dirichlet(&mut r, &alphas);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for (a, &x) in acc.iter_mut().zip(&d) {
                *a += x;
            }
        }
        for (i, a) in acc.iter().enumerate() {
            let expect = alphas[i] / 10.0;
            assert!((a / n as f64 - expect).abs() < 0.02, "component {i}");
        }
    }

    #[test]
    fn categorical_frequencies() {
        let mut r = rng();
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[sample_categorical(&mut r, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn categorical_rejects_all_zero() {
        let mut r = rng();
        sample_categorical(&mut r, &[0.0, 0.0]);
    }

    #[test]
    fn categorical_log_matches_linear() {
        let mut r = rng();
        let logw = [0.0_f64.ln(), 1.0, 2.0]; // -inf, 1, 2
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_categorical_log(&mut r, &logw)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - std::f64::consts::E).abs() < 0.35, "ratio {ratio}");
    }

    #[test]
    fn alias_table_matches_weights() {
        let mut r = rng();
        let w = [0.1, 0.2, 0.0, 0.7];
        let table = AliasTable::new(&w);
        let mut counts = [0usize; 4];
        let n = 50_000;
        for _ in 0..n {
            counts[table.sample(&mut r)] += 1;
        }
        assert_eq!(counts[2], 0);
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 / n as f64 - w[i]).abs() < 0.01, "category {i}");
        }
    }

    #[test]
    fn alias_set_matches_single_tables() {
        let mut r = rng();
        let mut set = AliasTableSet::new(2, 4);
        set.build_table(0, &[0.1, 0.2, 0.0, 0.7]);
        set.build_table(1, &[1.0, 1.0, 1.0, 1.0]);
        let mut counts = [0usize; 4];
        let n = 50_000;
        for _ in 0..n {
            counts[set.sample(0, &mut r)] += 1;
        }
        assert_eq!(counts[2], 0);
        for (i, &c) in counts.iter().enumerate() {
            let w = [0.1, 0.2, 0.0, 0.7][i];
            assert!((c as f64 / n as f64 - w).abs() < 0.01, "category {i}");
        }
        for i in 0..4 {
            assert!((set.implied_mass(1, i) - 0.25).abs() < 1e-12);
        }
    }

    mod alias_props {
        use super::*;
        use proptest::prelude::*;

        // Zeroes ~1/4 of the raw weights via `mask` (so zero-weight
        // categories are exercised on most cases) while keeping slot 0
        // positive so the total never collapses to zero.
        fn masked(mut w: Vec<f64>, mask: u32) -> Vec<f64> {
            for (i, x) in w.iter_mut().enumerate().skip(1) {
                if (mask >> (i % 16)) & 0x3 == 0 {
                    *x = 0.0;
                }
            }
            w
        }

        fn raw_weights() -> impl Strategy<Value = Vec<f64>> {
            prop::collection::vec(0.01f64..10.0, 1..24)
        }

        proptest! {
            // Construction preserves the distribution: the implied per-category
            // mass equals the normalized weight within accumulated ulps, and the
            // masses sum to one.
            #[test]
            fn implied_masses_match_weights(w in raw_weights(), mask in 0u32..u32::MAX) {
                let w = masked(w, mask);
                let k = w.len();
                let mut set = AliasTableSet::new(1, k);
                set.build_table(0, &w);
                let total: f64 = w.iter().sum();
                let mut mass_sum = 0.0;
                for (i, &wi) in w.iter().enumerate() {
                    let mass = set.implied_mass(0, i);
                    mass_sum += mass;
                    prop_assert!(
                        (mass - wi / total).abs() < 1e-9,
                        "category {i}: implied {mass} vs weight {}",
                        wi / total
                    );
                }
                prop_assert!((mass_sum - 1.0).abs() < 1e-9);
            }

            // Zero-weight categories carry exactly zero mass and are never drawn:
            // their scaled prob is 0.0, and a zero-weight slot can never enter the
            // large stack, so no donor aliases to it.
            #[test]
            fn zero_weight_categories_never_sampled(
                w in raw_weights(),
                mask in 0u32..u32::MAX,
                seed in 0u64..1000,
            ) {
                let w = masked(w, mask);
                let k = w.len();
                let mut set = AliasTableSet::new(1, k);
                set.build_table(0, &w);
                for (i, &wi) in w.iter().enumerate() {
                    if wi == 0.0 {
                        prop_assert_eq!(set.implied_mass(0, i), 0.0);
                    }
                }
                let mut r = StdRng::seed_from_u64(seed);
                for _ in 0..200 {
                    let s = set.sample(0, &mut r);
                    prop_assert!(w[s] > 0.0, "drew zero-weight category {s}");
                }
            }

            // Rebuilding a table slot after its weights changed produces storage
            // bit-identical to a fresh build from the new weights — the property
            // that makes per-sweep alias refresh a pure function of the count
            // snapshot.
            #[test]
            fn rebuild_matches_fresh_build(
                w1 in raw_weights(),
                w2 in raw_weights(),
                mask in 0u32..u32::MAX,
            ) {
                let (w1, w2) = (masked(w1, mask), masked(w2, mask.rotate_left(7)));
                let k = w1.len().max(w2.len());
                let pad = |w: &[f64]| {
                    let mut p = w.to_vec();
                    p.resize(k, 0.5);
                    p
                };
                let (w1, w2) = (pad(&w1), pad(&w2));
                let mut reused = AliasTableSet::new(1, k);
                reused.build_table(0, &w1);
                reused.build_table(0, &w2);
                let mut fresh = AliasTableSet::new(1, k);
                fresh.build_table(0, &w2);
                for i in 0..k {
                    prop_assert_eq!(
                        reused.prob[i].to_bits(),
                        fresh.prob[i].to_bits(),
                        "prob[{}] differs after rebuild",
                        i
                    );
                    prop_assert_eq!(reused.alias[i], fresh.alias[i]);
                }
            }
        }
    }

    #[test]
    fn wishart_mean_is_df_times_scale() {
        let mut r = rng();
        let scale = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 2.0]]);
        let df = 5.0;
        let mut acc = Matrix::zeros(2, 2);
        let n = 3_000;
        for _ in 0..n {
            acc.axpy(1.0 / n as f64, &sample_wishart(&mut r, df, &scale));
        }
        for i in 0..2 {
            for j in 0..2 {
                let expect = df * scale.get(i, j);
                assert!((acc.get(i, j) - expect).abs() < 0.2 * expect.abs().max(1.0));
            }
        }
    }

    #[test]
    fn mvn_moments() {
        let mut r = rng();
        let mean = [1.0, -1.0];
        let cov = Matrix::from_rows(&[&[2.0, 0.8], &[0.8, 1.0]]);
        let n = 20_000;
        let mut m = [0.0; 2];
        let mut c01 = 0.0;
        let samples: Vec<Vec<f64>> = (0..n)
            .map(|_| sample_multivariate_normal(&mut r, &mean, &cov))
            .collect();
        for s in &samples {
            m[0] += s[0];
            m[1] += s[1];
        }
        m[0] /= n as f64;
        m[1] /= n as f64;
        for s in &samples {
            c01 += (s[0] - m[0]) * (s[1] - m[1]);
        }
        c01 /= n as f64;
        assert!((m[0] - 1.0).abs() < 0.05 && (m[1] + 1.0).abs() < 0.05);
        assert!((c01 - 0.8).abs() < 0.08, "cov {c01}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let mut xs: Vec<u32> = (0..100).collect();
        shuffle(&mut r, &mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input untouched"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50)
                .map(|_| sample_categorical(&mut r, &[1.0, 2.0, 3.0]))
                .collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50)
                .map(|_| sample_categorical(&mut r, &[1.0, 2.0, 3.0]))
                .collect()
        };
        assert_eq!(a, b);
    }
}
