//! Company representations `B_i` (Equation 4).
//!
//! The paper compares clustering quality over several company feature
//! spaces (Figure 7): raw binary vectors, raw TF-IDF vectors, LDA topic
//! mixtures trained on binary or TF-IDF input, and (for completeness of the
//! Section-4 model list) LSTM hidden-state embeddings. This module builds
//! each of them as a row-per-company [`Matrix`].

use crate::error::CoreError;
use hlm_corpus::tfidf::TfIdf;
use hlm_corpus::{CompanyId, Corpus};
use hlm_lda::{LdaModel, WeightedDoc};
use hlm_linalg::Matrix;
use hlm_lstm::LstmLm;

/// Binary bag-of-words documents (unit weight per owned product) for a set
/// of companies — the LDA training input for the "binary" curves.
pub fn binary_docs(corpus: &Corpus, ids: &[CompanyId]) -> Vec<WeightedDoc> {
    ids.iter()
        .map(|&id| {
            corpus
                .company(id)
                .product_set()
                .into_iter()
                .map(|p| (p.index(), 1.0))
                .collect()
        })
        .collect()
}

/// TF-IDF weighted documents (IDF weight per owned product) — the LDA
/// training input for the "TF-IDF" curves of Figures 2 and 7.
pub fn tfidf_docs(corpus: &Corpus, ids: &[CompanyId], tfidf: &TfIdf) -> Vec<WeightedDoc> {
    ids.iter()
        .map(|&id| {
            corpus
                .company(id)
                .product_set()
                .into_iter()
                .map(|p| (p.index(), tfidf.idf()[p.index()].max(f64::MIN_POSITIVE)))
                .collect()
        })
        .collect()
}

/// Raw binary representation matrix (`N x M`).
pub fn raw_binary(corpus: &Corpus, ids: &[CompanyId]) -> Matrix {
    corpus.binary_matrix_for(ids)
}

/// Raw TF-IDF representation matrix (`N x M`).
pub fn raw_tfidf(corpus: &Corpus, ids: &[CompanyId], tfidf: &TfIdf) -> Matrix {
    tfidf.matrix_for(corpus, ids)
}

/// LDA topic-mixture representations (`N x K`): each company's fold-in θ
/// under the trained model, using the same weighted documents the model was
/// trained on (binary or TF-IDF).
pub fn lda_representations(model: &LdaModel, docs: &[WeightedDoc]) -> Matrix {
    let k = model.n_topics();
    let mut out = Matrix::zeros(docs.len(), k);
    for (i, doc) in docs.iter().enumerate() {
        let theta = model.infer_theta(doc);
        out.row_mut(i).copy_from_slice(&theta);
    }
    out
}

/// Latent Semantic Indexing representations (`N x K`): the row embeddings
/// `U diag(S)` of a rank-`K` truncated SVD of the given company-product
/// matrix (binary or TF-IDF). LSI is the classical topic-modelling
/// alternative the paper cites in Section 3.5 — competitive features, but
/// without LDA's interpretability.
///
/// # Errors
/// [`CoreError::InvalidRank`] if `k == 0`, the matrix is empty, or `k`
/// exceeds either dimension.
pub fn lsi_representations(
    company_product: &Matrix,
    k: usize,
    seed: u64,
) -> Result<Matrix, CoreError> {
    let (rows, cols) = company_product.shape();
    if k == 0 || k > rows || k > cols {
        return Err(CoreError::InvalidRank { k, rows, cols });
    }
    Ok(hlm_linalg::truncated_svd(company_product, k, seed).row_embeddings())
}

/// Fisher-kernel company representations (Section 3.4): a GMM is fit over
/// the product-embedding space (rows of `product_embeddings`, e.g. the LDA
/// `p(topic | product)` vectors), and each company is represented by the
/// improved Fisher vector of its owned products' embeddings. Output is
/// `N x (2 · K_gmm · D)`.
///
/// # Errors
/// [`CoreError::EmbeddingMismatch`] if `product_embeddings` has fewer rows
/// than the vocabulary; [`CoreError::InvalidRank`] if the GMM would have
/// zero components or more components than embedding rows.
pub fn fisher_representations(
    corpus: &Corpus,
    ids: &[CompanyId],
    product_embeddings: &Matrix,
    gmm_components: usize,
    seed: u64,
) -> Result<Matrix, CoreError> {
    if product_embeddings.rows() < corpus.vocab().len() {
        return Err(CoreError::EmbeddingMismatch {
            rows: product_embeddings.rows(),
            products: corpus.vocab().len(),
        });
    }
    if gmm_components == 0 || gmm_components > product_embeddings.rows() {
        return Err(CoreError::InvalidRank {
            k: gmm_components,
            rows: product_embeddings.rows(),
            cols: product_embeddings.cols(),
        });
    }
    let gmm = hlm_cluster::Gmm::fit(
        product_embeddings,
        &hlm_cluster::GmmOptions {
            seed,
            ..hlm_cluster::GmmOptions::new(gmm_components)
        },
    );
    let fv_dim = 2 * gmm.k() * gmm.dim();
    let mut out = Matrix::zeros(ids.len(), fv_dim);
    for (i, &id) in ids.iter().enumerate() {
        let rows: Vec<&[f64]> = corpus
            .company(id)
            .product_set()
            .into_iter()
            .map(|p| product_embeddings.row(p.index()))
            .collect();
        let fv = gmm.fisher_vector(&rows);
        out.row_mut(i).copy_from_slice(&fv);
    }
    Ok(out)
}

/// LSTM company embeddings (`N x H`): the final top-layer hidden state after
/// consuming each company's acquisition sequence.
pub fn lstm_representations(model: &LstmLm, corpus: &Corpus, ids: &[CompanyId]) -> Matrix {
    let h = model.config().hidden_size;
    let mut out = Matrix::zeros(ids.len(), h);
    for (i, &id) in ids.iter().enumerate() {
        let seq: Vec<usize> = corpus
            .company(id)
            .product_sequence()
            .into_iter()
            .map(|p| p.index())
            .collect();
        let emb = model.encode(&seq);
        out.row_mut(i).copy_from_slice(&emb);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_datagen::GeneratorConfig;
    use hlm_lda::{GibbsTrainer, LdaConfig};
    use hlm_lstm::LstmConfig;

    fn corpus() -> Corpus {
        hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(120, 5))
    }

    #[test]
    fn binary_docs_match_product_sets() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let docs = binary_docs(&c, &ids);
        assert_eq!(docs.len(), 120);
        for (doc, &id) in docs.iter().zip(&ids) {
            assert_eq!(doc.len(), c.company(id).product_count());
            assert!(doc.iter().all(|&(_, w)| w == 1.0));
        }
    }

    #[test]
    fn tfidf_docs_weight_rare_products_higher() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let tfidf = TfIdf::fit(&c, &ids);
        let docs = tfidf_docs(&c, &ids, &tfidf);
        let df = c.document_frequencies();
        // Find a company owning both a popular and a rare product.
        let mut checked = false;
        for doc in &docs {
            if doc.len() < 2 {
                continue;
            }
            let (most_common, rarest) = {
                let mut sorted: Vec<&(usize, f64)> = doc.iter().collect();
                sorted.sort_by_key(|(w, _)| std::cmp::Reverse(df[*w]));
                (sorted[0], sorted[sorted.len() - 1])
            };
            if df[most_common.0] > df[rarest.0] {
                assert!(rarest.1 > most_common.1, "rarer product must weigh more");
                checked = true;
                break;
            }
        }
        assert!(checked, "no suitable company found");
    }

    #[test]
    fn raw_matrices_have_matching_shapes() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let tfidf = TfIdf::fit(&c, &ids);
        let b = raw_binary(&c, &ids);
        let t = raw_tfidf(&c, &ids, &tfidf);
        assert_eq!(b.shape(), (120, 38));
        assert_eq!(t.shape(), (120, 38));
        // TF-IDF is zero exactly where binary is zero.
        for i in 0..b.rows() {
            for j in 0..38 {
                assert_eq!(b.get(i, j) == 0.0, t.get(i, j) == 0.0);
            }
        }
    }

    #[test]
    fn lda_representations_are_topic_distributions() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let docs = binary_docs(&c, &ids);
        let lda = GibbsTrainer::new(LdaConfig {
            n_topics: 3,
            vocab_size: 38,
            n_iters: 40,
            burn_in: 20,
            sample_lag: 5,
            ..Default::default()
        })
        .fit(&docs);
        let b = lda_representations(&lda, &docs);
        assert_eq!(b.shape(), (120, 3));
        for i in 0..b.rows() {
            assert!((b.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lsi_representations_capture_profile_structure() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let binary = raw_binary(&c, &ids);
        let lsi = lsi_representations(&binary, 3, 7).unwrap();
        assert_eq!(lsi.shape(), (120, 3));
        assert!(lsi.is_finite());
        // LSI features separate latent profiles better than chance: check
        // 1-NN label agreement against the generator's profile labels.
        let labels: Vec<usize> = ids
            .iter()
            .map(|&id| c.company(id).industry.0 as usize % 3)
            .collect();
        let agree = crate::similarity::neighbor_label_agreement(
            &lsi,
            &labels,
            crate::similarity::DistanceMetric::Cosine,
        );
        assert!(
            agree > 0.5,
            "LSI 1-NN agreement {agree} must beat chance 1/3"
        );
    }

    #[test]
    fn fisher_representations_separate_profiles() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let docs = binary_docs(&c, &ids);
        let lda = GibbsTrainer::new(LdaConfig {
            n_topics: 3,
            vocab_size: 38,
            n_iters: 60,
            burn_in: 30,
            sample_lag: 5,
            ..Default::default()
        })
        .fit(&docs);
        let emb = lda.product_embeddings();
        let fv = fisher_representations(&c, &ids, &emb, 3, 9).unwrap();
        assert_eq!(fv.shape(), (120, 2 * 3 * 3));
        assert!(fv.is_finite());
        // Fisher vectors carry the latent-profile signal: 1-NN agreement
        // with the generator's profile labels beats chance.
        let labels: Vec<usize> = ids
            .iter()
            .map(|&id| c.company(id).industry.0 as usize % 3)
            .collect();
        let agree = crate::similarity::neighbor_label_agreement(
            &fv,
            &labels,
            crate::similarity::DistanceMetric::Cosine,
        );
        assert!(
            agree > 0.5,
            "Fisher 1-NN agreement {agree} must beat chance 1/3"
        );
    }

    #[test]
    fn rejects_bad_rank_and_embedding_shapes() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let binary = raw_binary(&c, &ids);
        let zero = lsi_representations(&binary, 0, 7);
        assert_eq!(
            zero.unwrap_err(),
            CoreError::InvalidRank {
                k: 0,
                rows: 120,
                cols: 38
            }
        );
        let over = lsi_representations(&binary, 39, 7);
        assert_eq!(
            over.unwrap_err(),
            CoreError::InvalidRank {
                k: 39,
                rows: 120,
                cols: 38
            }
        );
        // Embedding matrix covering only half the vocabulary.
        let short = Matrix::zeros(19, 3);
        let fv = fisher_representations(&c, &ids, &short, 2, 9);
        assert_eq!(
            fv.unwrap_err(),
            CoreError::EmbeddingMismatch {
                rows: 19,
                products: 38
            }
        );
    }

    #[test]
    fn lstm_representations_shape_and_determinism() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().take(10).collect();
        let model = LstmLm::new(
            LstmConfig {
                vocab_size: 38,
                hidden_size: 12,
                n_layers: 1,
                dropout: 0.0,
                ..Default::default()
            },
            3,
        );
        let a = lstm_representations(&model, &c, &ids);
        let b = lstm_representations(&model, &c, &ids);
        assert_eq!(a.shape(), (10, 12));
        assert_eq!(a, b);
    }
}
