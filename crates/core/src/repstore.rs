//! Snapshot scoring store for the serving read path (DESIGN.md §3.10).
//!
//! Section 2 of the paper names "the computational complexity of the
//! similarity search problem due to the large number of companies" as the
//! deployed tool's bottleneck. Training got its kernel layer in PR 8; this
//! module is the query-side counterpart: a [`RepStore`] snapshots the
//! representation matrix at index-build time into a layout built for
//! scanning, so every query pays one dot product per candidate instead of
//! three.
//!
//! Layout:
//!
//! * **Cell-major** — rows are physically reordered so each IVF cell's rows
//!   are contiguous (`cell_start` offsets + an id remap both ways). Probing
//!   a cell is a linear walk over packed memory, never a gather through an
//!   index list. A flat store (one cell, identity remap) borrows the
//!   original matrix via `Arc` instead of copying it.
//! * **Cached norms** — per-row L2 norms are computed once at build time.
//!   Cosine becomes `1 − clamp(dot(q, r) / (‖q‖·‖r‖))` with both norms
//!   cached/hoisted: *numerically bit-identical* to
//!   [`hlm_linalg::vector::cosine_distance`] (same `dot`, same operation
//!   order) while dropping the two norm recomputations — i.e. 3 dots per
//!   candidate down to 1. Euclidean keeps the exact elementwise
//!   sum-of-squares kernel so its distances are also bit-identical; its win
//!   is layout only.
//! * **Opt-in f32** — [`StorePrecision::F32`] additionally materializes
//!   4-lane-unrolled `f32` scoring data ([`hlm_linalg::fastmath::dot_f32`]):
//!   pre-normalized unit rows for cosine (`1 − dot(q̂, r̂)`) and raw rows
//!   plus cached squared norms for Euclidean
//!   (`√max(0, ‖q‖² + ‖r‖² − 2·dot)`). The f32 path is *not* bit-identical
//!   to the exact scan; it is gated by recall-equivalence tests
//!   (recall@10 ≥ 0.999 in the CI `perf` job) rather than bit-identity.
//!
//! Exactness contract: with [`StorePrecision::F64`] every ranking returned
//! here — single query, blocked batch, any probe set, any thread count — is
//! byte-identical (tie-breaks included) to the pre-store scalar scan
//! [`crate::similarity::top_k_similar_scalar`], because each (query, row)
//! pair's distance has identical bits and the k-selection tie-breaks on the
//! *original* row id. Large scans fan out across fixed row chunks on the
//! `hlm-par` pool with an ordered reduction, so the result is independent of
//! the thread count (the PR 3 determinism contract).
//!
//! Degenerate rows: an all-zero representation row (a company with an empty
//! install base) has norm 0; under cosine its distance to anything is
//! defined as 1.0 — maximally dissimilar short of opposition — matching
//! [`hlm_linalg::vector::cosine_distance`]. The f32 path preserves this
//! convention for free: a zero row normalizes to the zero vector, its dot
//! with any query is 0, and `1 − 0 = 1.0` exactly. Non-*finite* rows (NaN
//! or ±∞ from a diverged training run) are detected once at build time and
//! surfaced through [`RepStore::first_non_finite`], so callers can return a
//! typed error instead of panicking mid-scan.

use crate::similarity::{DistanceMetric, TopK};
use hlm_linalg::fastmath::dot_f32;
use hlm_linalg::vector::{dot, euclidean_distance_sq, norm};
use hlm_linalg::Matrix;
use std::sync::Arc;

/// Scoring arithmetic of a [`RepStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorePrecision {
    /// Exact `f64` scoring — byte-identical rankings to the scalar scan.
    F64,
    /// Reduced-precision `f32` scoring over pre-normalized rows — faster
    /// and half the scan footprint, gated by recall equivalence instead of
    /// bit-identity. The exact `f64` data is kept alongside, so exact
    /// baselines (e.g. recall diagnostics) remain available.
    F32,
}

impl StorePrecision {
    /// Stable label for benchmark records and caveat fields.
    pub fn label(self) -> &'static str {
        match self {
            StorePrecision::F64 => "f64",
            StorePrecision::F32 => "f32",
        }
    }
}

/// Row storage: a flat store shares the source matrix (identity layout); a
/// cell-major store owns its reordered copy.
#[derive(Debug)]
enum RowData {
    Shared(Arc<Matrix>),
    Owned(Vec<f64>),
}

/// Store-row ↔ original-row translation for cell-major layouts. `None`
/// means identity (flat store).
#[derive(Debug)]
struct Remap {
    /// `orig_of[store_row] = original row`.
    orig_of: Vec<u32>,
    /// `store_of[original_row] = store row`.
    store_of: Vec<u32>,
}

/// Reduced-precision scoring data (see [`StorePrecision::F32`]).
#[derive(Debug)]
struct F32Block {
    /// Cosine: unit rows (zero rows stay zero). Euclidean: raw rows.
    data: Vec<f32>,
    /// Euclidean only: cached `‖r‖²` per store row (empty for cosine).
    sq_norms: Vec<f32>,
}

/// A query vector prepared once per query: the `f64` copy with its hoisted
/// norm, plus the f32 image the reduced-precision kernels score against.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    q: Vec<f64>,
    /// `‖q‖` — hoisted so cosine never recomputes it per candidate.
    q_norm: f64,
    /// Cosine: unit query (zero stays zero). Euclidean: raw cast.
    q32: Vec<f32>,
    /// Euclidean: `‖q‖²` in f32. Cosine: unused (0).
    q32_sq: f32,
}

/// Rows scanned per fan-out task when a large scan engages the `hlm-par`
/// pool. Fixed (never derived from the thread count) so chunk boundaries —
/// and thus the exact work split — are reproducible; correctness does not
/// depend on it because k-selection is input-order independent.
const SCAN_CHUNK: usize = 8_192;

/// Store rows per block in the blocked multi-query kernel: a block of rows
/// stays cache-hot while every query in the micro-batch scores it. 64 rows
/// of ≤64 dims is ≤32 KiB — inside L1 on anything current.
const ROW_BLOCK: usize = 64;

/// Approximate scoring cost per (row, dim) cell in `hlm-par` budget units
/// (≈ ns): one multiply-add plus the loop overhead around it.
const SCAN_UNIT_COST: u64 = 2;

/// The cell-major scoring store. See the module docs for layout and the
/// exactness contract.
#[derive(Debug)]
pub struct RepStore {
    dims: usize,
    metric: DistanceMetric,
    precision: StorePrecision,
    data: RowData,
    /// Per-store-row L2 norm, cached at build time.
    norms: Vec<f64>,
    /// Cell boundaries: cell `c` is store rows `cell_start[c]..cell_start[c+1]`.
    cell_start: Vec<usize>,
    remap: Option<Remap>,
    f32_block: Option<F32Block>,
    /// Original row of the first non-finite representation, if any.
    first_non_finite: Option<u32>,
}

impl RepStore {
    /// Builds a flat store (one cell, identity remap) sharing `reps` — no
    /// row copy; only norms (and the f32 image, when requested) are
    /// materialized. This is the exact-scan store behind
    /// [`crate::app::SalesApplication`].
    pub fn flat(reps: Arc<Matrix>, metric: DistanceMetric, precision: StorePrecision) -> RepStore {
        let (rows, dims) = (reps.rows(), reps.cols());
        let mut store = RepStore {
            dims,
            metric,
            precision,
            data: RowData::Shared(reps),
            norms: Vec::new(),
            cell_start: vec![0, rows],
            remap: None,
            f32_block: None,
            first_non_finite: None,
        };
        store.finish_build(rows);
        store
    }

    /// Builds a cell-major store: rows physically reordered so `cells[c]`'s
    /// rows are contiguous, with the id remap recorded both ways. `cells`
    /// must partition `0..reps.rows()` (each row in exactly one cell) — the
    /// shape [`crate::index::ClusteredIndex`] produces.
    ///
    /// # Panics
    /// Panics if `cells` does not cover every row exactly once.
    pub fn cell_major(
        reps: &Matrix,
        cells: &[Vec<usize>],
        metric: DistanceMetric,
        precision: StorePrecision,
    ) -> RepStore {
        let (rows, dims) = (reps.rows(), reps.cols());
        let mut data = Vec::with_capacity(rows * dims);
        let mut orig_of = Vec::with_capacity(rows);
        let mut store_of = vec![u32::MAX; rows];
        let mut cell_start = Vec::with_capacity(cells.len() + 1);
        cell_start.push(0);
        for cell in cells {
            for &orig in cell {
                assert!(
                    store_of[orig] == u32::MAX,
                    "row {orig} appears in more than one cell"
                );
                store_of[orig] = orig_of.len() as u32;
                orig_of.push(orig as u32);
                data.extend_from_slice(reps.row(orig));
            }
            cell_start.push(orig_of.len());
        }
        assert_eq!(orig_of.len(), rows, "cells must cover every row");
        let mut store = RepStore {
            dims,
            metric,
            precision,
            data: RowData::Owned(data),
            norms: Vec::new(),
            cell_start,
            remap: Some(Remap { orig_of, store_of }),
            f32_block: None,
            first_non_finite: None,
        };
        store.finish_build(rows);
        store
    }

    /// Caches norms, detects non-finite rows, and materializes the f32
    /// image when the store is reduced-precision.
    fn finish_build(&mut self, rows: usize) {
        self.norms = (0..rows).map(|s| norm(self.store_row_slice(s))).collect();
        self.first_non_finite = self
            .norms
            .iter()
            .position(|n| !n.is_finite())
            .map(|s| self.original_row(s) as u32);
        if self.precision == StorePrecision::F32 {
            let mut data = Vec::with_capacity(rows * self.dims);
            let mut sq_norms = Vec::new();
            for s in 0..rows {
                let row = self.store_row_slice(s);
                match self.metric {
                    DistanceMetric::Cosine => {
                        // Pre-normalize in f64, then cast: zero rows stay
                        // zero, preserving the distance-1.0 convention.
                        let n = self.norms[s];
                        if n == 0.0 {
                            data.extend(std::iter::repeat_n(0.0f32, self.dims));
                        } else {
                            data.extend(row.iter().map(|&x| (x / n) as f32));
                        }
                    }
                    DistanceMetric::Euclidean => {
                        data.extend(row.iter().map(|&x| x as f32));
                    }
                }
            }
            if self.metric == DistanceMetric::Euclidean {
                sq_norms = (0..rows)
                    .map(|s| {
                        let r = &data[s * self.dims..(s + 1) * self.dims];
                        dot_f32(r, r)
                    })
                    .collect();
            }
            self.f32_block = Some(F32Block { data, sq_norms });
        }
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// True when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Representation dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of cells (1 for a flat store).
    pub fn n_cells(&self) -> usize {
        self.cell_start.len() - 1
    }

    /// The metric this store scores under.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The scoring arithmetic this store was built with.
    pub fn precision(&self) -> StorePrecision {
        self.precision
    }

    /// Original row of the first representation containing a non-finite
    /// value, if any. Callers must refuse to rank such a store (the
    /// k-selection would panic on a NaN distance mid-scan).
    pub fn first_non_finite(&self) -> Option<u32> {
        self.first_non_finite
    }

    /// Original row id of store row `s` (the remap round-trip partner of
    /// [`RepStore::store_row`]).
    pub fn original_row(&self, s: usize) -> usize {
        match &self.remap {
            Some(r) => r.orig_of[s] as usize,
            None => s,
        }
    }

    /// Store row holding original row `orig`.
    pub fn store_row(&self, orig: usize) -> usize {
        match &self.remap {
            Some(r) => r.store_of[orig] as usize,
            None => orig,
        }
    }

    /// The (exact f64) representation of original row `orig`.
    pub fn row_by_original(&self, orig: usize) -> &[f64] {
        self.store_row_slice(self.store_row(orig))
    }

    fn store_row_slice(&self, s: usize) -> &[f64] {
        match &self.data {
            RowData::Shared(m) => m.row(s),
            RowData::Owned(d) => &d[s * self.dims..(s + 1) * self.dims],
        }
    }

    /// Prepares a query vector for repeated scoring: copies it, hoists its
    /// norm, and builds its f32 image.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn prepare(&self, q: &[f64]) -> PreparedQuery {
        assert_eq!(q.len(), self.dims, "query dimension mismatch");
        let q_norm = norm(q);
        let (q32, q32_sq) = match self.metric {
            DistanceMetric::Cosine => {
                let unit: Vec<f32> = if q_norm == 0.0 {
                    vec![0.0f32; q.len()]
                } else {
                    q.iter().map(|&x| (x / q_norm) as f32).collect()
                };
                (unit, 0.0f32)
            }
            DistanceMetric::Euclidean => {
                let raw: Vec<f32> = q.iter().map(|&x| x as f32).collect();
                let sq = dot_f32(&raw, &raw);
                (raw, sq)
            }
        };
        PreparedQuery {
            q: q.to_vec(),
            q_norm,
            q32,
            q32_sq,
        }
    }

    /// Exact f64 distance between the prepared query and store row `s` —
    /// bit-identical to `metric.distance(q, row)` (see module docs).
    #[inline]
    fn dist_f64(&self, pq: &PreparedQuery, s: usize) -> f64 {
        let r = self.store_row_slice(s);
        match self.metric {
            DistanceMetric::Cosine => {
                let nr = self.norms[s];
                if pq.q_norm == 0.0 || nr == 0.0 {
                    return 1.0;
                }
                // Same operations, same order as `cosine_distance`, with
                // both norms cached instead of recomputed.
                let cos = (dot(&pq.q, r) / (pq.q_norm * nr)).clamp(-1.0, 1.0);
                1.0 - cos
            }
            DistanceMetric::Euclidean => euclidean_distance_sq(&pq.q, r).sqrt(),
        }
    }

    /// Reduced-precision f32 distance between the prepared query and store
    /// row `s`.
    #[inline]
    fn dist_f32(&self, pq: &PreparedQuery, s: usize) -> f64 {
        let block = self
            .f32_block
            .as_ref()
            .expect("f32 scoring requires an F32 store");
        let r = &block.data[s * self.dims..(s + 1) * self.dims];
        match self.metric {
            DistanceMetric::Cosine => {
                // Rows and query are pre-normalized (zero stays zero), so
                // the dot *is* the cosine; a zero row or query scores 0 and
                // lands on the 1.0 convention automatically.
                let cos = dot_f32(&pq.q32, r).clamp(-1.0, 1.0);
                (1.0f32 - cos) as f64
            }
            DistanceMetric::Euclidean => {
                let d2 = pq.q32_sq + block.sq_norms[s] - 2.0 * dot_f32(&pq.q32, r);
                (d2.max(0.0).sqrt()) as f64
            }
        }
    }

    #[inline]
    fn dist(&self, pq: &PreparedQuery, s: usize) -> f64 {
        match self.precision {
            StorePrecision::F64 => self.dist_f64(pq, s),
            StorePrecision::F32 => self.dist_f32(pq, s),
        }
    }

    /// The store-row ranges covered by `cells` (`None` = every cell), plus
    /// the total row count.
    fn ranges(&self, cells: Option<&[usize]>) -> (Vec<(usize, usize)>, usize) {
        let ranges: Vec<(usize, usize)> = match cells {
            None => vec![(0, self.len())],
            Some(cs) => cs
                .iter()
                .map(|&c| (self.cell_start[c], self.cell_start[c + 1]))
                .collect(),
        };
        let total = ranges.iter().map(|&(a, b)| b - a).sum();
        (ranges, total)
    }

    /// Scalar scan of `start..end` into `acc` under the store's precision.
    fn scan_range_into(
        &self,
        pq: &PreparedQuery,
        start: usize,
        end: usize,
        exclude: Option<usize>,
        acc: &mut TopK,
    ) {
        for s in start..end {
            let orig = self.original_row(s);
            if Some(orig) == exclude {
                continue;
            }
            acc.push(orig, self.dist(pq, s));
        }
    }

    /// Top-`k` rows for one prepared query over the probed `cells` (`None`
    /// = all cells — the exact scan), as `(original row, distance)` sorted
    /// ascending with deterministic tie-breaks on the original row id.
    /// `exclude` drops one original row (the query itself) before
    /// selection.
    ///
    /// Large scans fan out across fixed [`SCAN_CHUNK`] row chunks on the
    /// global `hlm-par` pool; the merge re-selects from the per-chunk
    /// winners in chunk order, so the result is bit-identical at any thread
    /// count — and identical to the serial scan, because k-selection under
    /// `(distance, original row)` is input-order independent.
    pub fn top_k(
        &self,
        pq: &PreparedQuery,
        cells: Option<&[usize]>,
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<(usize, f64)> {
        let (ranges, total) = self.ranges(cells);
        // Fixed chunk boundaries: split every probed range into
        // SCAN_CHUNK-row pieces, independent of the thread count.
        let chunks: Vec<(usize, usize)> = ranges
            .iter()
            .flat_map(|&(a, b)| {
                (a..b)
                    .step_by(SCAN_CHUNK.max(1))
                    .map(move |s| (s, (s + SCAN_CHUNK).min(b)))
            })
            .collect();
        let budget = hlm_par::Budget::items(total, (self.dims as u64).max(1) * SCAN_UNIT_COST);
        let pool = hlm_par::Pool::global();
        if chunks.len() > 1 && budget.engages(pool.threads()) {
            let locals = pool.run(chunks.len(), |i| {
                let (a, b) = chunks[i];
                let mut acc = TopK::new(k);
                self.scan_range_into(pq, a, b, exclude, &mut acc);
                acc.into_sorted()
            });
            // Ordered reduction: re-select from the chunk winners.
            let mut acc = TopK::new(k);
            for local in locals {
                for (orig, d) in local {
                    acc.push(orig, d);
                }
            }
            acc.into_sorted()
        } else {
            let mut acc = TopK::new(k);
            for &(a, b) in &chunks {
                self.scan_range_into(pq, a, b, exclude, &mut acc);
            }
            acc.into_sorted()
        }
    }

    /// [`RepStore::top_k`] forced onto the exact f64 path regardless of the
    /// store's precision — the baseline for recall diagnostics on an f32
    /// store.
    pub fn top_k_exact_f64(
        &self,
        pq: &PreparedQuery,
        cells: Option<&[usize]>,
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<(usize, f64)> {
        let (ranges, _) = self.ranges(cells);
        let mut acc = TopK::new(k);
        for (a, b) in ranges {
            for s in a..b {
                let orig = self.original_row(s);
                if Some(orig) == exclude {
                    continue;
                }
                acc.push(orig, self.dist_f64(pq, s));
            }
        }
        acc.into_sorted()
    }

    /// Filtered scalar scan over every row: `keep` decides (by original
    /// row id) *before* any distance is computed, so non-matching rows
    /// never pay for one. Identical to ranking all matching rows.
    pub fn top_k_filtered(
        &self,
        pq: &PreparedQuery,
        k: usize,
        exclude: Option<usize>,
        mut keep: impl FnMut(usize) -> bool,
    ) -> Vec<(usize, f64)> {
        let mut acc = TopK::new(k);
        for s in 0..self.len() {
            let orig = self.original_row(s);
            if Some(orig) == exclude || !keep(orig) {
                continue;
            }
            acc.push(orig, self.dist(pq, s));
        }
        acc.into_sorted()
    }

    /// Blocked multi-query kernel (gemm-shaped): every query in the
    /// micro-batch scores a [`ROW_BLOCK`]-row block while it is cache-hot,
    /// instead of each query streaming the whole store through cache on its
    /// own. Returns per-query top-`k` in query order, each identical to the
    /// corresponding [`RepStore::top_k`] over all cells — the candidate set
    /// and per-pair distances are the same; only the traversal order
    /// changes, and k-selection is order-independent.
    pub fn top_k_batch(
        &self,
        pqs: &[PreparedQuery],
        k: usize,
        excludes: &[Option<usize>],
    ) -> Vec<Vec<(usize, f64)>> {
        assert_eq!(pqs.len(), excludes.len(), "one exclusion slot per query");
        let mut accs: Vec<TopK> = (0..pqs.len()).map(|_| TopK::new(k)).collect();
        let rows = self.len();
        let mut start = 0;
        while start < rows {
            let end = (start + ROW_BLOCK).min(rows);
            for (qi, pq) in pqs.iter().enumerate() {
                let acc = &mut accs[qi];
                let exclude = excludes[qi];
                for s in start..end {
                    let orig = self.original_row(s);
                    if Some(orig) == exclude {
                        continue;
                    }
                    acc.push(orig, self.dist(pq, s));
                }
            }
            start = end;
        }
        accs.into_iter().map(TopK::into_sorted).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::top_k_similar_scalar;
    use proptest::prelude::*;

    fn pseudo_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.max(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    /// Matrix with planted zero rows and duplicate rows — the degenerate
    /// shapes the scoring conventions must survive.
    fn degenerate_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut m = pseudo_matrix(rows, cols, seed);
        if rows >= 4 {
            for j in 0..cols {
                m.set(1, j, 0.0); // zero row
                let v = m.get(0, j);
                m.set(3, j, v); // duplicate of row 0
            }
        }
        m
    }

    fn round_robin_cells(rows: usize, n_cells: usize) -> Vec<Vec<usize>> {
        let mut cells = vec![Vec::new(); n_cells];
        for r in 0..rows {
            cells[r % n_cells].push(r);
        }
        cells
    }

    #[test]
    fn flat_f64_store_is_byte_identical_to_scalar_scan() {
        for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
            let m = degenerate_matrix(60, 7, 99);
            let store = RepStore::flat(Arc::new(m.clone()), metric, StorePrecision::F64);
            for q in [0usize, 1, 3, 59] {
                let exact = top_k_similar_scalar(&m, q, 10, metric);
                let pq = store.prepare(m.row(q));
                let got = store.top_k(&pq, None, 10, Some(q));
                assert_eq!(exact.len(), got.len());
                for (e, g) in exact.iter().zip(&got) {
                    assert_eq!(e.0, g.0, "{metric:?} q={q}");
                    assert_eq!(e.1.to_bits(), g.1.to_bits(), "{metric:?} q={q}");
                }
            }
        }
    }

    #[test]
    fn cell_major_store_matches_flat_store_and_remaps_round_trip() {
        let m = degenerate_matrix(90, 5, 7);
        let cells = round_robin_cells(90, 7);
        for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
            let store = RepStore::cell_major(&m, &cells, metric, StorePrecision::F64);
            assert_eq!(store.n_cells(), 7);
            for orig in 0..90 {
                let s = store.store_row(orig);
                assert_eq!(store.original_row(s), orig, "remap round-trip");
                assert_eq!(store.row_by_original(orig), m.row(orig));
            }
            let pq = store.prepare(m.row(4));
            let got = store.top_k(&pq, None, 12, Some(4));
            let exact = top_k_similar_scalar(&m, 4, 12, metric);
            assert_eq!(
                got.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
                exact.iter().map(|&(r, _)| r).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn batch_kernel_matches_single_query_kernel() {
        let m = degenerate_matrix(120, 6, 21);
        for precision in [StorePrecision::F64, StorePrecision::F32] {
            let store = RepStore::flat(Arc::new(m.clone()), DistanceMetric::Cosine, precision);
            let queries: Vec<usize> = vec![0, 1, 3, 17, 119];
            let pqs: Vec<PreparedQuery> =
                queries.iter().map(|&q| store.prepare(m.row(q))).collect();
            let excludes: Vec<Option<usize>> = queries.iter().map(|&q| Some(q)).collect();
            let batch = store.top_k_batch(&pqs, 8, &excludes);
            for (i, &q) in queries.iter().enumerate() {
                let single = store.top_k(&pqs[i], None, 8, Some(q));
                assert_eq!(batch[i], single, "precision {precision:?} q={q}");
            }
        }
    }

    #[test]
    fn zero_rows_score_the_cosine_convention_in_both_precisions() {
        let m = degenerate_matrix(10, 4, 3);
        for precision in [StorePrecision::F64, StorePrecision::F32] {
            let store = RepStore::flat(Arc::new(m.clone()), DistanceMetric::Cosine, precision);
            let pq = store.prepare(m.row(0));
            let all = store.top_k(&pq, None, 10, Some(0));
            let zero_row = all.iter().find(|&&(r, _)| r == 1).expect("row 1 ranked");
            assert_eq!(zero_row.1, 1.0, "zero row scores exactly 1.0");
            // Zero query: everything is distance 1, ties broken by row id.
            let pq0 = store.prepare(m.row(1));
            let from_zero = store.top_k(&pq0, None, 3, Some(1));
            assert_eq!(
                from_zero.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
                vec![0, 2, 3]
            );
            assert!(from_zero.iter().all(|&(_, d)| d == 1.0));
        }
    }

    #[test]
    fn non_finite_rows_are_reported_not_scanned() {
        let mut m = pseudo_matrix(8, 3, 5);
        m.set(6, 1, f64::NAN);
        let store = RepStore::flat(Arc::new(m), DistanceMetric::Cosine, StorePrecision::F64);
        assert_eq!(store.first_non_finite(), Some(6));
        let clean = pseudo_matrix(8, 3, 5);
        let store = RepStore::flat(Arc::new(clean), DistanceMetric::Cosine, StorePrecision::F64);
        assert_eq!(store.first_non_finite(), None);
    }

    #[test]
    fn filtered_scan_matches_filter_then_rank() {
        let m = degenerate_matrix(50, 4, 11);
        let store = RepStore::flat(
            Arc::new(m.clone()),
            DistanceMetric::Euclidean,
            StorePrecision::F64,
        );
        let pq = store.prepare(m.row(2));
        let keep = |r: usize| r.is_multiple_of(3);
        let got = store.top_k_filtered(&pq, 5, Some(2), keep);
        let mut reference: Vec<(usize, f64)> = (0..50)
            .filter(|&r| r != 2 && keep(r))
            .map(|r| {
                (
                    r,
                    hlm_linalg::vector::euclidean_distance(m.row(2), m.row(r)),
                )
            })
            .collect();
        reference.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        reference.truncate(5);
        assert_eq!(got, reference);
    }

    proptest! {
        /// The f32 scorer must track the exact ranking closely: over random
        /// matrices (zero rows and duplicates planted), the top-1 matches
        /// up to near-ties and every f32 distance is within f32 rounding of
        /// its exact counterpart.
        #[test]
        fn f32_distances_track_f64_within_tolerance(
            seed in 1u64..5000,
            rows in 8usize..40,
            cols in 2usize..10,
        ) {
            let m = degenerate_matrix(rows, cols, seed);
            for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
                let f64s = RepStore::flat(Arc::new(m.clone()), metric, StorePrecision::F64);
                let f32s = RepStore::flat(Arc::new(m.clone()), metric, StorePrecision::F32);
                let pq64 = f64s.prepare(m.row(0));
                let pq32 = f32s.prepare(m.row(0));
                let exact = f64s.top_k(&pq64, None, rows, Some(0));
                let fast = f32s.top_k(&pq32, None, rows, Some(0));
                prop_assert_eq!(exact.len(), fast.len());
                let exact_d: std::collections::HashMap<usize, f64> =
                    exact.iter().copied().collect();
                for &(r, d32) in &fast {
                    let d64 = exact_d[&r];
                    prop_assert!(
                        (d32 - d64).abs() < 1e-4 * d64.abs().max(1.0) + 1e-4,
                        "{:?} row {}: f32 {} vs f64 {}", metric, r, d32, d64
                    );
                }
            }
        }

        /// Blocked and scalar kernels agree bit-for-bit on random shapes.
        #[test]
        fn blocked_kernel_is_exactly_the_scalar_kernel(
            seed in 1u64..5000,
            rows in 2usize..120,
            cols in 1usize..12,
            k in 1usize..20,
        ) {
            let m = degenerate_matrix(rows, cols, seed);
            let store = RepStore::flat(Arc::new(m.clone()), DistanceMetric::Cosine, StorePrecision::F64);
            let queries: Vec<usize> = (0..rows.min(5)).collect();
            let pqs: Vec<PreparedQuery> =
                queries.iter().map(|&q| store.prepare(m.row(q))).collect();
            let excludes: Vec<Option<usize>> = queries.iter().map(|&q| Some(q)).collect();
            let batch = store.top_k_batch(&pqs, k, &excludes);
            for (i, &q) in queries.iter().enumerate() {
                let single = store.top_k(&pqs[i], None, k, Some(q));
                prop_assert_eq!(&batch[i], &single);
            }
        }
    }
}
