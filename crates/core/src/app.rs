//! The sales application of Section 6.
//!
//! The deployed tool searches for the top-k companies most similar to a
//! given customer (by their LDA representations of the HG input), filters
//! them by industry, location, employee count and revenue, and recommends
//! the products that similar companies own but the customer does not — the
//! "whitespace" enriched from internal data. Here the corpus itself plays
//! the role of the internal install-base database.

use crate::similarity::{top_k_similar, DistanceMetric};
use hlm_corpus::{CompanyId, Corpus, ProductId, Sic2};
use hlm_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Filters applied to the similar-company result list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompanyFilter {
    /// Keep only this SIC2 industry.
    pub industry: Option<Sic2>,
    /// Keep only this country.
    pub country: Option<u16>,
    /// Inclusive employee range.
    pub employees: Option<(u32, u32)>,
    /// Inclusive revenue range (millions USD).
    pub revenue_musd: Option<(f64, f64)>,
}

impl CompanyFilter {
    /// True when the company passes every set filter.
    pub fn matches(&self, corpus: &Corpus, id: CompanyId) -> bool {
        let c = corpus.company(id);
        if let Some(ind) = self.industry {
            if c.industry != ind {
                return false;
            }
        }
        if let Some(country) = self.country {
            if c.country != country {
                return false;
            }
        }
        if let Some((lo, hi)) = self.employees {
            if c.employees < lo || c.employees > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.revenue_musd {
            if c.revenue_musd < lo || c.revenue_musd > hi {
                return false;
            }
        }
        true
    }
}

/// One similar company in a search result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimilarCompany {
    /// The company.
    pub id: CompanyId,
    /// Distance to the query under the application's metric (smaller is
    /// more similar).
    pub distance: f64,
}

/// A whitespace recommendation: a product the query company lacks, scored
/// by how prevalent it is among the similar companies (similarity-weighted).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhitespaceRecommendation {
    /// Recommended product.
    pub product: ProductId,
    /// Similarity-weighted prevalence among the top-k similar companies, in
    /// `(0, 1]`.
    pub score: f64,
    /// How many of the similar companies own the product.
    pub owners_among_similar: usize,
}

/// The similarity-search + recommendation tool.
///
/// Construction takes the corpus together with a representation matrix whose
/// row `i` is company `i`'s features `B_i` — the deployment uses LDA
/// representations, but any matrix from
/// [`crate::representations`] works, which is exactly how the
/// representation ablations are run.
pub struct SalesApplication {
    corpus: Corpus,
    representations: Matrix,
    metric: DistanceMetric,
    index: Option<(crate::index::ClusteredIndex, usize)>,
}

impl SalesApplication {
    /// Creates the application.
    ///
    /// # Panics
    /// Panics unless `representations` has one row per corpus company.
    pub fn new(corpus: Corpus, representations: Matrix, metric: DistanceMetric) -> Self {
        assert_eq!(
            representations.rows(),
            corpus.len(),
            "one representation row per company required"
        );
        SalesApplication { corpus, representations, metric, index: None }
    }

    /// Switches similar-company search to the IVF [`ClusteredIndex`] with
    /// `n_cells` coarse cells, probing `n_probe` cells per query — the
    /// at-scale configuration for corpora where the exact scan is too slow
    /// (the paper's deployment handles ~1M companies). With
    /// `n_probe == n_cells` results are identical to the exact scan.
    ///
    /// # Panics
    /// Panics if `n_cells` is 0 or exceeds the corpus size, or `n_probe`
    /// is 0.
    pub fn with_index(mut self, n_cells: usize, n_probe: usize, seed: u64) -> Self {
        assert!(n_probe >= 1, "must probe at least one cell");
        let index = crate::index::ClusteredIndex::build(
            self.representations.clone(),
            n_cells,
            self.metric,
            seed,
        );
        self.index = Some((index, n_probe));
        self
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Top-k companies most similar to `query`, after filtering. Filters are
    /// applied before ranking so the caller always gets up to `k` matches.
    ///
    /// # Panics
    /// Panics on an out-of-range query id.
    pub fn find_similar(
        &self,
        query: CompanyId,
        k: usize,
        filter: &CompanyFilter,
    ) -> Vec<SimilarCompany> {
        // Rank all candidates, then filter; the candidate pool equals the
        // corpus, so rank once with k = n. With an IVF index attached, the
        // candidate pool is the probed cells instead of the full corpus.
        let n = self.corpus.len().saturating_sub(1);
        let all = match &self.index {
            Some((index, n_probe)) => index.query_row(query.index(), n, *n_probe),
            None => top_k_similar(&self.representations, query.index(), n, self.metric),
        };
        all.into_iter()
            .map(|(row, distance)| SimilarCompany { id: CompanyId(row as u32), distance })
            .filter(|s| filter.matches(&self.corpus, s.id))
            .take(k)
            .collect()
    }

    /// Whitespace recommendations for `query`: products owned by its top-k
    /// similar companies but absent from its own install base, scored by
    /// similarity-weighted prevalence, best first.
    pub fn recommend_whitespace(
        &self,
        query: CompanyId,
        k_similar: usize,
        filter: &CompanyFilter,
    ) -> Vec<WhitespaceRecommendation> {
        let similar = self.find_similar(query, k_similar, filter);
        if similar.is_empty() {
            return Vec::new();
        }
        let m = self.corpus.vocab().len();
        let query_owned: Vec<bool> = {
            let mut owned = vec![false; m];
            for p in self.corpus.company(query).product_set() {
                owned[p.index()] = true;
            }
            owned
        };
        // Similarity weight: 1 / (1 + distance) keeps weights positive and
        // bounded for any metric.
        let mut weight_sum = 0.0;
        let mut scores = vec![0.0f64; m];
        let mut owners = vec![0usize; m];
        for s in &similar {
            let w = 1.0 / (1.0 + s.distance);
            weight_sum += w;
            for p in self.corpus.company(s.id).product_set() {
                scores[p.index()] += w;
                owners[p.index()] += 1;
            }
        }
        let mut out: Vec<WhitespaceRecommendation> = scores
            .into_iter()
            .enumerate()
            .filter(|&(p, s)| !query_owned[p] && s > 0.0)
            .map(|(p, s)| WhitespaceRecommendation {
                product: ProductId(p as u16),
                score: s / weight_sum,
                owners_among_similar: owners[p],
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then(a.product.cmp(&b.product))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representations::{binary_docs, lda_representations};
    use hlm_datagen::GeneratorConfig;
    use hlm_lda::{GibbsTrainer, LdaConfig};

    fn app() -> SalesApplication {
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(150, 21));
        let ids: Vec<CompanyId> = corpus.ids().collect();
        let docs = binary_docs(&corpus, &ids);
        let lda = GibbsTrainer::new(LdaConfig {
            n_topics: 3,
            vocab_size: 38,
            n_iters: 40,
            burn_in: 20,
            sample_lag: 5,
            ..Default::default()
        })
        .fit(&docs);
        let reps = lda_representations(&lda, &docs);
        SalesApplication::new(corpus, reps, DistanceMetric::Cosine)
    }

    #[test]
    fn find_similar_returns_k_sorted_matches() {
        let app = app();
        let res = app.find_similar(CompanyId(0), 5, &CompanyFilter::default());
        assert_eq!(res.len(), 5);
        for pair in res.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        assert!(res.iter().all(|s| s.id != CompanyId(0)), "query excluded");
    }

    #[test]
    fn filters_restrict_results() {
        let app = app();
        let target_industry = app.corpus().company(CompanyId(1)).industry;
        let filter = CompanyFilter { industry: Some(target_industry), ..Default::default() };
        let res = app.find_similar(CompanyId(0), 10, &filter);
        for s in &res {
            assert_eq!(app.corpus().company(s.id).industry, target_industry);
        }
        // An impossible filter gives no results.
        let impossible =
            CompanyFilter { employees: Some((u32::MAX - 1, u32::MAX)), ..Default::default() };
        assert!(app.find_similar(CompanyId(0), 10, &impossible).is_empty());
    }

    #[test]
    fn whitespace_excludes_owned_products() {
        let app = app();
        let query = CompanyId(3);
        let owned = app.corpus().company(query).product_set();
        let recs = app.recommend_whitespace(query, 10, &CompanyFilter::default());
        assert!(!recs.is_empty(), "some whitespace should exist");
        for r in &recs {
            assert!(!owned.contains(&r.product), "{} is already owned", r.product);
            assert!(r.score > 0.0 && r.score <= 1.0 + 1e-9);
            assert!(r.owners_among_similar >= 1);
        }
        // Best-first ordering.
        for pair in recs.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn whitespace_scores_reflect_prevalence() {
        let app = app();
        let recs = app.recommend_whitespace(CompanyId(5), 20, &CompanyFilter::default());
        if recs.len() >= 2 {
            let first = &recs[0];
            let last = recs.last().unwrap();
            assert!(first.owners_among_similar >= last.owners_among_similar);
        }
    }

    #[test]
    fn indexed_search_matches_exact_with_full_probe_and_is_sane_pruned() {
        let exact_app = app();
        // Rebuild the same app with an index (full probe = exact).
        let corpus = exact_app.corpus().clone();
        let ids: Vec<CompanyId> = corpus.ids().collect();
        let docs = binary_docs(&corpus, &ids);
        let lda = GibbsTrainer::new(LdaConfig {
            n_topics: 3,
            vocab_size: 38,
            n_iters: 40,
            burn_in: 20,
            sample_lag: 5,
            ..Default::default()
        })
        .fit(&docs);
        let reps = lda_representations(&lda, &docs);
        let indexed = SalesApplication::new(corpus.clone(), reps.clone(), DistanceMetric::Cosine)
            .with_index(8, 8, 1);
        let exact = exact_app.find_similar(CompanyId(3), 5, &CompanyFilter::default());
        let approx = indexed.find_similar(CompanyId(3), 5, &CompanyFilter::default());
        assert_eq!(
            exact.iter().map(|s| s.id).collect::<Vec<_>>(),
            approx.iter().map(|s| s.id).collect::<Vec<_>>(),
            "full probe equals exact scan"
        );
        // Pruned probing still returns k sorted candidates.
        let pruned = SalesApplication::new(corpus, reps, DistanceMetric::Cosine)
            .with_index(8, 2, 1);
        let res = pruned.find_similar(CompanyId(3), 5, &CompanyFilter::default());
        assert_eq!(res.len(), 5);
        for pair in res.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }

    #[test]
    #[should_panic(expected = "one representation row per company")]
    fn rejects_mismatched_representation_matrix() {
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(10, 1));
        SalesApplication::new(corpus, Matrix::zeros(5, 3), DistanceMetric::Cosine);
    }
}
