//! The sales application of Section 6.
//!
//! The deployed tool searches for the top-k companies most similar to a
//! given customer (by their LDA representations of the HG input), filters
//! them by industry, location, employee count and revenue, and recommends
//! the products that similar companies own but the customer does not — the
//! "whitespace" enriched from internal data. Here the corpus itself plays
//! the role of the internal install-base database.

use crate::cache::{CacheKey, FilterKey, ServingCache};
use crate::error::CoreError;
use crate::repstore::{PreparedQuery, RepStore, StorePrecision};
use crate::similarity::DistanceMetric;
use hlm_corpus::{CompanyId, Corpus, ProductId, Sic2};
use hlm_linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Filters applied to the similar-company result list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompanyFilter {
    /// Keep only this SIC2 industry.
    pub industry: Option<Sic2>,
    /// Keep only this country.
    pub country: Option<u16>,
    /// Inclusive employee range.
    pub employees: Option<(u32, u32)>,
    /// Inclusive revenue range (millions USD).
    pub revenue_musd: Option<(f64, f64)>,
}

impl CompanyFilter {
    /// True when no filter is set (every company passes).
    pub fn is_empty(&self) -> bool {
        self.industry.is_none()
            && self.country.is_none()
            && self.employees.is_none()
            && self.revenue_musd.is_none()
    }

    /// True when the company passes every set filter.
    pub fn matches(&self, corpus: &Corpus, id: CompanyId) -> bool {
        let c = corpus.company(id);
        if let Some(ind) = self.industry {
            if c.industry != ind {
                return false;
            }
        }
        if let Some(country) = self.country {
            if c.country != country {
                return false;
            }
        }
        if let Some((lo, hi)) = self.employees {
            if c.employees < lo || c.employees > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.revenue_musd {
            if c.revenue_musd < lo || c.revenue_musd > hi {
                return false;
            }
        }
        true
    }
}

/// One similar company in a search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarCompany {
    /// The company.
    pub id: CompanyId,
    /// Distance to the query under the application's metric (smaller is
    /// more similar).
    pub distance: f64,
}

/// A whitespace recommendation: a product the query company lacks, scored
/// by how prevalent it is among the similar companies (similarity-weighted).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhitespaceRecommendation {
    /// Recommended product.
    pub product: ProductId,
    /// Similarity-weighted prevalence among the top-k similar companies, in
    /// `(0, 1]`.
    pub score: f64,
    /// How many of the similar companies own the product.
    pub owners_among_similar: usize,
}

/// The similarity-search + recommendation tool.
///
/// Construction takes the corpus together with a representation matrix whose
/// row `i` is company `i`'s features `B_i` — the deployment uses LDA
/// representations, but any matrix from
/// [`crate::representations`] works, which is exactly how the
/// representation ablations are run.
///
/// Both inputs are held behind [`Arc`]s so a multi-threaded server can share
/// one corpus and one representation matrix across many application handles
/// (and with the training side) without cloning either; plain owned values
/// are accepted too and wrapped on the way in.
#[derive(Debug)]
pub struct SalesApplication {
    corpus: Arc<Corpus>,
    representations: Arc<Matrix>,
    metric: DistanceMetric,
    /// Flat scoring store over `representations` (shared, not copied):
    /// cached norms, dot-product cosine, optional f32 image. The exact-scan
    /// and blocked-batch paths run through it (DESIGN.md §3.10).
    store: RepStore,
    index: Option<(crate::index::ClusteredIndex, usize)>,
    /// Attached memo plus the cache generation this application's
    /// representations belong to (see [`ServingCache`]).
    cache: Option<(Arc<ServingCache>, u64)>,
}

impl SalesApplication {
    /// Creates the application, scoring on the exact f64 path.
    ///
    /// # Errors
    /// [`CoreError::RepresentationMismatch`] unless `representations` has
    /// one row per corpus company.
    pub fn new(
        corpus: impl Into<Arc<Corpus>>,
        representations: impl Into<Arc<Matrix>>,
        metric: DistanceMetric,
    ) -> Result<Self, CoreError> {
        Self::new_with_precision(corpus, representations, metric, StorePrecision::F64)
    }

    /// [`SalesApplication::new`] with an explicit scoring precision.
    /// [`StorePrecision::F32`] serves rankings from the reduced-precision
    /// store — faster scans, gated by recall equivalence rather than
    /// bit-identity (DESIGN.md §3.10); distances returned to clients are
    /// the f32 scores widened to f64.
    ///
    /// # Errors
    /// [`CoreError::RepresentationMismatch`] as for
    /// [`SalesApplication::new`].
    pub fn new_with_precision(
        corpus: impl Into<Arc<Corpus>>,
        representations: impl Into<Arc<Matrix>>,
        metric: DistanceMetric,
        precision: StorePrecision,
    ) -> Result<Self, CoreError> {
        let corpus = corpus.into();
        let representations = representations.into();
        if representations.rows() != corpus.len() {
            return Err(CoreError::RepresentationMismatch {
                rows: representations.rows(),
                companies: corpus.len(),
            });
        }
        let store = RepStore::flat(Arc::clone(&representations), metric, precision);
        Ok(SalesApplication {
            corpus,
            representations,
            metric,
            store,
            index: None,
            cache: None,
        })
    }

    /// Attaches a [`ServingCache`] so repeated similar-company queries
    /// replay their memoized answers instead of re-scanning distances. The
    /// cache's *current* generation is captured here: after
    /// [`ServingCache::invalidate`] (a retrain), entries written through
    /// this application can no longer collide with applications attached
    /// later. Caching never changes any result — only how fast it arrives.
    pub fn with_cache(mut self, cache: Arc<ServingCache>) -> Self {
        let generation = cache.generation();
        self.cache = Some((cache, generation));
        self
    }

    /// Switches similar-company search to the IVF [`ClusteredIndex`] with
    /// `n_cells` coarse cells, probing `n_probe` cells per query — the
    /// at-scale configuration for corpora where the exact scan is too slow
    /// (the paper's deployment handles ~1M companies). With
    /// `n_probe == n_cells` results are identical to the exact scan.
    ///
    /// # Errors
    /// [`CoreError::InvalidCellCount`] if `n_cells` is 0 or exceeds the
    /// corpus size; [`CoreError::InvalidProbeCount`] if `n_probe` is 0.
    pub fn with_index(
        mut self,
        n_cells: usize,
        n_probe: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if n_probe == 0 {
            return Err(CoreError::InvalidProbeCount);
        }
        let index = crate::index::ClusteredIndex::build_with_precision(
            Arc::clone(&self.representations),
            n_cells,
            self.metric,
            seed,
            self.store.precision(),
        )?;
        self.index = Some((index, n_probe));
        Ok(self)
    }

    /// The scoring precision of the backing store (and of any attached
    /// index) — `f64` exact or opt-in `f32`.
    pub fn store_precision(&self) -> StorePrecision {
        self.store.precision()
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// A shared handle to the corpus (for handing to other components
    /// without cloning the data).
    pub fn corpus_arc(&self) -> Arc<Corpus> {
        Arc::clone(&self.corpus)
    }

    /// The representation matrix backing similarity search.
    pub fn representations(&self) -> &Matrix {
        &self.representations
    }

    /// Top-k companies most similar to `query`, after filtering. The filter
    /// is applied to the candidate pool before truncating to `k`, and a
    /// pruned IVF index falls back to the exact scan when its probed cells
    /// cannot fill `k` filtered matches — so the result has exactly `k`
    /// entries whenever at least `k` companies (other than the query) pass
    /// the filter.
    ///
    /// # Errors
    /// [`CoreError::CompanyOutOfRange`] on an out-of-range query id;
    /// [`CoreError::NonFiniteRepresentation`] when the representation
    /// matrix contains NaN/±∞ rows (detected at construction — no ranking
    /// is defined, and silently scanning would panic the k-selection).
    pub fn find_similar(
        &self,
        query: CompanyId,
        k: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<SimilarCompany>, CoreError> {
        if query.index() >= self.corpus.len() {
            return Err(CoreError::CompanyOutOfRange {
                id: query.0,
                len: self.corpus.len(),
            });
        }
        if let Some(row) = self.store.first_non_finite() {
            return Err(CoreError::NonFiniteRepresentation { row });
        }
        let cache_key = self.cache.as_ref().map(|(_, generation)| {
            CacheKey::new(
                *generation,
                query.index(),
                k,
                self.metric,
                FilterKey::of(filter),
            )
        });
        if let (Some((cache, _)), Some(key)) = (&self.cache, &cache_key) {
            if let Some(hit) = cache.get(key) {
                return Ok(hit);
            }
        }
        let result = self.find_similar_uncached(query, k, filter);
        if let (Ok(answer), Some((cache, _)), Some(key)) = (&result, &self.cache, cache_key) {
            cache.insert(key, answer.clone());
        }
        result
    }

    /// The ranking behind [`SalesApplication::find_similar`], always
    /// computed fresh.
    fn find_similar_uncached(
        &self,
        query: CompanyId,
        k: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<SimilarCompany>, CoreError> {
        let n = self.corpus.len().saturating_sub(1);
        let collect = |ranked: Vec<(usize, f64)>| -> Vec<SimilarCompany> {
            ranked
                .into_iter()
                .map(|(row, distance)| SimilarCompany {
                    id: CompanyId(row as u32),
                    distance,
                })
                .filter(|s| filter.matches(&self.corpus, s.id))
                .take(k)
                .collect()
        };
        if let Some((index, n_probe)) = &self.index {
            // Without a filter only k rows are needed from the index; a
            // filter forces the full probed ranking because survivors are
            // taken in distance order.
            let want = if filter.is_empty() { k } else { n };
            let approx = collect(index.query_row(query.index(), want, *n_probe));
            // The probed cells may hold fewer than k filter survivors even
            // when the full corpus has k of them; fall back to the exact
            // scan to honour the documented guarantee.
            if approx.len() >= k || *n_probe >= index.n_cells() {
                return Ok(approx);
            }
        }
        // Exact scan through the scoring store: filter *before* ranking
        // (equivalent to ranking all rows and keeping the first k
        // survivors, since the filter is independent of distance) so the
        // selection stays k-bounded and non-matching rows never pay a
        // distance computation. On an F64 store the result is byte-identical
        // to the pre-store `metric.distance` scan.
        let pq = self.store.prepare(self.representations.row(query.index()));
        let ranked = if filter.is_empty() {
            self.store.top_k(&pq, None, k, Some(query.index()))
        } else {
            self.store
                .top_k_filtered(&pq, k, Some(query.index()), |row| {
                    filter.matches(&self.corpus, CompanyId(row as u32))
                })
        };
        Ok(ranked
            .into_iter()
            .map(|(row, distance)| SimilarCompany {
                id: CompanyId(row as u32),
                distance,
            })
            .collect())
    }

    /// Whitespace recommendations for `query`: products owned by its top-k
    /// similar companies but absent from its own install base, scored by
    /// similarity-weighted prevalence, best first.
    ///
    /// # Errors
    /// [`CoreError::CompanyOutOfRange`] on an out-of-range query id.
    pub fn recommend_whitespace(
        &self,
        query: CompanyId,
        k_similar: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<WhitespaceRecommendation>, CoreError> {
        let similar = self.find_similar(query, k_similar, filter)?;
        Ok(self.whitespace_from_similar(query, &similar))
    }

    /// The aggregation half of [`SalesApplication::recommend_whitespace`]:
    /// turns an already-ranked similar list into scored whitespace. Split
    /// out so the batch path can reuse similar lists produced by the
    /// blocked kernel.
    fn whitespace_from_similar(
        &self,
        query: CompanyId,
        similar: &[SimilarCompany],
    ) -> Vec<WhitespaceRecommendation> {
        if similar.is_empty() {
            return Vec::new();
        }
        let m = self.corpus.vocab().len();
        let query_owned: Vec<bool> = {
            let mut owned = vec![false; m];
            for p in self.corpus.company(query).product_set() {
                owned[p.index()] = true;
            }
            owned
        };
        // Similarity weight: 1 / (1 + distance) keeps weights positive and
        // bounded for any metric.
        let mut weight_sum = 0.0;
        let mut scores = vec![0.0f64; m];
        let mut owners = vec![0usize; m];
        for s in similar {
            let w = 1.0 / (1.0 + s.distance);
            weight_sum += w;
            for p in self.corpus.company(s.id).product_set() {
                scores[p.index()] += w;
                owners[p.index()] += 1;
            }
        }
        let mut out: Vec<WhitespaceRecommendation> = scores
            .into_iter()
            .enumerate()
            .filter(|&(p, s)| !query_owned[p] && s > 0.0)
            .map(|(p, s)| WhitespaceRecommendation {
                product: ProductId(p as u16),
                score: s / weight_sum,
                owners_among_similar: owners[p],
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then(a.product.cmp(&b.product))
        });
        out
    }

    /// [`SalesApplication::find_similar`] for a batch of queries — the
    /// serve-worker micro-batch path. Results are in query order and
    /// identical to calling `find_similar` per query serially — each query
    /// is independent, so neither parallelism nor the kernel shape can
    /// change any answer.
    ///
    /// Unfiltered, unindexed batches run through the store's blocked
    /// multi-query kernel (cache misses only; hits still replay their
    /// memoized answers): a block of rows is scored against every query in
    /// the chunk while cache-hot, instead of each query streaming the whole
    /// matrix on its own. Filtered or index-probed batches keep the
    /// per-query path, fanned out over the global worker pool.
    ///
    /// # Errors
    /// As in [`SalesApplication::find_similar`]; the first failing query's
    /// error is returned.
    pub fn find_similar_batch(
        &self,
        queries: &[CompanyId],
        k: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<Vec<SimilarCompany>>, CoreError> {
        // Validate the whole batch up front (first failure in query order —
        // the same error the per-query path would surface) so the blocked
        // kernel never trips mid-scan.
        for &q in queries {
            if q.index() >= self.corpus.len() {
                return Err(CoreError::CompanyOutOfRange {
                    id: q.0,
                    len: self.corpus.len(),
                });
            }
        }
        if let Some(row) = self.store.first_non_finite() {
            return Err(CoreError::NonFiniteRepresentation { row });
        }
        if self.index.is_none() && filter.is_empty() {
            return Ok(self.find_similar_batch_blocked(queries, k, filter));
        }
        let pool = hlm_par::Pool::global();
        hlm_par::par_chunks(&pool, queries, BATCH_QUERY_CHUNK, |_c, chunk| {
            chunk
                .iter()
                .map(|&q| self.find_similar(q, k, filter))
                .collect::<Result<Vec<_>, _>>()
        })
        .into_iter()
        .try_fold(Vec::with_capacity(queries.len()), |mut acc, part| {
            acc.extend(part?);
            Ok(acc)
        })
    }

    /// The blocked-kernel batch path: pre-validated, unfiltered, unindexed.
    /// Cache hits are answered first; the misses run through
    /// [`RepStore::top_k_batch`] in fixed [`BATCH_QUERY_CHUNK`]-query
    /// chunks fanned out over the global pool, then backfill the cache.
    fn find_similar_batch_blocked(
        &self,
        queries: &[CompanyId],
        k: usize,
        filter: &CompanyFilter,
    ) -> Vec<Vec<SimilarCompany>> {
        let key_for = |query: CompanyId| {
            self.cache.as_ref().map(|(_, generation)| {
                CacheKey::new(
                    *generation,
                    query.index(),
                    k,
                    self.metric,
                    FilterKey::of(filter),
                )
            })
        };
        let mut results: Vec<Option<Vec<SimilarCompany>>> = vec![None; queries.len()];
        let mut misses: Vec<usize> = Vec::new();
        for (i, &q) in queries.iter().enumerate() {
            let hit = match (&self.cache, key_for(q)) {
                (Some((cache, _)), Some(key)) => cache.get(&key),
                _ => None,
            };
            match hit {
                Some(answer) => results[i] = Some(answer),
                None => misses.push(i),
            }
        }
        let pool = hlm_par::Pool::global();
        let scored = hlm_par::par_chunks(&pool, &misses, BATCH_QUERY_CHUNK, |_c, chunk| {
            let pqs: Vec<PreparedQuery> = chunk
                .iter()
                .map(|&i| {
                    self.store
                        .prepare(self.representations.row(queries[i].index()))
                })
                .collect();
            let excludes: Vec<Option<usize>> =
                chunk.iter().map(|&i| Some(queries[i].index())).collect();
            self.store.top_k_batch(&pqs, k, &excludes)
        });
        for (&i, ranked) in misses.iter().zip(scored.into_iter().flatten()) {
            let answer: Vec<SimilarCompany> = ranked
                .into_iter()
                .map(|(row, distance)| SimilarCompany {
                    id: CompanyId(row as u32),
                    distance,
                })
                .collect();
            if let (Some((cache, _)), Some(key)) = (&self.cache, key_for(queries[i])) {
                cache.insert(key, answer.clone());
            }
            results[i] = Some(answer);
        }
        results
            .into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// [`SalesApplication::recommend_whitespace`] for a batch of queries —
    /// the serving-side bulk path (score a whole territory's accounts at
    /// once). The similar-company half runs through
    /// [`SalesApplication::find_similar_batch`] (and thus the blocked
    /// kernel when unfiltered); the whitespace aggregation fans out over
    /// the global worker pool. Results are in query order and identical to
    /// the serial per-query calls.
    ///
    /// # Errors
    /// As in [`SalesApplication::recommend_whitespace`]; the first failing
    /// query's error is returned.
    pub fn recommend_whitespace_batch(
        &self,
        queries: &[CompanyId],
        k_similar: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<Vec<WhitespaceRecommendation>>, CoreError> {
        let similars = self.find_similar_batch(queries, k_similar, filter)?;
        let indices: Vec<usize> = (0..queries.len()).collect();
        let pool = hlm_par::Pool::global();
        let parts = hlm_par::par_chunks(&pool, &indices, BATCH_QUERY_CHUNK, |_c, chunk| {
            chunk
                .iter()
                .map(|&i| self.whitespace_from_similar(queries[i], &similars[i]))
                .collect::<Vec<_>>()
        });
        Ok(parts.into_iter().flatten().collect())
    }
}

/// Queries per parallel task in the batch scoring entry points. Fixed (never
/// derived from the thread count) so chunk boundaries — and thus the exact
/// work split — are reproducible; correctness does not depend on it because
/// each query is scored independently.
const BATCH_QUERY_CHUNK: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representations::{binary_docs, lda_representations};
    use hlm_datagen::GeneratorConfig;
    use hlm_lda::{GibbsTrainer, LdaConfig};

    fn reps_for(corpus: &Corpus) -> Matrix {
        let ids: Vec<CompanyId> = corpus.ids().collect();
        let docs = binary_docs(corpus, &ids);
        let lda = GibbsTrainer::new(LdaConfig {
            n_topics: 3,
            vocab_size: 38,
            n_iters: 40,
            burn_in: 20,
            sample_lag: 5,
            ..Default::default()
        })
        .fit(&docs);
        lda_representations(&lda, &docs)
    }

    fn app() -> SalesApplication {
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(150, 21));
        let reps = reps_for(&corpus);
        SalesApplication::new(corpus, reps, DistanceMetric::Cosine).expect("matching rows")
    }

    #[test]
    fn find_similar_returns_k_sorted_matches() {
        let app = app();
        let res = app
            .find_similar(CompanyId(0), 5, &CompanyFilter::default())
            .unwrap();
        assert_eq!(res.len(), 5);
        for pair in res.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        assert!(res.iter().all(|s| s.id != CompanyId(0)), "query excluded");
    }

    #[test]
    fn filters_restrict_results() {
        let app = app();
        let target_industry = app.corpus().company(CompanyId(1)).industry;
        let filter = CompanyFilter {
            industry: Some(target_industry),
            ..Default::default()
        };
        let res = app.find_similar(CompanyId(0), 10, &filter).unwrap();
        for s in &res {
            assert_eq!(app.corpus().company(s.id).industry, target_industry);
        }
        // An impossible filter gives no results.
        let impossible = CompanyFilter {
            employees: Some((u32::MAX - 1, u32::MAX)),
            ..Default::default()
        };
        assert!(app
            .find_similar(CompanyId(0), 10, &impossible)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn whitespace_excludes_owned_products() {
        let app = app();
        let query = CompanyId(3);
        let owned = app.corpus().company(query).product_set();
        let recs = app
            .recommend_whitespace(query, 10, &CompanyFilter::default())
            .unwrap();
        assert!(!recs.is_empty(), "some whitespace should exist");
        for r in &recs {
            assert!(
                !owned.contains(&r.product),
                "{} is already owned",
                r.product
            );
            assert!(r.score > 0.0 && r.score <= 1.0 + 1e-9);
            assert!(r.owners_among_similar >= 1);
        }
        // Best-first ordering.
        for pair in recs.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn batch_scoring_matches_serial_per_query_calls() {
        let app = app();
        let queries: Vec<CompanyId> = (0..20).map(CompanyId).collect();
        let filter = CompanyFilter::default();
        let similar = app.find_similar_batch(&queries, 5, &filter).unwrap();
        let recs = app
            .recommend_whitespace_batch(&queries, 5, &filter)
            .unwrap();
        assert_eq!(similar.len(), queries.len());
        assert_eq!(recs.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let serial_sim = app.find_similar(q, 5, &filter).unwrap();
            assert_eq!(
                similar[i].iter().map(|s| s.id).collect::<Vec<_>>(),
                serial_sim.iter().map(|s| s.id).collect::<Vec<_>>()
            );
            let serial_rec = app.recommend_whitespace(q, 5, &filter).unwrap();
            assert_eq!(
                recs[i]
                    .iter()
                    .map(|r| (r.product, r.score))
                    .collect::<Vec<_>>(),
                serial_rec
                    .iter()
                    .map(|r| (r.product, r.score))
                    .collect::<Vec<_>>()
            );
        }
        // An out-of-range query anywhere in the batch surfaces its error.
        let bad = [CompanyId(0), CompanyId(10_000)];
        assert!(app.find_similar_batch(&bad, 5, &filter).is_err());
        assert!(app.recommend_whitespace_batch(&bad, 5, &filter).is_err());
    }

    #[test]
    fn whitespace_scores_reflect_prevalence() {
        let app = app();
        let recs = app
            .recommend_whitespace(CompanyId(5), 20, &CompanyFilter::default())
            .unwrap();
        if recs.len() >= 2 {
            let first = &recs[0];
            let last = recs.last().unwrap();
            assert!(first.owners_among_similar >= last.owners_among_similar);
        }
    }

    #[test]
    fn indexed_search_matches_exact_with_full_probe_and_is_sane_pruned() {
        let corpus = Arc::new(hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(
            150, 21,
        )));
        let reps = Arc::new(reps_for(&corpus));
        // The Arc-based construction shares corpus and representations
        // across all three applications — no clone() of either.
        let exact_app = SalesApplication::new(
            Arc::clone(&corpus),
            Arc::clone(&reps),
            DistanceMetric::Cosine,
        )
        .unwrap();
        let indexed = SalesApplication::new(
            Arc::clone(&corpus),
            Arc::clone(&reps),
            DistanceMetric::Cosine,
        )
        .unwrap()
        .with_index(8, 8, 1)
        .unwrap();
        let exact = exact_app
            .find_similar(CompanyId(3), 5, &CompanyFilter::default())
            .unwrap();
        let approx = indexed
            .find_similar(CompanyId(3), 5, &CompanyFilter::default())
            .unwrap();
        assert_eq!(
            exact.iter().map(|s| s.id).collect::<Vec<_>>(),
            approx.iter().map(|s| s.id).collect::<Vec<_>>(),
            "full probe equals exact scan"
        );
        // Pruned probing still returns k sorted candidates.
        let pruned = SalesApplication::new(corpus, reps, DistanceMetric::Cosine)
            .unwrap()
            .with_index(8, 2, 1)
            .unwrap();
        let res = pruned
            .find_similar(CompanyId(3), 5, &CompanyFilter::default())
            .unwrap();
        assert_eq!(res.len(), 5);
        for pair in res.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }

    #[test]
    fn pruned_index_fills_k_filtered_matches_via_fallback() {
        // Regression test for the doc/behaviour mismatch: with a heavily
        // pruned index (1 of 10 cells probed), a restrictive filter used to
        // exhaust the probed candidate pool and return fewer than k matches
        // even though k companies pass the filter corpus-wide.
        let corpus = Arc::new(hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(
            150, 21,
        )));
        let reps = Arc::new(reps_for(&corpus));
        let app = SalesApplication::new(
            Arc::clone(&corpus),
            Arc::clone(&reps),
            DistanceMetric::Cosine,
        )
        .unwrap()
        .with_index(10, 1, 3)
        .unwrap();
        // Filter to the largest industry so plenty of matches exist.
        let mut by_industry = std::collections::HashMap::new();
        for c in corpus.companies() {
            *by_industry.entry(c.industry).or_insert(0usize) += 1;
        }
        let (&industry, &count) = by_industry
            .iter()
            .max_by_key(|&(_, &n)| n)
            .expect("non-empty corpus");
        let filter = CompanyFilter {
            industry: Some(industry),
            ..Default::default()
        };
        let query = CompanyId(0);
        let k = (count - 1).min(8); // k matches exist besides the query
        let res = app.find_similar(query, k, &filter).unwrap();
        assert_eq!(
            res.len(),
            k,
            "fallback must fill k despite the pruned index"
        );
        for pair in res.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        for s in &res {
            assert_eq!(corpus.company(s.id).industry, industry);
        }
    }

    #[test]
    fn non_finite_representations_return_typed_error_not_panic() {
        // Regression test: a NaN representation row (e.g. a diverged
        // training run) used to reach `bounded_top_k`'s finite-distance
        // expectation and panic the calling worker. It must now surface as
        // a typed error from every serving entry point.
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(30, 4));
        let mut reps = Matrix::zeros(30, 3);
        for i in 0..30 {
            for j in 0..3 {
                reps.set(i, j, (i * 3 + j) as f64 * 0.1);
            }
        }
        reps.set(17, 1, f64::NAN);
        let app = SalesApplication::new(corpus, reps, DistanceMetric::Cosine).unwrap();
        let err = app
            .find_similar(CompanyId(0), 5, &CompanyFilter::default())
            .unwrap_err();
        assert_eq!(err, CoreError::NonFiniteRepresentation { row: 17 });
        let batch = app
            .find_similar_batch(&[CompanyId(0), CompanyId(1)], 5, &CompanyFilter::default())
            .unwrap_err();
        assert_eq!(batch, CoreError::NonFiniteRepresentation { row: 17 });
        let ws = app
            .recommend_whitespace(CompanyId(0), 5, &CompanyFilter::default())
            .unwrap_err();
        assert_eq!(ws, CoreError::NonFiniteRepresentation { row: 17 });
    }

    #[test]
    fn zero_representation_rows_are_served_not_fatal() {
        // A company with an empty install base yields an all-zero row;
        // under cosine it is maximally distant (distance 1.0) by
        // convention, never an error.
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(30, 4));
        let mut reps = Matrix::zeros(30, 3);
        for i in 1..30 {
            for j in 0..3 {
                reps.set(i, j, 1.0 + (i * 3 + j) as f64 * 0.1);
            }
        }
        // Row 0 stays all-zero.
        let app = SalesApplication::new(corpus, reps, DistanceMetric::Cosine).unwrap();
        let res = app
            .find_similar(CompanyId(0), 3, &CompanyFilter::default())
            .unwrap();
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(|s| s.distance == 1.0));
        // Tie-broken by company id.
        assert_eq!(
            res.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![CompanyId(1), CompanyId(2), CompanyId(3)]
        );
    }

    #[test]
    fn f32_precision_app_matches_exact_ranking_here() {
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(150, 21));
        let reps = Arc::new(reps_for(&corpus));
        let corpus = Arc::new(corpus);
        let exact = SalesApplication::new(
            Arc::clone(&corpus),
            Arc::clone(&reps),
            DistanceMetric::Cosine,
        )
        .unwrap();
        let fast = SalesApplication::new_with_precision(
            corpus,
            reps,
            DistanceMetric::Cosine,
            StorePrecision::F32,
        )
        .unwrap();
        assert_eq!(fast.store_precision(), StorePrecision::F32);
        assert_eq!(exact.store_precision(), StorePrecision::F64);
        // On well-separated LDA features the f32 ranking agrees; distances
        // only to f32 rounding.
        for q in [0u32, 7, 149] {
            let e = exact
                .find_similar(CompanyId(q), 5, &CompanyFilter::default())
                .unwrap();
            let f = fast
                .find_similar(CompanyId(q), 5, &CompanyFilter::default())
                .unwrap();
            let e_ids: Vec<_> = e.iter().map(|s| s.id).collect();
            let f_ids: Vec<_> = f.iter().map(|s| s.id).collect();
            let overlap = e_ids.iter().filter(|id| f_ids.contains(id)).count();
            assert!(overlap >= 4, "q={q}: {e_ids:?} vs {f_ids:?}");
            for (a, b) in e.iter().zip(&f) {
                assert!((a.distance - b.distance).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn rejects_mismatched_representation_matrix() {
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(10, 1));
        let err = SalesApplication::new(corpus, Matrix::zeros(5, 3), DistanceMetric::Cosine)
            .expect_err("5 rows for 10 companies must be rejected");
        assert_eq!(
            err,
            CoreError::RepresentationMismatch {
                rows: 5,
                companies: 10
            }
        );
    }

    #[test]
    fn rejects_bad_index_configuration_and_query() {
        let app = app();
        let n = app.corpus().len();
        let err = app.find_similar(CompanyId(n as u32), 5, &CompanyFilter::default());
        assert_eq!(
            err.unwrap_err(),
            CoreError::CompanyOutOfRange {
                id: n as u32,
                len: n
            }
        );

        let make = || {
            let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(150, 21));
            let reps = reps_for(&corpus);
            SalesApplication::new(corpus, reps, DistanceMetric::Cosine).unwrap()
        };
        assert_eq!(
            make().with_index(0, 1, 1).unwrap_err(),
            CoreError::InvalidCellCount {
                n_cells: 0,
                rows: 150
            }
        );
        assert_eq!(
            make().with_index(151, 1, 1).unwrap_err(),
            CoreError::InvalidCellCount {
                n_cells: 151,
                rows: 150
            }
        );
        assert_eq!(
            make().with_index(8, 0, 1).unwrap_err(),
            CoreError::InvalidProbeCount
        );
    }
}
