//! The sales application of Section 6.
//!
//! The deployed tool searches for the top-k companies most similar to a
//! given customer (by their LDA representations of the HG input), filters
//! them by industry, location, employee count and revenue, and recommends
//! the products that similar companies own but the customer does not — the
//! "whitespace" enriched from internal data. Here the corpus itself plays
//! the role of the internal install-base database.

use crate::cache::{CacheKey, FilterKey, ServingCache};
use crate::error::CoreError;
use crate::similarity::{bounded_top_k, DistanceMetric};
use hlm_corpus::{CompanyId, Corpus, ProductId, Sic2};
use hlm_linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Filters applied to the similar-company result list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompanyFilter {
    /// Keep only this SIC2 industry.
    pub industry: Option<Sic2>,
    /// Keep only this country.
    pub country: Option<u16>,
    /// Inclusive employee range.
    pub employees: Option<(u32, u32)>,
    /// Inclusive revenue range (millions USD).
    pub revenue_musd: Option<(f64, f64)>,
}

impl CompanyFilter {
    /// True when no filter is set (every company passes).
    pub fn is_empty(&self) -> bool {
        self.industry.is_none()
            && self.country.is_none()
            && self.employees.is_none()
            && self.revenue_musd.is_none()
    }

    /// True when the company passes every set filter.
    pub fn matches(&self, corpus: &Corpus, id: CompanyId) -> bool {
        let c = corpus.company(id);
        if let Some(ind) = self.industry {
            if c.industry != ind {
                return false;
            }
        }
        if let Some(country) = self.country {
            if c.country != country {
                return false;
            }
        }
        if let Some((lo, hi)) = self.employees {
            if c.employees < lo || c.employees > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.revenue_musd {
            if c.revenue_musd < lo || c.revenue_musd > hi {
                return false;
            }
        }
        true
    }
}

/// One similar company in a search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarCompany {
    /// The company.
    pub id: CompanyId,
    /// Distance to the query under the application's metric (smaller is
    /// more similar).
    pub distance: f64,
}

/// A whitespace recommendation: a product the query company lacks, scored
/// by how prevalent it is among the similar companies (similarity-weighted).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhitespaceRecommendation {
    /// Recommended product.
    pub product: ProductId,
    /// Similarity-weighted prevalence among the top-k similar companies, in
    /// `(0, 1]`.
    pub score: f64,
    /// How many of the similar companies own the product.
    pub owners_among_similar: usize,
}

/// The similarity-search + recommendation tool.
///
/// Construction takes the corpus together with a representation matrix whose
/// row `i` is company `i`'s features `B_i` — the deployment uses LDA
/// representations, but any matrix from
/// [`crate::representations`] works, which is exactly how the
/// representation ablations are run.
///
/// Both inputs are held behind [`Arc`]s so a multi-threaded server can share
/// one corpus and one representation matrix across many application handles
/// (and with the training side) without cloning either; plain owned values
/// are accepted too and wrapped on the way in.
#[derive(Debug)]
pub struct SalesApplication {
    corpus: Arc<Corpus>,
    representations: Arc<Matrix>,
    metric: DistanceMetric,
    index: Option<(crate::index::ClusteredIndex, usize)>,
    /// Attached memo plus the cache generation this application's
    /// representations belong to (see [`ServingCache`]).
    cache: Option<(Arc<ServingCache>, u64)>,
}

impl SalesApplication {
    /// Creates the application.
    ///
    /// # Errors
    /// [`CoreError::RepresentationMismatch`] unless `representations` has
    /// one row per corpus company.
    pub fn new(
        corpus: impl Into<Arc<Corpus>>,
        representations: impl Into<Arc<Matrix>>,
        metric: DistanceMetric,
    ) -> Result<Self, CoreError> {
        let corpus = corpus.into();
        let representations = representations.into();
        if representations.rows() != corpus.len() {
            return Err(CoreError::RepresentationMismatch {
                rows: representations.rows(),
                companies: corpus.len(),
            });
        }
        Ok(SalesApplication {
            corpus,
            representations,
            metric,
            index: None,
            cache: None,
        })
    }

    /// Attaches a [`ServingCache`] so repeated similar-company queries
    /// replay their memoized answers instead of re-scanning distances. The
    /// cache's *current* generation is captured here: after
    /// [`ServingCache::invalidate`] (a retrain), entries written through
    /// this application can no longer collide with applications attached
    /// later. Caching never changes any result — only how fast it arrives.
    pub fn with_cache(mut self, cache: Arc<ServingCache>) -> Self {
        let generation = cache.generation();
        self.cache = Some((cache, generation));
        self
    }

    /// Switches similar-company search to the IVF [`ClusteredIndex`] with
    /// `n_cells` coarse cells, probing `n_probe` cells per query — the
    /// at-scale configuration for corpora where the exact scan is too slow
    /// (the paper's deployment handles ~1M companies). With
    /// `n_probe == n_cells` results are identical to the exact scan.
    ///
    /// # Errors
    /// [`CoreError::InvalidCellCount`] if `n_cells` is 0 or exceeds the
    /// corpus size; [`CoreError::InvalidProbeCount`] if `n_probe` is 0.
    pub fn with_index(
        mut self,
        n_cells: usize,
        n_probe: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if n_probe == 0 {
            return Err(CoreError::InvalidProbeCount);
        }
        let index = crate::index::ClusteredIndex::build(
            Arc::clone(&self.representations),
            n_cells,
            self.metric,
            seed,
        )?;
        self.index = Some((index, n_probe));
        Ok(self)
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// A shared handle to the corpus (for handing to other components
    /// without cloning the data).
    pub fn corpus_arc(&self) -> Arc<Corpus> {
        Arc::clone(&self.corpus)
    }

    /// The representation matrix backing similarity search.
    pub fn representations(&self) -> &Matrix {
        &self.representations
    }

    /// Top-k companies most similar to `query`, after filtering. The filter
    /// is applied to the candidate pool before truncating to `k`, and a
    /// pruned IVF index falls back to the exact scan when its probed cells
    /// cannot fill `k` filtered matches — so the result has exactly `k`
    /// entries whenever at least `k` companies (other than the query) pass
    /// the filter.
    ///
    /// # Errors
    /// [`CoreError::CompanyOutOfRange`] on an out-of-range query id.
    pub fn find_similar(
        &self,
        query: CompanyId,
        k: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<SimilarCompany>, CoreError> {
        if query.index() >= self.corpus.len() {
            return Err(CoreError::CompanyOutOfRange {
                id: query.0,
                len: self.corpus.len(),
            });
        }
        let cache_key = self.cache.as_ref().map(|(_, generation)| {
            CacheKey::new(
                *generation,
                query.index(),
                k,
                self.metric,
                FilterKey::of(filter),
            )
        });
        if let (Some((cache, _)), Some(key)) = (&self.cache, &cache_key) {
            if let Some(hit) = cache.get(key) {
                return Ok(hit);
            }
        }
        let result = self.find_similar_uncached(query, k, filter);
        if let (Ok(answer), Some((cache, _)), Some(key)) = (&result, &self.cache, cache_key) {
            cache.insert(key, answer.clone());
        }
        result
    }

    /// The ranking behind [`SalesApplication::find_similar`], always
    /// computed fresh.
    fn find_similar_uncached(
        &self,
        query: CompanyId,
        k: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<SimilarCompany>, CoreError> {
        let n = self.corpus.len().saturating_sub(1);
        let collect = |ranked: Vec<(usize, f64)>| -> Vec<SimilarCompany> {
            ranked
                .into_iter()
                .map(|(row, distance)| SimilarCompany {
                    id: CompanyId(row as u32),
                    distance,
                })
                .filter(|s| filter.matches(&self.corpus, s.id))
                .take(k)
                .collect()
        };
        if let Some((index, n_probe)) = &self.index {
            // Without a filter only k rows are needed from the index; a
            // filter forces the full probed ranking because survivors are
            // taken in distance order.
            let want = if filter.is_empty() { k } else { n };
            let approx = collect(index.query_row(query.index(), want, *n_probe));
            // The probed cells may hold fewer than k filter survivors even
            // when the full corpus has k of them; fall back to the exact
            // scan to honour the documented guarantee.
            if approx.len() >= k || *n_probe >= index.n_cells() {
                return Ok(approx);
            }
        }
        // Exact scan: filter *before* ranking (equivalent to ranking all
        // rows and keeping the first k survivors, since the filter is
        // independent of distance) so the selection stays k-bounded and
        // non-matching rows never pay a distance computation.
        let q = self.representations.row(query.index());
        Ok(bounded_top_k(
            (0..self.corpus.len())
                .filter(|&row| {
                    row != query.index() && filter.matches(&self.corpus, CompanyId(row as u32))
                })
                .map(|row| (row, self.metric.distance(q, self.representations.row(row)))),
            k,
        )
        .into_iter()
        .map(|(row, distance)| SimilarCompany {
            id: CompanyId(row as u32),
            distance,
        })
        .collect())
    }

    /// Whitespace recommendations for `query`: products owned by its top-k
    /// similar companies but absent from its own install base, scored by
    /// similarity-weighted prevalence, best first.
    ///
    /// # Errors
    /// [`CoreError::CompanyOutOfRange`] on an out-of-range query id.
    pub fn recommend_whitespace(
        &self,
        query: CompanyId,
        k_similar: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<WhitespaceRecommendation>, CoreError> {
        let similar = self.find_similar(query, k_similar, filter)?;
        if similar.is_empty() {
            return Ok(Vec::new());
        }
        let m = self.corpus.vocab().len();
        let query_owned: Vec<bool> = {
            let mut owned = vec![false; m];
            for p in self.corpus.company(query).product_set() {
                owned[p.index()] = true;
            }
            owned
        };
        // Similarity weight: 1 / (1 + distance) keeps weights positive and
        // bounded for any metric.
        let mut weight_sum = 0.0;
        let mut scores = vec![0.0f64; m];
        let mut owners = vec![0usize; m];
        for s in &similar {
            let w = 1.0 / (1.0 + s.distance);
            weight_sum += w;
            for p in self.corpus.company(s.id).product_set() {
                scores[p.index()] += w;
                owners[p.index()] += 1;
            }
        }
        let mut out: Vec<WhitespaceRecommendation> = scores
            .into_iter()
            .enumerate()
            .filter(|&(p, s)| !query_owned[p] && s > 0.0)
            .map(|(p, s)| WhitespaceRecommendation {
                product: ProductId(p as u16),
                score: s / weight_sum,
                owners_among_similar: owners[p],
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then(a.product.cmp(&b.product))
        });
        Ok(out)
    }

    /// [`SalesApplication::find_similar`] for a batch of queries, fanned out
    /// over the global worker pool. Results are in query order and identical
    /// to calling `find_similar` per query serially — each query is
    /// independent, so parallelism cannot change any answer.
    ///
    /// # Errors
    /// As in [`SalesApplication::find_similar`]; the first failing query's
    /// error is returned.
    pub fn find_similar_batch(
        &self,
        queries: &[CompanyId],
        k: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<Vec<SimilarCompany>>, CoreError> {
        let pool = hlm_par::Pool::global();
        hlm_par::par_chunks(&pool, queries, BATCH_QUERY_CHUNK, |_c, chunk| {
            chunk
                .iter()
                .map(|&q| self.find_similar(q, k, filter))
                .collect::<Result<Vec<_>, _>>()
        })
        .into_iter()
        .try_fold(Vec::with_capacity(queries.len()), |mut acc, part| {
            acc.extend(part?);
            Ok(acc)
        })
    }

    /// [`SalesApplication::recommend_whitespace`] for a batch of queries,
    /// fanned out over the global worker pool — the serving-side bulk path
    /// (score a whole territory's accounts at once). Results are in query
    /// order and identical to the serial per-query calls.
    ///
    /// # Errors
    /// As in [`SalesApplication::recommend_whitespace`]; the first failing
    /// query's error is returned.
    pub fn recommend_whitespace_batch(
        &self,
        queries: &[CompanyId],
        k_similar: usize,
        filter: &CompanyFilter,
    ) -> Result<Vec<Vec<WhitespaceRecommendation>>, CoreError> {
        let pool = hlm_par::Pool::global();
        hlm_par::par_chunks(&pool, queries, BATCH_QUERY_CHUNK, |_c, chunk| {
            chunk
                .iter()
                .map(|&q| self.recommend_whitespace(q, k_similar, filter))
                .collect::<Result<Vec<_>, _>>()
        })
        .into_iter()
        .try_fold(Vec::with_capacity(queries.len()), |mut acc, part| {
            acc.extend(part?);
            Ok(acc)
        })
    }
}

/// Queries per parallel task in the batch scoring entry points. Fixed (never
/// derived from the thread count) so chunk boundaries — and thus the exact
/// work split — are reproducible; correctness does not depend on it because
/// each query is scored independently.
const BATCH_QUERY_CHUNK: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representations::{binary_docs, lda_representations};
    use hlm_datagen::GeneratorConfig;
    use hlm_lda::{GibbsTrainer, LdaConfig};

    fn reps_for(corpus: &Corpus) -> Matrix {
        let ids: Vec<CompanyId> = corpus.ids().collect();
        let docs = binary_docs(corpus, &ids);
        let lda = GibbsTrainer::new(LdaConfig {
            n_topics: 3,
            vocab_size: 38,
            n_iters: 40,
            burn_in: 20,
            sample_lag: 5,
            ..Default::default()
        })
        .fit(&docs);
        lda_representations(&lda, &docs)
    }

    fn app() -> SalesApplication {
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(150, 21));
        let reps = reps_for(&corpus);
        SalesApplication::new(corpus, reps, DistanceMetric::Cosine).expect("matching rows")
    }

    #[test]
    fn find_similar_returns_k_sorted_matches() {
        let app = app();
        let res = app
            .find_similar(CompanyId(0), 5, &CompanyFilter::default())
            .unwrap();
        assert_eq!(res.len(), 5);
        for pair in res.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        assert!(res.iter().all(|s| s.id != CompanyId(0)), "query excluded");
    }

    #[test]
    fn filters_restrict_results() {
        let app = app();
        let target_industry = app.corpus().company(CompanyId(1)).industry;
        let filter = CompanyFilter {
            industry: Some(target_industry),
            ..Default::default()
        };
        let res = app.find_similar(CompanyId(0), 10, &filter).unwrap();
        for s in &res {
            assert_eq!(app.corpus().company(s.id).industry, target_industry);
        }
        // An impossible filter gives no results.
        let impossible = CompanyFilter {
            employees: Some((u32::MAX - 1, u32::MAX)),
            ..Default::default()
        };
        assert!(app
            .find_similar(CompanyId(0), 10, &impossible)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn whitespace_excludes_owned_products() {
        let app = app();
        let query = CompanyId(3);
        let owned = app.corpus().company(query).product_set();
        let recs = app
            .recommend_whitespace(query, 10, &CompanyFilter::default())
            .unwrap();
        assert!(!recs.is_empty(), "some whitespace should exist");
        for r in &recs {
            assert!(
                !owned.contains(&r.product),
                "{} is already owned",
                r.product
            );
            assert!(r.score > 0.0 && r.score <= 1.0 + 1e-9);
            assert!(r.owners_among_similar >= 1);
        }
        // Best-first ordering.
        for pair in recs.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn batch_scoring_matches_serial_per_query_calls() {
        let app = app();
        let queries: Vec<CompanyId> = (0..20).map(CompanyId).collect();
        let filter = CompanyFilter::default();
        let similar = app.find_similar_batch(&queries, 5, &filter).unwrap();
        let recs = app
            .recommend_whitespace_batch(&queries, 5, &filter)
            .unwrap();
        assert_eq!(similar.len(), queries.len());
        assert_eq!(recs.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let serial_sim = app.find_similar(q, 5, &filter).unwrap();
            assert_eq!(
                similar[i].iter().map(|s| s.id).collect::<Vec<_>>(),
                serial_sim.iter().map(|s| s.id).collect::<Vec<_>>()
            );
            let serial_rec = app.recommend_whitespace(q, 5, &filter).unwrap();
            assert_eq!(
                recs[i]
                    .iter()
                    .map(|r| (r.product, r.score))
                    .collect::<Vec<_>>(),
                serial_rec
                    .iter()
                    .map(|r| (r.product, r.score))
                    .collect::<Vec<_>>()
            );
        }
        // An out-of-range query anywhere in the batch surfaces its error.
        let bad = [CompanyId(0), CompanyId(10_000)];
        assert!(app.find_similar_batch(&bad, 5, &filter).is_err());
        assert!(app.recommend_whitespace_batch(&bad, 5, &filter).is_err());
    }

    #[test]
    fn whitespace_scores_reflect_prevalence() {
        let app = app();
        let recs = app
            .recommend_whitespace(CompanyId(5), 20, &CompanyFilter::default())
            .unwrap();
        if recs.len() >= 2 {
            let first = &recs[0];
            let last = recs.last().unwrap();
            assert!(first.owners_among_similar >= last.owners_among_similar);
        }
    }

    #[test]
    fn indexed_search_matches_exact_with_full_probe_and_is_sane_pruned() {
        let corpus = Arc::new(hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(
            150, 21,
        )));
        let reps = Arc::new(reps_for(&corpus));
        // The Arc-based construction shares corpus and representations
        // across all three applications — no clone() of either.
        let exact_app = SalesApplication::new(
            Arc::clone(&corpus),
            Arc::clone(&reps),
            DistanceMetric::Cosine,
        )
        .unwrap();
        let indexed = SalesApplication::new(
            Arc::clone(&corpus),
            Arc::clone(&reps),
            DistanceMetric::Cosine,
        )
        .unwrap()
        .with_index(8, 8, 1)
        .unwrap();
        let exact = exact_app
            .find_similar(CompanyId(3), 5, &CompanyFilter::default())
            .unwrap();
        let approx = indexed
            .find_similar(CompanyId(3), 5, &CompanyFilter::default())
            .unwrap();
        assert_eq!(
            exact.iter().map(|s| s.id).collect::<Vec<_>>(),
            approx.iter().map(|s| s.id).collect::<Vec<_>>(),
            "full probe equals exact scan"
        );
        // Pruned probing still returns k sorted candidates.
        let pruned = SalesApplication::new(corpus, reps, DistanceMetric::Cosine)
            .unwrap()
            .with_index(8, 2, 1)
            .unwrap();
        let res = pruned
            .find_similar(CompanyId(3), 5, &CompanyFilter::default())
            .unwrap();
        assert_eq!(res.len(), 5);
        for pair in res.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }

    #[test]
    fn pruned_index_fills_k_filtered_matches_via_fallback() {
        // Regression test for the doc/behaviour mismatch: with a heavily
        // pruned index (1 of 10 cells probed), a restrictive filter used to
        // exhaust the probed candidate pool and return fewer than k matches
        // even though k companies pass the filter corpus-wide.
        let corpus = Arc::new(hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(
            150, 21,
        )));
        let reps = Arc::new(reps_for(&corpus));
        let app = SalesApplication::new(
            Arc::clone(&corpus),
            Arc::clone(&reps),
            DistanceMetric::Cosine,
        )
        .unwrap()
        .with_index(10, 1, 3)
        .unwrap();
        // Filter to the largest industry so plenty of matches exist.
        let mut by_industry = std::collections::HashMap::new();
        for c in corpus.companies() {
            *by_industry.entry(c.industry).or_insert(0usize) += 1;
        }
        let (&industry, &count) = by_industry
            .iter()
            .max_by_key(|&(_, &n)| n)
            .expect("non-empty corpus");
        let filter = CompanyFilter {
            industry: Some(industry),
            ..Default::default()
        };
        let query = CompanyId(0);
        let k = (count - 1).min(8); // k matches exist besides the query
        let res = app.find_similar(query, k, &filter).unwrap();
        assert_eq!(
            res.len(),
            k,
            "fallback must fill k despite the pruned index"
        );
        for pair in res.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        for s in &res {
            assert_eq!(corpus.company(s.id).industry, industry);
        }
    }

    #[test]
    fn rejects_mismatched_representation_matrix() {
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(10, 1));
        let err = SalesApplication::new(corpus, Matrix::zeros(5, 3), DistanceMetric::Cosine)
            .expect_err("5 rows for 10 companies must be rejected");
        assert_eq!(
            err,
            CoreError::RepresentationMismatch {
                rows: 5,
                companies: 10
            }
        );
    }

    #[test]
    fn rejects_bad_index_configuration_and_query() {
        let app = app();
        let n = app.corpus().len();
        let err = app.find_similar(CompanyId(n as u32), 5, &CompanyFilter::default());
        assert_eq!(
            err.unwrap_err(),
            CoreError::CompanyOutOfRange {
                id: n as u32,
                len: n
            }
        );

        let make = || {
            let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(150, 21));
            let reps = reps_for(&corpus);
            SalesApplication::new(corpus, reps, DistanceMetric::Cosine).unwrap()
        };
        assert_eq!(
            make().with_index(0, 1, 1).unwrap_err(),
            CoreError::InvalidCellCount {
                n_cells: 0,
                rows: 150
            }
        );
        assert_eq!(
            make().with_index(151, 1, 1).unwrap_err(),
            CoreError::InvalidCellCount {
                n_cells: 151,
                rows: 150
            }
        );
        assert_eq!(
            make().with_index(8, 0, 1).unwrap_err(),
            CoreError::InvalidProbeCount
        );
    }
}
