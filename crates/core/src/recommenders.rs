//! Recommender adapters: every model family behind the evaluation harness's
//! [`Recommender`] / [`RecommenderFactory`] traits, plus the dedicated BPMF
//! protocol of Figures 5–6.
//!
//! A factory's `train(corpus, train_ids, cutoff)` sees only install-base
//! events strictly before `cutoff` — "all the previous information that
//! happened before the start of a sliding window is used for model
//! training" (Section 4.3).

use hlm_bpmf::{BpmfConfig, Rating};
use hlm_chh::ExactChh;
use hlm_corpus::{CompanyId, Corpus, Month, TimeWindow};
use hlm_eval::stats::mean_ci;
use hlm_eval::{Recommender, RecommenderFactory, ThresholdPoint};
use hlm_lda::{GibbsTrainer, LdaConfig, LdaModel, WeightedDoc};
use hlm_lstm::{LstmConfig, LstmLm, TrainOptions, Trainer};
use hlm_ngram::{NgramConfig, NgramLm};
use serde::{Deserialize, Serialize};

/// Product sets before a cutoff, as unit-weight LDA documents.
fn docs_before(corpus: &Corpus, ids: &[CompanyId], cutoff: Month) -> Vec<WeightedDoc> {
    ids.iter()
        .map(|&id| {
            let mut doc: Vec<(usize, f64)> = corpus
                .company(id)
                .sequence_before(cutoff)
                .into_iter()
                .map(|p| (p.index(), 1.0))
                .collect();
            doc.sort_unstable_by_key(|&(w, _)| w);
            doc
        })
        .collect()
}

/// Acquisition sequences before a cutoff.
fn sequences_before(corpus: &Corpus, ids: &[CompanyId], cutoff: Month) -> Vec<Vec<usize>> {
    ids.iter()
        .map(|&id| {
            corpus
                .company(id)
                .sequence_before(cutoff)
                .into_iter()
                .map(|p| p.index())
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// LDA
// ---------------------------------------------------------------------------

/// Fold-in predictive scores for the next *new* product under an LDA model.
///
/// Install bases are sets: the predictive mass on already-owned products is
/// structurally dead, so the distribution is masked to the unowned support
/// and renormalized (mirroring the document-completion perplexity). Shared by
/// [`LdaRecommenderFactory`] and the engine layer's LDA wrapper.
pub fn masked_lda_scores(model: &LdaModel, history: &[usize]) -> Vec<f64> {
    let doc: WeightedDoc = history.iter().map(|&w| (w, 1.0)).collect();
    let mut scores = model.predict_products(&doc);
    for &w in history {
        scores[w] = 0.0;
    }
    let s: f64 = scores.iter().sum();
    if s > 0.0 {
        scores.iter_mut().for_each(|x| *x /= s);
    }
    scores
}

/// Trains an LDA model per cutoff and scores via the fold-in predictive
/// mixture `Σ_k θ_k φ_kp` (the "LDA3" recommender when `n_topics = 3`).
#[derive(Debug, Clone)]
pub struct LdaRecommenderFactory {
    /// LDA settings (topic count, sweeps, priors).
    pub config: LdaConfig,
    label: String,
}

impl LdaRecommenderFactory {
    /// Creates a factory; the label defaults to `LDA<k>`.
    pub fn new(config: LdaConfig) -> Self {
        let label = format!("LDA{}", config.n_topics);
        LdaRecommenderFactory { config, label }
    }
}

struct LdaRecommender {
    model: LdaModel,
    label: String,
}

impl Recommender for LdaRecommender {
    fn scores(&self, history: &[usize]) -> Vec<f64> {
        masked_lda_scores(&self.model, history)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

impl RecommenderFactory for LdaRecommenderFactory {
    fn train(
        &self,
        corpus: &Corpus,
        train_ids: &[CompanyId],
        cutoff: Month,
    ) -> Box<dyn Recommender> {
        let docs = docs_before(corpus, train_ids, cutoff);
        let model = GibbsTrainer::new(self.config.clone()).fit(&docs);
        Box::new(LdaRecommender {
            model,
            label: self.label.clone(),
        })
    }

    fn name(&self) -> &str {
        &self.label
    }
}

// ---------------------------------------------------------------------------
// LSTM
// ---------------------------------------------------------------------------

/// Trains an LSTM language model per cutoff and scores via the next-product
/// distribution.
#[derive(Debug, Clone)]
pub struct LstmRecommenderFactory {
    /// Architecture.
    pub config: LstmConfig,
    /// Training schedule.
    pub train: TrainOptions,
    /// Model init seed.
    pub seed: u64,
}

struct LstmRecommender {
    model: LstmLm,
}

impl Recommender for LstmRecommender {
    fn scores(&self, history: &[usize]) -> Vec<f64> {
        self.model.predict_next(history)
    }

    fn name(&self) -> &str {
        "LSTM"
    }
}

impl RecommenderFactory for LstmRecommenderFactory {
    fn train(
        &self,
        corpus: &Corpus,
        train_ids: &[CompanyId],
        cutoff: Month,
    ) -> Box<dyn Recommender> {
        let seqs: Vec<Vec<usize>> = sequences_before(corpus, train_ids, cutoff)
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect();
        let mut model = LstmLm::new(self.config.clone(), self.seed);
        Trainer::new(self.train.clone()).fit(&mut model, &seqs, &[]);
        Box::new(LstmRecommender { model })
    }

    fn name(&self) -> &str {
        "LSTM"
    }
}

// ---------------------------------------------------------------------------
// N-gram
// ---------------------------------------------------------------------------

/// Trains an interpolated n-gram model per cutoff (sequential association
/// rules).
#[derive(Debug, Clone)]
pub struct NgramRecommenderFactory {
    /// N-gram settings.
    pub config: NgramConfig,
    label: String,
}

impl NgramRecommenderFactory {
    /// Creates a factory; the label defaults to `<order>-gram`.
    pub fn new(config: NgramConfig) -> Self {
        let label = format!("{}-gram", config.order);
        NgramRecommenderFactory { config, label }
    }
}

struct NgramRecommender {
    model: NgramLm,
    label: String,
}

impl Recommender for NgramRecommender {
    fn scores(&self, history: &[usize]) -> Vec<f64> {
        self.model.predict_next(history)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

impl RecommenderFactory for NgramRecommenderFactory {
    fn train(
        &self,
        corpus: &Corpus,
        train_ids: &[CompanyId],
        cutoff: Month,
    ) -> Box<dyn Recommender> {
        let seqs = sequences_before(corpus, train_ids, cutoff);
        let model = NgramLm::fit(self.config.clone(), &seqs);
        Box::new(NgramRecommender {
            model,
            label: self.label.clone(),
        })
    }

    fn name(&self) -> &str {
        &self.label
    }
}

// ---------------------------------------------------------------------------
// Conditional Heavy Hitters
// ---------------------------------------------------------------------------

/// Trains exact Conditional Heavy Hitters per cutoff; the paper's context
/// depth is 2.
#[derive(Debug, Clone)]
pub struct ChhRecommenderFactory {
    /// Context depth (paper: 2).
    pub depth: usize,
}

struct ChhRecommender {
    model: ExactChh,
}

impl Recommender for ChhRecommender {
    fn scores(&self, history: &[usize]) -> Vec<f64> {
        self.model.predict_next(history)
    }

    fn name(&self) -> &str {
        "CHH"
    }
}

impl RecommenderFactory for ChhRecommenderFactory {
    fn train(
        &self,
        corpus: &Corpus,
        train_ids: &[CompanyId],
        cutoff: Month,
    ) -> Box<dyn Recommender> {
        let seqs = sequences_before(corpus, train_ids, cutoff);
        let model = ExactChh::fit(self.depth, corpus.vocab().len(), &seqs);
        Box::new(ChhRecommender { model })
    }

    fn name(&self) -> &str {
        "CHH"
    }
}

// ---------------------------------------------------------------------------
// Apriori association rules
// ---------------------------------------------------------------------------

/// Trains classic Apriori association rules per cutoff (Section 3.2's
/// time-agnostic pattern-mining baseline). Scores are the maximum rule
/// confidence whose antecedent the history satisfies.
#[derive(Debug, Clone)]
pub struct AprioriRecommenderFactory {
    /// Mining thresholds.
    pub config: hlm_chh::AprioriConfig,
}

struct AprioriRecommender {
    model: hlm_chh::AprioriModel,
}

impl Recommender for AprioriRecommender {
    fn scores(&self, history: &[usize]) -> Vec<f64> {
        self.model.predict(history)
    }

    fn name(&self) -> &str {
        "Apriori"
    }
}

impl RecommenderFactory for AprioriRecommenderFactory {
    fn train(
        &self,
        corpus: &Corpus,
        train_ids: &[CompanyId],
        cutoff: Month,
    ) -> Box<dyn Recommender> {
        let baskets: Vec<Vec<usize>> = sequences_before(corpus, train_ids, cutoff)
            .into_iter()
            .filter(|b| !b.is_empty())
            .collect();
        let model = if baskets.is_empty() {
            // No history at all: mine a degenerate single-basket model so
            // prediction returns zeros rather than panicking.
            hlm_chh::AprioriModel::mine(corpus.vocab().len(), &[vec![0]], &self.config)
        } else {
            hlm_chh::AprioriModel::mine(corpus.vocab().len(), &baskets, &self.config)
        };
        Box::new(AprioriRecommender { model })
    }

    fn name(&self) -> &str {
        "Apriori"
    }
}

// ---------------------------------------------------------------------------
// BPMF (dedicated protocol)
// ---------------------------------------------------------------------------

/// Result of the BPMF evaluation: the raw score distribution (Figure 5) and
/// the accuracy sweep over recommendation-score thresholds (Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpmfEvaluation {
    /// Every predicted recommendation score for the evaluated companies at
    /// the first window (the data behind the Figure-5 boxplot).
    pub scores: Vec<f64>,
    /// Accuracy per score threshold, aggregated over windows.
    pub points: Vec<ThresholdPoint>,
}

/// Runs the Section-5.2 BPMF protocol.
///
/// BPMF is not history-conditioned: it scores `(company, product)` cells. As
/// in the paper, the binary ranking transform provides rating 1 for every
/// product a company owns before the window start; the fitted posterior-mean
/// scores (clamped to `[0, 1]`) are thresholded to produce recommendations.
/// The model is retrained per window when `retrain_per_window` is set.
///
/// # Panics
/// Panics on empty windows/thresholds or when no company owns any product
/// before the first window.
pub fn evaluate_bpmf(
    corpus: &Corpus,
    eval_ids: &[CompanyId],
    windows: &[TimeWindow],
    thresholds: &[f64],
    cfg: &BpmfConfig,
    retrain_per_window: bool,
) -> BpmfEvaluation {
    assert!(!windows.is_empty(), "need at least one window");
    assert!(!thresholds.is_empty(), "need at least one threshold");
    let m = corpus.vocab().len();
    let n_phi = thresholds.len();
    let n_win = windows.len();
    let mut retrieved = vec![vec![0.0f64; n_win]; n_phi];
    let mut correct = vec![vec![0.0f64; n_win]; n_phi];
    let mut relevant = vec![vec![0.0f64; n_win]; n_phi];
    let mut first_window_scores: Vec<f64> = Vec::new();

    let fit_at = |cutoff: Month| -> hlm_bpmf::BpmfModel {
        let mut ratings = Vec::new();
        for (row, &id) in eval_ids.iter().enumerate() {
            for p in corpus.company(id).sequence_before(cutoff) {
                ratings.push(Rating {
                    row,
                    col: p.index(),
                    value: 1.0,
                });
            }
        }
        assert!(
            !ratings.is_empty(),
            "no install-base events before {cutoff}"
        );
        hlm_bpmf::fit(eval_ids.len(), m, &ratings, cfg, Some((0.0, 1.0)))
    };

    let mut model = fit_at(windows[0].start);
    for (wi, window) in windows.iter().enumerate() {
        if retrain_per_window && wi > 0 {
            model = fit_at(window.start);
        }
        for (row, &id) in eval_ids.iter().enumerate() {
            let company = corpus.company(id);
            let history = company.sequence_before(window.start);
            if history.is_empty() {
                continue;
            }
            let mut owned = vec![false; m];
            for p in &history {
                owned[p.index()] = true;
            }
            let truth = company.products_first_seen_in(window.start, window.end);
            let mut is_truth = vec![false; m];
            for p in &truth {
                is_truth[p.index()] = true;
            }
            let scores = model.predict_row(row);
            if wi == 0 {
                first_window_scores.extend(
                    scores
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| !owned[p])
                        .map(|(_, &s)| s),
                );
            }
            for (pi, &phi) in thresholds.iter().enumerate() {
                relevant[pi][wi] += truth.len() as f64;
                for (p, &s) in scores.iter().enumerate() {
                    if owned[p] || s < phi {
                        continue;
                    }
                    retrieved[pi][wi] += 1.0;
                    if is_truth[p] {
                        correct[pi][wi] += 1.0;
                    }
                }
            }
        }
    }

    let points = thresholds
        .iter()
        .enumerate()
        .map(|(pi, &phi)| {
            let mut precisions = Vec::new();
            let mut recalls = Vec::new();
            let mut f1s = Vec::new();
            let mut windows_scored = 0usize;
            for wi in 0..n_win {
                let (ret, cor, rel) = (retrieved[pi][wi], correct[pi][wi], relevant[pi][wi]);
                // Same convention as `hlm_eval::evaluate_recommender`: every
                // window contributes to all three metrics (precision 0 when
                // nothing is retrieved), so the means stay finite and
                // comparable across metrics.
                if ret > 0.0 {
                    windows_scored += 1;
                }
                let precision = if ret > 0.0 { cor / ret } else { 0.0 };
                precisions.push(precision);
                let recall = if rel > 0.0 { cor / rel } else { 0.0 };
                recalls.push(recall);
                f1s.push(if precision + recall > 0.0 {
                    2.0 * precision * recall / (precision + recall)
                } else {
                    0.0
                });
            }
            ThresholdPoint {
                phi,
                precision: mean_ci(&precisions, 0.95),
                recall: mean_ci(&recalls, 0.95),
                f1: mean_ci(&f1s, 0.95),
                windows_scored,
                retrieved: mean_ci(&retrieved[pi], 0.95),
                correct: mean_ci(&correct[pi], 0.95),
                relevant: mean_ci(&relevant[pi], 0.95),
            }
        })
        .collect();
    BpmfEvaluation {
        scores: first_window_scores,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_datagen::GeneratorConfig;
    use hlm_eval::{evaluate_recommender, RecEvalConfig};
    use hlm_lstm::AdamOptions;

    fn corpus() -> Corpus {
        hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(250, 3))
    }

    fn quick_eval_cfg() -> RecEvalConfig {
        RecEvalConfig {
            windows: hlm_corpus::SlidingWindows::new(Month::from_ym(2013, 1), 12, 4, 4).collect(),
            thresholds: vec![0.0, 0.05, 0.1, 0.3, 0.9],
            retrain_per_window: false,
            require_history: true,
        }
    }

    fn quick_lda_factory(k: usize) -> LdaRecommenderFactory {
        LdaRecommenderFactory::new(LdaConfig {
            n_topics: k,
            vocab_size: 38,
            n_iters: 40,
            burn_in: 20,
            sample_lag: 5,
            ..Default::default()
        })
    }

    #[test]
    fn lda_recommender_end_to_end() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let (train, test) = ids.split_at(180);
        let pts = evaluate_recommender(&quick_lda_factory(3), &c, train, test, &quick_eval_cfg());
        assert_eq!(pts.len(), 5);
        // Retrieval shrinks with the threshold; recall at phi=0 is 1 (every
        // unowned product retrieved).
        assert!(
            (pts[0].recall.mean - 1.0).abs() < 1e-9,
            "recall@0 {}",
            pts[0].recall.mean
        );
        assert!(pts[4].retrieved.mean < pts[0].retrieved.mean);
        // Scores are probabilities over 38 products: phi=0.9 retrieves ~nothing.
        assert!(pts[4].retrieved.mean < 1.0);
    }

    #[test]
    fn chh_recommender_end_to_end() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let (train, test) = ids.split_at(180);
        let factory = ChhRecommenderFactory { depth: 2 };
        assert_eq!(factory.name(), "CHH");
        let pts = evaluate_recommender(&factory, &c, train, test, &quick_eval_cfg());
        // CHH must retrieve something at low thresholds and be better than
        // random guessing on precision at phi = 0.1.
        assert!(pts[2].retrieved.mean > 0.0);
        let baseline = 1.0 / 38.0;
        assert!(
            pts[2].precision.mean > baseline,
            "CHH precision {} should beat random {baseline}",
            pts[2].precision.mean
        );
    }

    #[test]
    fn ngram_recommender_end_to_end() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let (train, test) = ids.split_at(180);
        let factory = NgramRecommenderFactory::new(NgramConfig::bigram(38));
        assert_eq!(factory.name(), "2-gram");
        let pts = evaluate_recommender(&factory, &c, train, test, &quick_eval_cfg());
        assert!(pts[0].recall.mean > 0.99);
        assert!(pts[1].retrieved.mean > 0.0);
    }

    #[test]
    fn lstm_recommender_end_to_end_small() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let (train, test) = ids.split_at(180);
        let factory = LstmRecommenderFactory {
            config: LstmConfig {
                vocab_size: 38,
                hidden_size: 10,
                n_layers: 1,
                dropout: 0.1,
                ..Default::default()
            },
            train: TrainOptions {
                epochs: 2,
                batch_size: 16,
                adam: AdamOptions::default(),
                patience: 0,
                seed: 7,
                verbose: false,
                ..Default::default()
            },
            seed: 11,
        };
        let pts = evaluate_recommender(&factory, &c, &train[..120], &test[..40], &quick_eval_cfg());
        assert!(pts[0].recall.mean > 0.99);
        // Distributions over 38 products: thresholding at 0.9 kills recall.
        assert!(pts[4].recall.mean < 0.2);
    }

    #[test]
    fn bpmf_evaluation_degenerates_like_figure_5() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().take(120).collect();
        let windows: Vec<TimeWindow> =
            hlm_corpus::SlidingWindows::new(Month::from_ym(2013, 1), 12, 4, 3).collect();
        let cfg = BpmfConfig {
            n_iters: 25,
            burn_in: 10,
            n_factors: 5,
            ..Default::default()
        };
        let eval = evaluate_bpmf(&c, &ids, &windows, &[0.90, 0.93, 0.96, 0.99], &cfg, false);
        assert!(!eval.scores.is_empty());
        // Figure 5: the bulk of the scores sits high in [0, 1].
        let median = {
            let mut s = eval.scores.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            s[s.len() / 2]
        };
        assert!(median > 0.8, "median BPMF score {median}");
        // Figure 6: thresholds below the score mass retrieve nearly every
        // unowned product -> recall near 1, precision near the base rate.
        let first = &eval.points[0];
        assert!(first.recall.mean > 0.6, "recall {}", first.recall.mean);
        assert!(
            first.precision.mean < 0.3,
            "precision {}",
            first.precision.mean
        );
        // Degeneracy: thresholds across [0.90, 0.96] barely change what is
        // retrieved (the score mass sits above them all).
        let r0 = eval.points[0].retrieved.mean;
        let r2 = eval.points[2].retrieved.mean;
        assert!(
            r2 > 0.5 * r0,
            "retrieval cliff between 0.90 and 0.96: {r0} -> {r2}"
        );
    }

    #[test]
    fn apriori_recommender_end_to_end() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let (train, test) = ids.split_at(180);
        let factory = AprioriRecommenderFactory {
            config: hlm_chh::AprioriConfig {
                min_support: 0.03,
                min_confidence: 0.1,
                max_len: 3,
            },
        };
        assert_eq!(factory.name(), "Apriori");
        let pts = evaluate_recommender(&factory, &c, train, test, &quick_eval_cfg());
        // Rules fire: something is retrieved at low thresholds.
        assert!(pts[2].retrieved.mean > 0.0, "rules should fire");
        // The right baseline is the empirical base rate — the precision of
        // recommending every unowned product (what random achieves at
        // phi = 0).
        let random = evaluate_recommender(
            &hlm_eval::RandomRecommender::new(38),
            &c,
            train,
            test,
            &quick_eval_cfg(),
        );
        let base_rate = random[0].precision.mean;
        assert!(
            pts[2].precision.mean > base_rate,
            "Apriori precision {} vs base rate {base_rate}",
            pts[2].precision.mean
        );
        // Unlike the probabilistic models, confidences don't sum to 1, so
        // recall at phi = 0.9 can still be nonzero but must be far below 1.
        assert!(pts[4].recall.mean < 0.5);
    }

    #[test]
    fn factories_only_see_history_before_cutoff() {
        // Train at a cutoff before any data exists -> LDA factory must not
        // panic (empty docs) and the CHH model knows nothing.
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().take(30).collect();
        let chh = ChhRecommenderFactory { depth: 2 };
        let model = chh.train(&c, &ids, Month::from_ym(1980, 1));
        assert_eq!(model.scores(&[0, 1]), vec![0.0; 38]);
    }
}
