//! Typed errors for the contribution layer.
//!
//! The serving surface ([`crate::app::SalesApplication`], the
//! [`crate::index::ClusteredIndex`] and the representation builders) reports
//! invalid input through [`CoreError`] instead of panicking, so a server
//! built on top can turn bad requests into error responses rather than
//! crashing a worker.

use std::fmt;

/// Invalid input to the similarity-search / representation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The representation matrix does not have one row per corpus company.
    RepresentationMismatch {
        /// Rows in the supplied matrix.
        rows: usize,
        /// Companies in the corpus.
        companies: usize,
    },
    /// The IVF cell count is outside `1..=rows`.
    InvalidCellCount {
        /// Requested number of coarse cells.
        n_cells: usize,
        /// Indexed rows available.
        rows: usize,
    },
    /// Zero cells would be probed per query.
    InvalidProbeCount,
    /// A company id does not exist in the corpus.
    CompanyOutOfRange {
        /// The offending id.
        id: u32,
        /// Corpus size.
        len: usize,
    },
    /// A factorization rank is outside what the input matrix supports.
    InvalidRank {
        /// Requested rank / component count.
        k: usize,
        /// Rows of the input matrix.
        rows: usize,
        /// Columns of the input matrix.
        cols: usize,
    },
    /// A product-embedding matrix does not cover the whole vocabulary.
    EmbeddingMismatch {
        /// Rows in the embedding matrix.
        rows: usize,
        /// Products in the vocabulary.
        products: usize,
    },
    /// A representation row contains NaN or ±∞ (e.g. from a diverged
    /// training run), so no finite distance — and no ranking — exists.
    /// Detected once at store-build time; reported per request instead of
    /// letting a NaN distance panic the k-selection mid-scan and kill a
    /// serve worker. (All-*zero* rows are fine: under cosine they rank as
    /// maximally distant by convention.)
    NonFiniteRepresentation {
        /// The first offending representation row (== company index).
        row: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RepresentationMismatch { rows, companies } => write!(
                f,
                "representation matrix has {rows} rows but the corpus has {companies} \
                 companies (one row per company required)"
            ),
            CoreError::InvalidCellCount { n_cells, rows } => write!(
                f,
                "cannot build an index with {n_cells} cells over {rows} rows \
                 (need 1 <= n_cells <= rows)"
            ),
            CoreError::InvalidProbeCount => {
                write!(f, "must probe at least one cell per query")
            }
            CoreError::CompanyOutOfRange { id, len } => {
                write!(
                    f,
                    "company id {id} is out of range for a corpus of {len} companies"
                )
            }
            CoreError::InvalidRank { k, rows, cols } => write!(
                f,
                "rank {k} is not supported by a {rows}x{cols} matrix \
                 (need 1 <= k <= min(rows, cols))"
            ),
            CoreError::EmbeddingMismatch { rows, products } => write!(
                f,
                "product-embedding matrix has {rows} rows but the vocabulary has \
                 {products} products (one embedding row per product required)"
            ),
            CoreError::NonFiniteRepresentation { row } => write!(
                f,
                "representation row {row} contains a non-finite value (NaN or ±inf); \
                 refusing to rank — retrain or repair the representation matrix"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_numbers() {
        let e = CoreError::RepresentationMismatch {
            rows: 5,
            companies: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains("10"), "{msg}");
        let e = CoreError::CompanyOutOfRange { id: 99, len: 10 };
        assert!(e.to_string().contains("99"));
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::InvalidProbeCount);
        assert!(!e.to_string().is_empty());
    }
}
