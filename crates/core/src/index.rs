//! Cluster-pruned approximate nearest-neighbour index for similar-company
//! search.
//!
//! Section 2 of the paper names "the computational complexity of the
//! similarity search problem due to the large number of companies" as a core
//! challenge — with ~1M companies, the brute-force scan of
//! [`crate::top_k_similar`] is the bottleneck of the deployed tool. This
//! index applies the standard IVF recipe: k-means the representation rows
//! into coarse cells and, at query time, scan only the `n_probe` cells whose
//! centroids are closest to the query. With `n_probe == n_cells` results are
//! exactly the brute-force ranking.

use crate::error::CoreError;
use crate::similarity::DistanceMetric;
use hlm_cluster::{kmeans, KmeansOptions};
use hlm_linalg::Matrix;
use std::sync::Arc;

/// An inverted-file (IVF) similarity index over representation rows. The
/// rows are held behind an [`Arc`] so the index shares one matrix with the
/// [`crate::app::SalesApplication`] that built it.
#[derive(Debug)]
pub struct ClusteredIndex {
    reps: Arc<Matrix>,
    centroids: Matrix,
    cells: Vec<Vec<usize>>,
    metric: DistanceMetric,
}

impl ClusteredIndex {
    /// Builds the index by k-means-partitioning the rows of `reps` into
    /// `n_cells` coarse cells.
    ///
    /// # Errors
    /// [`CoreError::InvalidCellCount`] if `reps` is empty or `n_cells` is 0
    /// or exceeds the row count.
    pub fn build(
        reps: impl Into<Arc<Matrix>>,
        n_cells: usize,
        metric: DistanceMetric,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let reps = reps.into();
        if reps.rows() == 0 || n_cells == 0 || n_cells > reps.rows() {
            return Err(CoreError::InvalidCellCount {
                n_cells,
                rows: reps.rows(),
            });
        }
        let res = kmeans(
            &reps,
            &KmeansOptions {
                k: n_cells,
                max_iters: 50,
                tol: 1e-6,
                seed,
            },
        );
        let mut cells = vec![Vec::new(); n_cells];
        for (row, &cell) in res.assignments.iter().enumerate() {
            cells[cell].push(row);
        }
        Ok(ClusteredIndex {
            reps,
            centroids: res.centroids,
            cells,
            metric,
        })
    }

    /// Number of coarse cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.reps.rows()
    }

    /// True when the index holds no rows (never constructible).
    pub fn is_empty(&self) -> bool {
        self.reps.rows() == 0
    }

    /// Top-`k` most similar rows to an arbitrary query vector, scanning the
    /// `n_probe` nearest cells. Returns `(row, distance)` ascending.
    ///
    /// # Panics
    /// Panics on a dimension mismatch or `n_probe == 0`.
    pub fn query(&self, vector: &[f64], k: usize, n_probe: usize) -> Vec<(usize, f64)> {
        assert_eq!(vector.len(), self.reps.cols(), "query dimension mismatch");
        assert!(n_probe >= 1, "must probe at least one cell");
        // Rank cells by centroid distance — only the `n_probe` nearest are
        // needed, so select rather than sort.
        let cell_order = crate::similarity::bounded_top_k(
            (0..self.cells.len()).map(|c| (c, self.metric.distance(vector, self.centroids.row(c)))),
            n_probe,
        );
        // Stream every probed row through a k-bounded selection: no
        // per-query candidate buffer proportional to the probed cells, and
        // the result is identical to sorting all candidates (each row lives
        // in exactly one cell, so the ordering is total).
        crate::similarity::bounded_top_k(
            cell_order.iter().flat_map(|&(c, _)| {
                self.cells[c]
                    .iter()
                    .map(|&row| (row, self.metric.distance(vector, self.reps.row(row))))
            }),
            k,
        )
    }

    /// Top-`k` most similar rows to an indexed row (the row itself is
    /// excluded).
    ///
    /// # Panics
    /// Panics if `row` is out of range or `n_probe == 0`.
    pub fn query_row(&self, row: usize, k: usize, n_probe: usize) -> Vec<(usize, f64)> {
        assert!(row < self.reps.rows(), "row out of range");
        let mut out = self.query(self.reps.row(row), k + 1, n_probe);
        out.retain(|&(r, _)| r != row);
        out.truncate(k);
        out
    }

    /// Recall@k of the pruned search against the exact scan, averaged over
    /// `queries` — the quality diagnostic for choosing `n_probe`.
    pub fn recall_at_k(&self, queries: &[usize], k: usize, n_probe: usize) -> f64 {
        if queries.is_empty() {
            return f64::NAN;
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for &q in queries {
            let exact = crate::similarity::top_k_similar(&self.reps, q, k, self.metric);
            let approx = self.query_row(q, k, n_probe);
            let approx_set: std::collections::HashSet<usize> =
                approx.iter().map(|&(r, _)| r).collect();
            hits += exact
                .iter()
                .filter(|&&(r, _)| approx_set.contains(&r))
                .count();
            total += exact.len();
        }
        hits as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clustered points: three groups of 30 rows in 4-D.
    fn clustered_reps() -> Matrix {
        let mut state = 42u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.4
        };
        Matrix::from_fn(90, 4, |i, j| {
            let group = i / 30;
            let base = if j == group { 5.0 } else { 0.0 };
            base + noise()
        })
    }

    #[test]
    fn full_probe_matches_brute_force_exactly() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps.clone(), 6, DistanceMetric::Euclidean, 1).unwrap();
        for q in [0usize, 31, 89] {
            let exact = crate::similarity::top_k_similar(&reps, q, 10, DistanceMetric::Euclidean);
            let approx = index.query_row(q, 10, index.n_cells());
            assert_eq!(
                exact.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
                approx.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
                "query {q}"
            );
        }
    }

    #[test]
    fn single_probe_has_high_recall_on_clustered_data() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps, 3, DistanceMetric::Euclidean, 2).unwrap();
        let queries: Vec<usize> = (0..90).step_by(9).collect();
        let recall = index.recall_at_k(&queries, 5, 1);
        assert!(recall > 0.9, "recall@5 with 1 probe: {recall}");
    }

    #[test]
    fn more_probes_never_reduce_recall() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps, 6, DistanceMetric::Cosine, 3).unwrap();
        let queries: Vec<usize> = (0..90).step_by(7).collect();
        let r1 = index.recall_at_k(&queries, 8, 1);
        let r3 = index.recall_at_k(&queries, 8, 3);
        let r6 = index.recall_at_k(&queries, 8, 6);
        assert!(r3 >= r1 - 1e-12);
        assert!(r6 >= r3 - 1e-12);
        assert!((r6 - 1.0).abs() < 1e-12, "full probe is exact");
    }

    #[test]
    fn query_excludes_self_and_respects_k() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps, 3, DistanceMetric::Euclidean, 4).unwrap();
        let res = index.query_row(5, 7, 3);
        assert_eq!(res.len(), 7);
        assert!(res.iter().all(|&(r, _)| r != 5));
        for pair in res.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn arbitrary_vector_query_works() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps, 3, DistanceMetric::Euclidean, 5).unwrap();
        // A vector near group 1's corner.
        let res = index.query(&[0.0, 5.0, 0.0, 0.0], 5, 1);
        assert_eq!(res.len(), 5);
        assert!(res.iter().all(|&(r, _)| (30..60).contains(&r)), "{res:?}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let index =
            ClusteredIndex::build(clustered_reps(), 3, DistanceMetric::Euclidean, 6).unwrap();
        index.query(&[1.0, 2.0], 3, 1);
    }

    #[test]
    fn rejects_bad_cell_counts() {
        let reps = clustered_reps();
        let zero = ClusteredIndex::build(reps.clone(), 0, DistanceMetric::Euclidean, 1);
        assert_eq!(
            zero.unwrap_err(),
            CoreError::InvalidCellCount {
                n_cells: 0,
                rows: 90
            }
        );
        let over = ClusteredIndex::build(reps, 91, DistanceMetric::Euclidean, 1);
        assert_eq!(
            over.unwrap_err(),
            CoreError::InvalidCellCount {
                n_cells: 91,
                rows: 90
            }
        );
    }
}
