//! Cluster-pruned approximate nearest-neighbour index for similar-company
//! search.
//!
//! Section 2 of the paper names "the computational complexity of the
//! similarity search problem due to the large number of companies" as a core
//! challenge — with ~1M companies, the brute-force scan of
//! [`crate::top_k_similar`] is the bottleneck of the deployed tool. This
//! index applies the standard IVF recipe: k-means the representation rows
//! into coarse cells and, at query time, scan only the `n_probe` cells whose
//! centroids are closest to the query. With `n_probe == n_cells` results are
//! exactly the brute-force ranking.
//!
//! Since PR 10 the candidate scan runs on a cell-major [`RepStore`]
//! snapshot (DESIGN.md §3.10): rows are physically reordered so a probed
//! cell is one contiguous walk, per-row norms are cached, and an opt-in f32
//! path halves the scan footprint. The exact (f64) path returns
//! byte-identical rankings to the pre-store scan.

use crate::error::CoreError;
use crate::repstore::{RepStore, StorePrecision};
use crate::similarity::DistanceMetric;
use hlm_cluster::{kmeans, KmeansOptions};
use hlm_linalg::Matrix;
use std::sync::Arc;

/// An inverted-file (IVF) similarity index over representation rows. The
/// rows live in a cell-major [`RepStore`] snapshot taken at build time; the
/// original matrix is not retained.
#[derive(Debug)]
pub struct ClusteredIndex {
    store: RepStore,
    centroids: Matrix,
    metric: DistanceMetric,
}

impl ClusteredIndex {
    /// Builds the index by k-means-partitioning the rows of `reps` into
    /// `n_cells` coarse cells, scoring on the exact f64 path.
    ///
    /// # Errors
    /// [`CoreError::InvalidCellCount`] if `reps` is empty or `n_cells` is 0
    /// or exceeds the row count.
    pub fn build(
        reps: impl Into<Arc<Matrix>>,
        n_cells: usize,
        metric: DistanceMetric,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::build_with_precision(reps, n_cells, metric, seed, StorePrecision::F64)
    }

    /// [`ClusteredIndex::build`] with an explicit scoring precision for the
    /// snapshot store. [`StorePrecision::F32`] trades bit-identical rankings
    /// for a smaller, faster scan (gated by recall, not bit-identity).
    ///
    /// # Errors
    /// [`CoreError::InvalidCellCount`] as for [`ClusteredIndex::build`].
    pub fn build_with_precision(
        reps: impl Into<Arc<Matrix>>,
        n_cells: usize,
        metric: DistanceMetric,
        seed: u64,
        precision: StorePrecision,
    ) -> Result<Self, CoreError> {
        let reps = reps.into();
        if reps.rows() == 0 || n_cells == 0 || n_cells > reps.rows() {
            return Err(CoreError::InvalidCellCount {
                n_cells,
                rows: reps.rows(),
            });
        }
        let res = kmeans(
            &reps,
            &KmeansOptions {
                k: n_cells,
                max_iters: 50,
                tol: 1e-6,
                seed,
            },
        );
        let mut cells = vec![Vec::new(); n_cells];
        for (row, &cell) in res.assignments.iter().enumerate() {
            cells[cell].push(row);
        }
        let store = RepStore::cell_major(&reps, &cells, metric, precision);
        Ok(ClusteredIndex {
            store,
            centroids: res.centroids,
            metric,
        })
    }

    /// Number of coarse cells.
    pub fn n_cells(&self) -> usize {
        self.store.n_cells()
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the index holds no rows (never constructible).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The snapshot store backing this index.
    pub fn store(&self) -> &RepStore {
        &self.store
    }

    /// The cells — ascending cell ids — the index would scan for `vector`
    /// at the given probe width: the `n_probe` cells with the nearest
    /// centroids. Centroid ranking is unchanged from the pre-store index,
    /// so probe sets are identical.
    fn probe_cells(&self, vector: &[f64], n_probe: usize) -> Vec<usize> {
        let cell_order = crate::similarity::bounded_top_k(
            (0..self.n_cells()).map(|c| (c, self.metric.distance(vector, self.centroids.row(c)))),
            n_probe,
        );
        cell_order.into_iter().map(|(c, _)| c).collect()
    }

    /// Top-`k` most similar rows to an arbitrary query vector, scanning the
    /// `n_probe` nearest cells. Returns `(row, distance)` ascending.
    ///
    /// # Panics
    /// Panics on a dimension mismatch or `n_probe == 0`.
    pub fn query(&self, vector: &[f64], k: usize, n_probe: usize) -> Vec<(usize, f64)> {
        assert_eq!(vector.len(), self.store.dims(), "query dimension mismatch");
        assert!(n_probe >= 1, "must probe at least one cell");
        let cells = self.probe_cells(vector, n_probe);
        let pq = self.store.prepare(vector);
        self.store.top_k(&pq, Some(&cells), k, None)
    }

    /// Top-`k` most similar rows to an indexed row (the row itself is
    /// excluded).
    ///
    /// # Panics
    /// Panics if `row` is out of range or `n_probe == 0`.
    pub fn query_row(&self, row: usize, k: usize, n_probe: usize) -> Vec<(usize, f64)> {
        assert!(row < self.store.len(), "row out of range");
        assert!(n_probe >= 1, "must probe at least one cell");
        let vector = self.store.row_by_original(row);
        let cells = self.probe_cells(vector, n_probe);
        let pq = self.store.prepare(vector);
        // Excluding the query row *before* selection equals the pre-store
        // "select k+1, drop the row, truncate to k" dance: either way the
        // result is the best k candidates other than the row itself.
        self.store.top_k(&pq, Some(&cells), k, Some(row))
    }

    /// Recall@k of the pruned search against the exact scan, averaged over
    /// `queries` — the quality diagnostic for choosing `n_probe`.
    ///
    /// Returns NaN when `queries` is empty (no recall is defined over zero
    /// queries); callers emitting metrics must guard for it rather than let
    /// NaN leak into JSON.
    pub fn recall_at_k(&self, queries: &[usize], k: usize, n_probe: usize) -> f64 {
        self.recall_at_k_many(queries, k, &[n_probe])[0]
    }

    /// Recall@k at several probe widths in one pass: the exact top-`k` set
    /// is computed **once per query** (f64 scan over all cells) and reused
    /// for every entry of `n_probes`, instead of rerunning brute force per
    /// probe width as the pre-store diagnostic did. On an f32 store the
    /// approximate side scores in f32 while the baseline stays exact f64,
    /// so the result measures the combined IVF + precision loss — the
    /// quantity the CI recall gate checks.
    ///
    /// Returns one recall per probe width, NaN for each when `queries` is
    /// empty (see [`ClusteredIndex::recall_at_k`]).
    pub fn recall_at_k_many(&self, queries: &[usize], k: usize, n_probes: &[usize]) -> Vec<f64> {
        if queries.is_empty() {
            return vec![f64::NAN; n_probes.len()];
        }
        let mut hits = vec![0usize; n_probes.len()];
        let mut total = 0usize;
        for &q in queries {
            let vector = self.store.row_by_original(q);
            let pq = self.store.prepare(vector);
            let exact = self.store.top_k_exact_f64(&pq, None, k, Some(q));
            total += exact.len();
            for (pi, &n_probe) in n_probes.iter().enumerate() {
                let approx = self.query_row(q, k, n_probe);
                let approx_set: std::collections::HashSet<usize> =
                    approx.iter().map(|&(r, _)| r).collect();
                hits[pi] += exact
                    .iter()
                    .filter(|&&(r, _)| approx_set.contains(&r))
                    .count();
            }
        }
        hits.iter()
            .map(|&h| h as f64 / total.max(1) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clustered points: three groups of 30 rows in 4-D.
    fn clustered_reps() -> Matrix {
        let mut state = 42u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.4
        };
        Matrix::from_fn(90, 4, |i, j| {
            let group = i / 30;
            let base = if j == group { 5.0 } else { 0.0 };
            base + noise()
        })
    }

    #[test]
    fn full_probe_matches_brute_force_exactly() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps.clone(), 6, DistanceMetric::Euclidean, 1).unwrap();
        for q in [0usize, 31, 89] {
            let exact = crate::similarity::top_k_similar(&reps, q, 10, DistanceMetric::Euclidean);
            let approx = index.query_row(q, 10, index.n_cells());
            assert_eq!(
                exact.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
                approx.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
                "query {q}"
            );
        }
    }

    #[test]
    fn full_probe_distances_are_byte_identical_to_scalar_scan() {
        let reps = clustered_reps();
        for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
            let index = ClusteredIndex::build(reps.clone(), 5, metric, 9).unwrap();
            for q in [0usize, 44, 89] {
                let exact = crate::similarity::top_k_similar_scalar(&reps, q, 7, metric);
                let approx = index.query_row(q, 7, index.n_cells());
                assert_eq!(exact.len(), approx.len());
                for (e, a) in exact.iter().zip(&approx) {
                    assert_eq!(e.0, a.0, "{metric:?} q={q}");
                    assert_eq!(e.1.to_bits(), a.1.to_bits(), "{metric:?} q={q}");
                }
            }
        }
    }

    #[test]
    fn single_probe_has_high_recall_on_clustered_data() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps, 3, DistanceMetric::Euclidean, 2).unwrap();
        let queries: Vec<usize> = (0..90).step_by(9).collect();
        let recall = index.recall_at_k(&queries, 5, 1);
        assert!(recall > 0.9, "recall@5 with 1 probe: {recall}");
    }

    #[test]
    fn more_probes_never_reduce_recall() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps, 6, DistanceMetric::Cosine, 3).unwrap();
        let queries: Vec<usize> = (0..90).step_by(7).collect();
        let many = index.recall_at_k_many(&queries, 8, &[1, 3, 6]);
        let (r1, r3, r6) = (many[0], many[1], many[2]);
        assert!(r3 >= r1 - 1e-12);
        assert!(r6 >= r3 - 1e-12);
        assert!((r6 - 1.0).abs() < 1e-12, "full probe is exact");
        // The batched diagnostic must agree with the per-width form.
        assert_eq!(r1, index.recall_at_k(&queries, 8, 1));
        assert_eq!(r3, index.recall_at_k(&queries, 8, 3));
    }

    #[test]
    fn recall_is_nan_on_empty_queries() {
        let index = ClusteredIndex::build(clustered_reps(), 3, DistanceMetric::Cosine, 8).unwrap();
        assert!(index.recall_at_k(&[], 5, 1).is_nan());
        let many = index.recall_at_k_many(&[], 5, &[1, 2]);
        assert_eq!(many.len(), 2);
        assert!(many.iter().all(|r| r.is_nan()));
    }

    #[test]
    fn query_excludes_self_and_respects_k() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps, 3, DistanceMetric::Euclidean, 4).unwrap();
        let res = index.query_row(5, 7, 3);
        assert_eq!(res.len(), 7);
        assert!(res.iter().all(|&(r, _)| r != 5));
        for pair in res.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn arbitrary_vector_query_works() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build(reps, 3, DistanceMetric::Euclidean, 5).unwrap();
        // A vector near group 1's corner.
        let res = index.query(&[0.0, 5.0, 0.0, 0.0], 5, 1);
        assert_eq!(res.len(), 5);
        assert!(res.iter().all(|&(r, _)| (30..60).contains(&r)), "{res:?}");
    }

    #[test]
    fn f32_store_index_keeps_high_recall() {
        let reps = clustered_reps();
        let index = ClusteredIndex::build_with_precision(
            reps,
            3,
            DistanceMetric::Cosine,
            7,
            StorePrecision::F32,
        )
        .unwrap();
        assert_eq!(index.store().precision(), StorePrecision::F32);
        let queries: Vec<usize> = (0..90).step_by(5).collect();
        let recall = index.recall_at_k(&queries, 5, index.n_cells());
        assert!(recall >= 0.999, "f32 full-probe recall@5: {recall}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let index =
            ClusteredIndex::build(clustered_reps(), 3, DistanceMetric::Euclidean, 6).unwrap();
        index.query(&[1.0, 2.0], 3, 1);
    }

    #[test]
    fn rejects_bad_cell_counts() {
        let reps = clustered_reps();
        let zero = ClusteredIndex::build(reps.clone(), 0, DistanceMetric::Euclidean, 1);
        assert_eq!(
            zero.unwrap_err(),
            CoreError::InvalidCellCount {
                n_cells: 0,
                rows: 90
            }
        );
        let over = ClusteredIndex::build(reps, 91, DistanceMetric::Euclidean, 1);
        assert_eq!(
            over.unwrap_err(),
            CoreError::InvalidCellCount {
                n_cells: 91,
                rows: 90
            }
        );
    }
}
