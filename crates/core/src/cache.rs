//! Memoizing cache for the serving hot path.
//!
//! The deployed tool of Section 6 answers the same kind of request over and
//! over: "top-k companies similar to X, filtered". The ranking for a given
//! `(query, k, filter)` is a pure function of the representation matrix, so
//! a [`ServingCache`] memoizes it — repeat requests skip the distance scan
//! entirely and replay the stored list bit-for-bit.
//!
//! Correctness rules:
//!
//! - **Keyed by everything the answer depends on.** The key covers the query
//!   row, `k`, the full filter, and a *generation* number identifying the
//!   representation matrix the entry was computed against.
//! - **Explicit invalidation on retrain.** [`ServingCache::invalidate`]
//!   bumps the generation and drops every entry. A
//!   [`crate::app::SalesApplication`] captures the generation at attach
//!   time, so an application built *before* a retrain can never serve (or
//!   poison) entries belonging to the model built *after* it, even when both
//!   share one cache.
//! - **Bounded.** At most `capacity` entries are held; the oldest entry is
//!   evicted first (insertion order). Eviction only ever costs a recompute.
//! - **Observable, never load-bearing.** `serve.cache_hit` /
//!   `serve.cache_miss` counters record effectiveness; disabling the cache
//!   changes latency, never any result.

use crate::app::SimilarCompany;
use crate::similarity::DistanceMetric;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Hashable fingerprint of a [`crate::app::CompanyFilter`] (the `f64`
/// revenue bounds are keyed by their bit patterns).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct FilterKey {
    industry: Option<u8>,
    country: Option<u16>,
    employees: Option<(u32, u32)>,
    revenue_bits: Option<(u64, u64)>,
}

impl FilterKey {
    pub(crate) fn of(filter: &crate::app::CompanyFilter) -> FilterKey {
        FilterKey {
            industry: filter.industry.map(|s| s.0),
            country: filter.country,
            employees: filter.employees,
            revenue_bits: filter
                .revenue_musd
                .map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
        }
    }
}

/// Full cache key: one memoized `find_similar` answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    generation: u64,
    row: usize,
    k: usize,
    metric: DistanceMetric,
    filter: FilterKey,
}

impl CacheKey {
    pub(crate) fn new(
        generation: u64,
        row: usize,
        k: usize,
        metric: DistanceMetric,
        filter: FilterKey,
    ) -> CacheKey {
        CacheKey {
            generation,
            row,
            k,
            metric,
            filter,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    generation: u64,
    map: HashMap<CacheKey, Vec<SimilarCompany>>,
    order: VecDeque<CacheKey>,
}

/// A bounded, generation-stamped memo of similar-company answers. Shareable
/// across threads and across retrains; see the module docs for the
/// invalidation contract.
#[derive(Debug)]
pub struct ServingCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for ServingCache {
    fn default() -> Self {
        ServingCache::new(4096)
    }
}

impl ServingCache {
    /// Creates a cache holding at most `capacity` answers.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be positive");
        ServingCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The current generation. Entries are only served to applications
    /// attached at this generation.
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Drops every entry and advances the generation — call after retraining
    /// so stale rankings cannot outlive the model that produced them.
    pub fn invalidate(&self) {
        let mut inner = self.lock();
        inner.generation += 1;
        inner.map.clear();
        inner.order.clear();
    }

    /// Number of memoized answers currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no answers are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a memoized answer, counting the hit or miss.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<Vec<SimilarCompany>> {
        let hit = self.lock().map.get(key).cloned();
        let rec = hlm_obs::global();
        match hit {
            Some(v) => {
                rec.add("serve.cache_hit", 1);
                Some(v)
            }
            None => {
                rec.add("serve.cache_miss", 1);
                None
            }
        }
    }

    /// Memoizes an answer, evicting the oldest entry beyond capacity.
    pub(crate) fn insert(&self, key: CacheKey, value: Vec<SimilarCompany>) {
        let mut inner = self.lock();
        if inner.map.insert(key.clone(), value).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                inner.map.remove(&oldest);
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock can only leave a *valid* (if
        // partial) memo table behind; every entry is immutable once
        // inserted, so the map is safe to keep using.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlm_corpus::CompanyId;

    fn entry(id: u32, d: f64) -> Vec<SimilarCompany> {
        vec![SimilarCompany {
            id: CompanyId(id),
            distance: d,
        }]
    }

    fn key(generation: u64, row: usize, k: usize) -> CacheKey {
        CacheKey::new(
            generation,
            row,
            k,
            DistanceMetric::Cosine,
            FilterKey::of(&crate::app::CompanyFilter::default()),
        )
    }

    #[test]
    fn stores_and_replays_by_full_key() {
        let cache = ServingCache::new(8);
        cache.insert(key(0, 1, 5), entry(9, 0.25));
        assert_eq!(cache.get(&key(0, 1, 5)), Some(entry(9, 0.25)));
        // Any key component change misses.
        assert_eq!(cache.get(&key(0, 1, 6)), None);
        assert_eq!(cache.get(&key(0, 2, 5)), None);
        assert_eq!(cache.get(&key(1, 1, 5)), None);
    }

    #[test]
    fn invalidate_bumps_generation_and_clears() {
        let cache = ServingCache::new(8);
        cache.insert(key(0, 1, 5), entry(9, 0.25));
        assert_eq!(cache.generation(), 0);
        cache.invalidate();
        assert_eq!(cache.generation(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(0, 1, 5)), None);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ServingCache::new(2);
        cache.insert(key(0, 0, 1), entry(1, 0.1));
        cache.insert(key(0, 1, 1), entry(2, 0.2));
        cache.insert(key(0, 2, 1), entry(3, 0.3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(0, 0, 1)), None, "oldest evicted");
        assert!(cache.get(&key(0, 1, 1)).is_some());
        assert!(cache.get(&key(0, 2, 1)).is_some());
        // Overwriting an existing key does not grow the cache.
        cache.insert(key(0, 2, 1), entry(4, 0.4));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(0, 2, 1)), Some(entry(4, 0.4)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        ServingCache::new(0);
    }
}
