//! Top-k similar-company search over a representation matrix (Equation 5)
//! and the popularity-bias diagnostic of Section 3.1.

use hlm_corpus::{CompanyId, Corpus};
use hlm_linalg::vector::{cosine_distance, dot, euclidean_distance, norm};
use hlm_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Vector distance used for company comparison (Equation 5 allows any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// `1 − cos`.
    Cosine,
    /// L2 distance.
    Euclidean,
}

impl DistanceMetric {
    /// Distance between two representation vectors.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceMetric::Cosine => cosine_distance(a, b),
            DistanceMetric::Euclidean => euclidean_distance(a, b),
        }
    }
}

/// Max-heap entry ordered by `(distance, row)` — the heap root is the
/// *worst* of the kept candidates, so one comparison decides whether a new
/// candidate displaces it.
struct HeapEntry(usize, f64);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.1
            .partial_cmp(&other.1)
            .expect("finite distances")
            .then(self.0.cmp(&other.0))
    }
}

/// Push-based bounded k-selection: feed `(index, distance)` candidates one
/// at a time, read back the `k` smallest under ascending `(distance, index)`
/// order. The streaming form of [`bounded_top_k`], shared by the scoring
/// kernels in [`crate::repstore`] so chunked / blocked scans can keep one
/// accumulator per query (or per fan-out chunk) without materializing an
/// iterator.
///
/// Selection is input-order independent: any permutation of the same
/// candidate multiset yields the same result, including tie-breaks — the
/// property the parallel ordered reduction and the blocked batch kernel
/// rely on for bit-identical rankings.
pub struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<HeapEntry>,
}

impl TopK {
    /// An empty accumulator keeping at most `k` candidates.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one candidate; kept only if it beats the current worst (or
    /// capacity remains).
    ///
    /// # Panics
    /// Panics if `distance` is NaN.
    #[inline]
    pub fn push(&mut self, index: usize, distance: f64) {
        if self.k == 0 {
            return;
        }
        let entry = HeapEntry(index, distance);
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if entry < *self.heap.peek().expect("non-empty at capacity") {
            self.heap.push(entry);
            self.heap.pop();
        }
    }

    /// The kept candidates, ascending by `(distance, index)`.
    pub fn into_sorted(self) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .heap
            .into_iter()
            .map(|HeapEntry(i, d)| (i, d))
            .collect();
        out.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        });
        out
    }
}

/// The `k` smallest `(row, distance)` candidates under ascending
/// `(distance, row)` order, via a bounded max-heap: `O(n log k)` and `O(k)`
/// memory instead of sorting all `n` candidates. Exact — the result is
/// identical (including tie-breaks) to sorting the full candidate list and
/// truncating to `k`.
///
/// # Panics
/// Panics if a distance is NaN.
pub fn bounded_top_k(
    candidates: impl Iterator<Item = (usize, f64)>,
    k: usize,
) -> Vec<(usize, f64)> {
    let mut acc = TopK::new(k);
    for (i, d) in candidates {
        acc.push(i, d);
    }
    acc.into_sorted()
}

/// The `k` rows of `representations` closest to row `query` (excluding the
/// query itself), as `(row index, distance)` sorted by ascending distance
/// with deterministic tie-breaking on the row index.
///
/// Under cosine the query's norm is hoisted out of the scan (one `dot` per
/// candidate saved); the per-pair arithmetic is otherwise identical to
/// [`DistanceMetric::distance`], so results — bits and tie-breaks — match
/// [`top_k_similar_scalar`] exactly. Callers ranking *many* queries over
/// one matrix should build a [`crate::repstore::RepStore`] instead, which
/// also caches the per-row norms.
///
/// # Panics
/// Panics if `query` is out of range.
pub fn top_k_similar(
    representations: &Matrix,
    query: usize,
    k: usize,
    metric: DistanceMetric,
) -> Vec<(usize, f64)> {
    assert!(query < representations.rows(), "query row out of range");
    let q = representations.row(query);
    match metric {
        DistanceMetric::Cosine => {
            let nq = norm(q);
            bounded_top_k(
                (0..representations.rows())
                    .filter(|&i| i != query)
                    .map(|i| {
                        let r = representations.row(i);
                        let nr = norm(r);
                        let d = if nq == 0.0 || nr == 0.0 {
                            // Zero-vector convention: maximally distant (see
                            // `cosine_distance` and DESIGN.md §3.10).
                            1.0
                        } else {
                            1.0 - (dot(q, r) / (nq * nr)).clamp(-1.0, 1.0)
                        };
                        (i, d)
                    }),
                k,
            )
        }
        DistanceMetric::Euclidean => bounded_top_k(
            (0..representations.rows())
                .filter(|&i| i != query)
                .map(|i| (i, euclidean_distance(q, representations.row(i)))),
            k,
        ),
    }
}

/// The pre-`RepStore` scalar reference scan: `metric.distance` per
/// candidate, norms recomputed every pair. Kept verbatim as the baseline
/// the byte-identity tests pin the kernel layer against, and as the
/// "scalar" contender in the query-path benchmarks.
///
/// # Panics
/// Panics if `query` is out of range.
pub fn top_k_similar_scalar(
    representations: &Matrix,
    query: usize,
    k: usize,
    metric: DistanceMetric,
) -> Vec<(usize, f64)> {
    assert!(query < representations.rows(), "query row out of range");
    let q = representations.row(query);
    bounded_top_k(
        (0..representations.rows())
            .filter(|&i| i != query)
            .map(|i| (i, metric.distance(q, representations.row(i)))),
        k,
    )
}

/// Quantifies the Section-3.1 failure mode of naive representations: among
/// the products shared between each company and its nearest neighbour, what
/// fraction belongs to the globally most popular quartile of products?
///
/// A value close to 1 means neighbourhood structure is dictated by
/// ubiquitous products (OS, printers, …) rather than by the distinguishing
/// parts of the install base — exactly why the paper replaces raw vectors
/// with learned features.
///
/// # Panics
/// Panics if `ids` and `representations` disagree in length or fewer than 2
/// companies are given.
pub fn popularity_bias(
    corpus: &Corpus,
    ids: &[CompanyId],
    representations: &Matrix,
    metric: DistanceMetric,
) -> f64 {
    assert_eq!(
        ids.len(),
        representations.rows(),
        "one row per company required"
    );
    assert!(ids.len() >= 2, "need at least two companies");

    // Top popularity quartile by document frequency.
    let df = corpus.document_frequencies();
    let mut order: Vec<usize> = (0..df.len()).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(df[p]));
    let quartile = (df.len() / 4).max(1);
    let mut is_popular = vec![false; df.len()];
    for &p in &order[..quartile] {
        is_popular[p] = true;
    }

    let mut popular_shared = 0usize;
    let mut total_shared = 0usize;
    for (row, &id) in ids.iter().enumerate() {
        let nn = top_k_similar(representations, row, 1, metric);
        let Some(&(nn_row, _)) = nn.first() else {
            continue;
        };
        let a = corpus.company(id).product_set();
        let b = corpus.company(ids[nn_row]).product_set();
        let b_set: std::collections::HashSet<_> = b.into_iter().collect();
        for p in a {
            if b_set.contains(&p) {
                total_shared += 1;
                if is_popular[p.index()] {
                    popular_shared += 1;
                }
            }
        }
    }
    if total_shared == 0 {
        0.0
    } else {
        popular_shared as f64 / total_shared as f64
    }
}

/// Fraction of points whose nearest neighbour (excluding themselves) shares
/// their label — a direct measure of how well a representation space groups
/// companies by their latent profile. The paper's Section-3.1 complaint is
/// precisely that raw binary distances score poorly here because popular
/// products swamp the profile signal.
///
/// # Panics
/// Panics if `labels.len()` differs from the row count or fewer than 2
/// points are given.
pub fn neighbor_label_agreement(
    representations: &Matrix,
    labels: &[usize],
    metric: DistanceMetric,
) -> f64 {
    assert_eq!(
        labels.len(),
        representations.rows(),
        "one label per row required"
    );
    assert!(labels.len() >= 2, "need at least two points");
    let mut agree = 0usize;
    for i in 0..representations.rows() {
        let nn = top_k_similar(representations, i, 1, metric);
        if labels[nn[0].0] == labels[i] {
            agree += 1;
        }
    }
    agree as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representations::{binary_docs, lda_representations, raw_binary};
    use hlm_datagen::GeneratorConfig;
    use hlm_lda::{GibbsTrainer, LdaConfig};

    #[test]
    fn top_k_orders_by_distance() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[5.0, 0.0], &[0.1, 0.0]]);
        let res = top_k_similar(&m, 0, 2, DistanceMetric::Euclidean);
        assert_eq!(res[0].0, 3);
        assert_eq!(res[1].0, 1);
        assert!((res[0].1 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn query_excluded_and_k_clamped() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let res = top_k_similar(&m, 0, 10, DistanceMetric::Euclidean);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, 1);
    }

    #[test]
    fn cosine_ignores_magnitude() {
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[10.0, 10.0], &[1.0, 0.0]]);
        let res = top_k_similar(&m, 0, 1, DistanceMetric::Cosine);
        assert_eq!(res[0].0, 1, "same direction wins under cosine");
        let res_e = top_k_similar(&m, 0, 1, DistanceMetric::Euclidean);
        assert_eq!(res_e[0].0, 2, "closer point wins under euclidean");
    }

    #[test]
    fn bounded_top_k_matches_full_sort_exactly() {
        // Pseudo-random distances with planted ties: the heap must keep the
        // same k (including tie-breaks on the index) as a full sort.
        let mut state = 7u64;
        let dists: Vec<(usize, f64)> = (0..200)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 17) as f64 / 16.0 // lots of exact ties
            })
            .enumerate()
            .collect();
        for k in [0usize, 1, 5, 50, 200, 500] {
            let mut sorted = dists.clone();
            sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            sorted.truncate(k);
            assert_eq!(bounded_top_k(dists.iter().copied(), k), sorted, "k={k}");
        }
    }

    #[test]
    fn hoisted_norm_scan_is_byte_identical_to_scalar_reference() {
        // Includes a zero row (empty install base) and a duplicate row.
        let mut state = 3u64;
        let mut m = Matrix::from_fn(40, 5, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        });
        for j in 0..5 {
            m.set(7, j, 0.0);
            let v = m.get(0, j);
            m.set(9, j, v);
        }
        for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
            for q in [0usize, 7, 9, 39] {
                let fast = top_k_similar(&m, q, 12, metric);
                let reference = top_k_similar_scalar(&m, q, 12, metric);
                assert_eq!(fast.len(), reference.len());
                for (f, r) in fast.iter().zip(&reference) {
                    assert_eq!(f.0, r.0, "{metric:?} q={q}");
                    assert_eq!(f.1.to_bits(), r.1.to_bits(), "{metric:?} q={q}");
                }
            }
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        let row: &[f64] = &[1.0, 0.0];
        let m = Matrix::from_rows(&[row, row, row]);
        let res = top_k_similar(&m, 2, 2, DistanceMetric::Euclidean);
        assert_eq!(res.iter().map(|r| r.0).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn raw_neighbours_share_mostly_popular_products() {
        // Section 3.1: under raw binary representations, what neighbours
        // have in common is dominated by the globally popular quartile.
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(250, 9));
        let ids: Vec<CompanyId> = corpus.ids().collect();
        let raw = raw_binary(&corpus, &ids);
        let bias_raw = popularity_bias(&corpus, &ids, &raw, DistanceMetric::Cosine);
        assert!(
            bias_raw > 0.3,
            "raw neighbours should share mostly popular products, got {bias_raw}"
        );
    }

    #[test]
    fn lda_neighbours_agree_on_latent_profile_more_than_raw() {
        // The motivating claim, end-to-end: LDA features recover the planted
        // profile structure better than raw binary vectors. Labels are the
        // generator's industry -> dominant-profile assignment (round-robin
        // over 3 profiles).
        let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(250, 9));
        let ids: Vec<CompanyId> = corpus.ids().collect();
        let labels: Vec<usize> = ids
            .iter()
            .map(|&id| corpus.company(id).industry.0 as usize % 3)
            .collect();
        let raw = raw_binary(&corpus, &ids);
        let docs = binary_docs(&corpus, &ids);
        let lda = GibbsTrainer::new(LdaConfig {
            n_topics: 3,
            vocab_size: 38,
            n_iters: 60,
            burn_in: 30,
            sample_lag: 5,
            ..Default::default()
        })
        .fit(&docs);
        let lda_b = lda_representations(&lda, &docs);

        // 1-NN agreement: both spaces carry the profile signal, LDA well
        // above the 1/3 chance level.
        let agree_lda = neighbor_label_agreement(&lda_b, &labels, DistanceMetric::Cosine);
        assert!(
            agree_lda > 0.5,
            "LDA agreement {agree_lda} should be well above chance 1/3"
        );

        // The paper's actual representation-quality claim (Figure 7):
        // k-means clusters on LDA features are far better separated
        // (silhouette) than clusters on raw binary vectors.
        use hlm_cluster::{kmeans, silhouette_score, KmeansOptions};
        let sil = |reps: &Matrix| -> f64 {
            let res = kmeans(reps, &KmeansOptions::new(10));
            silhouette_score(reps, &res.assignments)
        };
        let sil_raw = sil(&raw);
        let sil_lda = sil(&lda_b);
        assert!(
            sil_lda > sil_raw + 0.1,
            "LDA silhouette {sil_lda} must clearly beat raw {sil_raw}"
        );
    }
}
