//! The paper's contribution layer: learned company representations,
//! similarity search, unified recommenders for every model family, and the
//! sales application of Section 6.
//!
//! This crate glues the substrates together:
//!
//! * [`representations`] — builds the company feature matrices `B_i`
//!   compared in Figure 7: raw binary, raw TF-IDF, LDA topic mixtures (with
//!   binary or TF-IDF input) and LSTM hidden-state embeddings;
//! * [`recommenders`] — adapters implementing the evaluation harness's
//!   [`hlm_eval::Recommender`] / [`hlm_eval::RecommenderFactory`] traits for
//!   LDA, LSTM, n-gram and CHH models, plus the dedicated BPMF evaluation of
//!   Figures 5–6 (BPMF scores are per company-cell, not per history, so it
//!   has its own protocol);
//! * [`similarity`] — top-k similar-company search over any representation,
//!   with the popularity-bias diagnostic motivating learned features
//!   (Section 3.1);
//! * [`app`] — the sales application: similar-company search with industry /
//!   geography / size filters and whitespace product recommendations.
//!
//! # Quickstart
//!
//! ```
//! use hlm_core::representations::lda_representations;
//! use hlm_core::similarity::{top_k_similar, DistanceMetric};
//! use hlm_datagen::GeneratorConfig;
//! use hlm_lda::{GibbsTrainer, LdaConfig};
//!
//! let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(200, 1));
//! let ids: Vec<_> = corpus.ids().collect();
//! let docs = hlm_core::representations::binary_docs(&corpus, &ids);
//! let lda = GibbsTrainer::new(LdaConfig {
//!     n_topics: 3,
//!     vocab_size: corpus.vocab().len(),
//!     n_iters: 30,
//!     burn_in: 15,
//!     ..Default::default()
//! })
//! .fit(&docs);
//! let b = lda_representations(&lda, &docs);
//! let similar = top_k_similar(&b, 0, 5, DistanceMetric::Cosine);
//! assert_eq!(similar.len(), 5);
//! ```

pub mod app;
pub mod index;
pub mod recommenders;
pub mod representations;
pub mod similarity;

pub use app::{CompanyFilter, SalesApplication, WhitespaceRecommendation};
pub use index::ClusteredIndex;
pub use recommenders::{
    evaluate_bpmf, AprioriRecommenderFactory, BpmfEvaluation, ChhRecommenderFactory,
    LdaRecommenderFactory, LstmRecommenderFactory, NgramRecommenderFactory,
};
pub use similarity::{neighbor_label_agreement, popularity_bias, top_k_similar, DistanceMetric};
