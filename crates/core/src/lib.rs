//! The paper's contribution layer: learned company representations,
//! similarity search, unified recommenders for every model family, and the
//! sales application of Section 6.
//!
//! This crate glues the substrates together:
//!
//! * [`representations`] — builds the company feature matrices `B_i`
//!   compared in Figure 7: raw binary, raw TF-IDF, LDA topic mixtures (with
//!   binary or TF-IDF input) and LSTM hidden-state embeddings;
//! * [`recommenders`] — adapters implementing the evaluation harness's
//!   [`hlm_eval::Recommender`] / [`hlm_eval::RecommenderFactory`] traits for
//!   LDA, LSTM, n-gram and CHH models, plus the dedicated BPMF evaluation of
//!   Figures 5–6 (BPMF scores are per company-cell, not per history, so it
//!   has its own protocol);
//! * [`similarity`] — top-k similar-company search over any representation,
//!   with the popularity-bias diagnostic motivating learned features
//!   (Section 3.1);
//! * [`app`] — the sales application: similar-company search with industry /
//!   geography / size filters and whitespace product recommendations;
//! * [`index`] — the clustered (IVF-style) approximate index the application
//!   uses for sub-linear similarity search;
//! * [`repstore`] — the cell-major scoring store and kernel layer behind the
//!   serving read path: cached norms, dot-product cosine, an opt-in f32
//!   path, and the blocked multi-query kernel (DESIGN.md §3.10);
//! * [`cache`] — the bounded, generation-stamped [`ServingCache`] memoizing
//!   similar-company answers on the serving hot path, invalidated on
//!   retrain;
//! * [`error`] — the typed [`CoreError`] these layers return instead of
//!   panicking on shape or range mismatches.
//!
//! Applications should not drive these pieces directly: the `hlm-engine`
//! crate wraps them in a single entry point (`ModelSpec` → `TrainedModel`
//! registry, `Engine::sales_app`, drift detection) and is the API the CLI,
//! benchmarks and examples use.
//!
//! # Quickstart (through the engine)
//!
//! ```
//! use hlm_core::representations::lda_representations;
//! use hlm_core::{CompanyFilter, DistanceMetric};
//! use hlm_datagen::GeneratorConfig;
//! use hlm_engine::{Engine, LdaEstimator};
//! use hlm_lda::LdaConfig;
//!
//! let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(200, 1));
//! let ids: Vec<_> = corpus.ids().collect();
//! let docs = hlm_core::representations::binary_docs(&corpus, &ids);
//! let lda = hlm_engine::fit_lda(
//!     LdaConfig {
//!         n_topics: 3,
//!         vocab_size: corpus.vocab().len(),
//!         n_iters: 30,
//!         burn_in: 15,
//!         ..Default::default()
//!     },
//!     LdaEstimator::Gibbs,
//!     &docs,
//! )
//! .expect("valid LDA spec");
//! let b = lda_representations(&lda, &docs);
//!
//! let engine = Engine::new(corpus);
//! let app = engine.sales_app(b, DistanceMetric::Cosine).expect("shapes match");
//! let query = app.corpus().ids().next().expect("non-empty corpus");
//! let similar = app.find_similar(query, 5, &CompanyFilter::default()).expect("id in range");
//! assert_eq!(similar.len(), 5);
//! ```

pub mod app;
pub mod cache;
pub mod error;
pub mod index;
pub mod recommenders;
pub mod representations;
pub mod repstore;
pub mod similarity;

pub use app::{CompanyFilter, SalesApplication, WhitespaceRecommendation};
pub use cache::ServingCache;
pub use error::CoreError;
pub use index::ClusteredIndex;
pub use recommenders::{
    evaluate_bpmf, masked_lda_scores, AprioriRecommenderFactory, BpmfEvaluation,
    ChhRecommenderFactory, LdaRecommenderFactory, LstmRecommenderFactory, NgramRecommenderFactory,
};
pub use repstore::{PreparedQuery, RepStore, StorePrecision};
pub use similarity::{
    bounded_top_k, neighbor_label_agreement, popularity_bias, top_k_similar, top_k_similar_scalar,
    DistanceMetric, TopK,
};
