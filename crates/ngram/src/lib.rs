//! N-gram language models over product-acquisition sequences.
//!
//! The paper's classical sequential baseline (Sections 3.2, 5): unigram
//! "bag-of-words", bigram and trigram models, evaluated by average
//! perplexity per product (Table 1 reports unigram 19.5 and n-gram ≥ 15.5)
//! and used as a sequential-association-rule recommender.
//!
//! Smoothing is Jelinek–Mercer interpolation across orders with add-`k`
//! smoothing inside each order:
//!
//! ```text
//! P(w | ctx) = Σ_o λ_o · (count_o(ctx_o, w) + k) / (count_o(ctx_o) + k·V)
//! ```
//!
//! where `ctx_o` is the most recent `o − 1` tokens. Sequences are padded
//! with BOS markers and terminated with EOS, sharing the token conventions
//! of the LSTM crate so perplexities are directly comparable.

use hlm_corpus::sequence::Token;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of an interpolated n-gram model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NgramConfig {
    /// Highest order (1 = unigram, 2 = bigram, 3 = trigram, …).
    pub order: usize,
    /// Number of products `M` (the token alphabet adds BOS and EOS).
    pub vocab_size: usize,
    /// Interpolation weights `λ_1 … λ_order` (low order first); must sum
    /// to 1. `None` uses weights proportional to `2^o`, favouring the
    /// highest order.
    pub lambdas: Option<Vec<f64>>,
    /// Add-`k` smoothing constant inside each order.
    pub add_k: f64,
}

impl NgramConfig {
    /// Unigram ("bag of words") configuration.
    pub fn unigram(vocab_size: usize) -> Self {
        NgramConfig {
            order: 1,
            vocab_size,
            lambdas: None,
            add_k: 0.5,
        }
    }

    /// Bigram configuration.
    pub fn bigram(vocab_size: usize) -> Self {
        NgramConfig {
            order: 2,
            vocab_size,
            lambdas: None,
            add_k: 0.5,
        }
    }

    /// Trigram configuration.
    pub fn trigram(vocab_size: usize) -> Self {
        NgramConfig {
            order: 3,
            vocab_size,
            lambdas: None,
            add_k: 0.5,
        }
    }

    /// Effective interpolation weights.
    ///
    /// # Panics
    /// Panics if explicit weights have the wrong length, contain negatives,
    /// or do not sum to ~1.
    pub fn effective_lambdas(&self) -> Vec<f64> {
        match &self.lambdas {
            Some(l) => {
                assert_eq!(l.len(), self.order, "need one λ per order");
                assert!(l.iter().all(|&x| x >= 0.0), "λ must be non-negative");
                let s: f64 = l.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "λ must sum to 1, got {s}");
                l.clone()
            }
            None => {
                let raw: Vec<f64> = (0..self.order).map(|o| (1 << o) as f64).collect();
                let s: f64 = raw.iter().sum();
                raw.into_iter().map(|x| x / s).collect()
            }
        }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.order >= 1, "order must be at least 1");
        assert!(self.vocab_size >= 1, "empty vocabulary");
        assert!(
            self.add_k > 0.0,
            "add_k must be positive for a proper distribution"
        );
        let _ = self.effective_lambdas();
    }
}

/// Serde representation for context tables: JSON object keys must be
/// strings, so `Vec<usize>`-keyed maps are (de)serialized as sorted pair
/// lists.
mod tables_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    type Tables = Vec<HashMap<Vec<usize>, HashMap<usize, f64>>>;
    type TableEntries<'a> = Vec<Vec<(&'a Vec<usize>, &'a HashMap<usize, f64>)>>;
    type OwnedTableEntries = Vec<Vec<(Vec<usize>, HashMap<usize, f64>)>>;

    pub fn serialize<S: Serializer>(tables: &Tables, s: S) -> Result<S::Ok, S::Error> {
        let as_pairs: TableEntries<'_> = tables
            .iter()
            .map(|t| {
                let mut entries: Vec<_> = t.iter().collect();
                entries.sort_by(|a, b| a.0.cmp(b.0));
                entries
            })
            .collect();
        as_pairs.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Tables, D::Error> {
        let as_pairs: OwnedTableEntries = Vec::deserialize(d)?;
        Ok(as_pairs
            .into_iter()
            .map(|t| t.into_iter().collect())
            .collect())
    }
}

/// A fitted interpolated n-gram language model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NgramLm {
    cfg: NgramConfig,
    lambdas: Vec<f64>,
    /// For each order `o` (index `o − 1`): counts of `(context, next)` and
    /// totals per context. Contexts are token-index vectors of length
    /// `o − 1` (empty for unigrams).
    #[serde(with = "tables_serde")]
    ngram_counts: Vec<HashMap<Vec<usize>, HashMap<usize, f64>>>,
    /// Total training tokens (diagnostic).
    total_tokens: usize,
}

impl NgramLm {
    /// Fits the model on product sequences.
    ///
    /// # Panics
    /// Panics on invalid configuration or products outside the vocabulary.
    pub fn fit(cfg: NgramConfig, sequences: &[Vec<usize>]) -> Self {
        cfg.validate();
        let lambdas = cfg.effective_lambdas();
        let m = cfg.vocab_size;
        let bos = Token::Bos.index(m);
        let eos = Token::Eos.index(m);
        let mut ngram_counts: Vec<HashMap<Vec<usize>, HashMap<usize, f64>>> =
            vec![HashMap::new(); cfg.order];
        let mut total_tokens = 0usize;

        for seq in sequences {
            for &w in seq {
                assert!(w < m, "product {w} outside vocabulary of {m}");
            }
            // (order-1) BOS markers + products + EOS.
            let mut toks: Vec<usize> = Vec::with_capacity(seq.len() + cfg.order);
            toks.extend(std::iter::repeat_n(bos, cfg.order - 1));
            toks.extend(seq.iter().copied());
            toks.push(eos);
            total_tokens += seq.len();

            for pos in cfg.order - 1..toks.len() {
                let w = toks[pos];
                for o in 1..=cfg.order {
                    let ctx = toks[pos + 1 - o..pos].to_vec();
                    *ngram_counts[o - 1]
                        .entry(ctx)
                        .or_default()
                        .entry(w)
                        .or_insert(0.0) += 1.0;
                }
            }
        }
        NgramLm {
            cfg,
            lambdas,
            ngram_counts,
            total_tokens,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NgramConfig {
        &self.cfg
    }

    /// Training token count.
    pub fn total_tokens(&self) -> usize {
        self.total_tokens
    }

    /// Alphabet size (products + BOS + EOS).
    fn n_tokens(&self) -> usize {
        self.cfg.vocab_size + 2
    }

    /// Add-k probability of `next` under order `o` given `ctx` (the last
    /// `o − 1` tokens).
    fn order_prob(&self, o: usize, ctx: &[usize], next: usize) -> f64 {
        let k = self.cfg.add_k;
        let v = self.n_tokens() as f64;
        match self.ngram_counts[o - 1].get(ctx) {
            Some(nexts) => {
                let total: f64 = nexts.values().sum();
                let c = nexts.get(&next).copied().unwrap_or(0.0);
                (c + k) / (total + k * v)
            }
            None => 1.0 / v,
        }
    }

    /// Interpolated probability of the token index `next` after the product
    /// history `history` (token indices; BOS padding applied internally).
    pub fn token_prob(&self, history: &[usize], next: usize) -> f64 {
        let m = self.cfg.vocab_size;
        let bos = Token::Bos.index(m);
        // Pad the history with BOS so every order has a full context.
        let mut padded: Vec<usize> =
            std::iter::repeat_n(bos, self.cfg.order.saturating_sub(1)).collect();
        padded.extend(history.iter().copied());
        let mut p = 0.0;
        for (o, &lam) in (1..=self.cfg.order).zip(&self.lambdas) {
            let ctx = &padded[padded.len() + 1 - o..];
            p += lam * self.order_prob(o, ctx, next);
        }
        p
    }

    /// Full next-token distribution given a product history.
    pub fn predict_next_tokens(&self, history: &[usize]) -> Vec<f64> {
        (0..self.n_tokens())
            .map(|w| self.token_prob(history, w))
            .collect()
    }

    /// Next-product distribution (BOS/EOS mass removed, renormalized) — the
    /// sequential-association-rule recommender score.
    pub fn predict_next(&self, history: &[usize]) -> Vec<f64> {
        let mut d = self.predict_next_tokens(history);
        d.truncate(self.cfg.vocab_size);
        let s: f64 = d.iter().sum();
        if s > 0.0 {
            d.iter_mut().for_each(|x| *x /= s);
        }
        d
    }

    /// Log-likelihood of a product sequence; `include_eos` additionally
    /// scores the end-of-sequence event. Returns `(Σ ln p, token count)`.
    pub fn sequence_log_likelihood(&self, seq: &[usize], include_eos: bool) -> (f64, usize) {
        let m = self.cfg.vocab_size;
        let eos = Token::Eos.index(m);
        let mut ll = 0.0;
        let mut n = 0usize;
        for (i, &w) in seq.iter().enumerate() {
            assert!(w < m, "product {w} outside vocabulary");
            ll += self.token_prob(&seq[..i], w).max(f64::MIN_POSITIVE).ln();
            n += 1;
        }
        if include_eos {
            ll += self.token_prob(seq, eos).max(f64::MIN_POSITIVE).ln();
            n += 1;
        }
        (ll, n)
    }

    /// Average perplexity per product over sequences (EOS excluded, matching
    /// the paper's measure). Returns NaN for empty input.
    pub fn perplexity(&self, seqs: &[Vec<usize>]) -> f64 {
        let mut ll = 0.0;
        let mut n = 0usize;
        for s in seqs {
            let (l, c) = self.sequence_log_likelihood(s, false);
            ll += l;
            n += c;
        }
        if n == 0 {
            f64::NAN
        } else {
            (-ll / n as f64).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn markov_sequences(n: usize, seed: u64, determinism: f64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = 5 + rng.gen_range(0..4);
                let mut cur = rng.gen_range(0..4usize);
                let mut s = Vec::with_capacity(len);
                for _ in 0..len {
                    s.push(cur);
                    cur = if rng.gen::<f64>() < determinism {
                        (cur + 1) % 4
                    } else {
                        rng.gen_range(0..4)
                    };
                }
                s
            })
            .collect()
    }

    #[test]
    fn config_constructors_validate() {
        NgramConfig::unigram(38).validate();
        NgramConfig::bigram(38).validate();
        NgramConfig::trigram(38).validate();
        let l = NgramConfig::trigram(38).effective_lambdas();
        assert_eq!(l.len(), 3);
        assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(l[2] > l[1] && l[1] > l[0], "higher orders weigh more");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_lambdas() {
        let cfg = NgramConfig {
            order: 2,
            vocab_size: 4,
            lambdas: Some(vec![0.5, 0.9]),
            add_k: 0.1,
        };
        cfg.validate();
    }

    #[test]
    fn distributions_sum_to_one() {
        let seqs = markov_sequences(50, 1, 0.9);
        let lm = NgramLm::fit(NgramConfig::trigram(4), &seqs);
        for hist in [&[][..], &[0][..], &[2, 3][..]] {
            let d = lm.predict_next_tokens(hist);
            assert!(
                (d.iter().sum::<f64>() - 1.0).abs() < 1e-9,
                "token dist sums to {}",
                d.iter().sum::<f64>()
            );
            let dp = lm.predict_next(hist);
            assert!((dp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_eq!(dp.len(), 4);
        }
    }

    #[test]
    fn bigram_learns_transitions() {
        let seqs = markov_sequences(200, 2, 0.95);
        let lm = NgramLm::fit(NgramConfig::bigram(4), &seqs);
        let d = lm.predict_next(&[0]);
        assert!(d[1] > 0.6, "p(1 | 0) = {}", d[1]);
    }

    #[test]
    fn higher_order_fits_sequential_data_better() {
        let train = markov_sequences(300, 3, 0.9);
        let test = markov_sequences(60, 4, 0.9);
        let p1 = NgramLm::fit(NgramConfig::unigram(4), &train).perplexity(&test);
        let p2 = NgramLm::fit(NgramConfig::bigram(4), &train).perplexity(&test);
        let p3 = NgramLm::fit(NgramConfig::trigram(4), &train).perplexity(&test);
        assert!(p2 < p1, "bigram {p2} must beat unigram {p1}");
        assert!(
            p3 <= p2 * 1.05,
            "trigram {p3} should not be much worse than bigram {p2}"
        );
        // Near-deterministic transitions: bigram perplexity well below
        // uniform 4 (the interpolated unigram component keeps it above the
        // entropy-rate bound of ~1.6).
        assert!(p2 < 2.6, "bigram perplexity {p2}");
    }

    #[test]
    fn unigram_perplexity_matches_marginal_entropy() {
        // All tokens are product 0 → perplexity approaches 1 (up to smoothing).
        let seqs = vec![vec![0usize; 20]; 20];
        let lm = NgramLm::fit(NgramConfig::unigram(3), &seqs);
        let ppl = lm.perplexity(&seqs);
        assert!(ppl < 1.2, "degenerate unigram perplexity {ppl}");
    }

    #[test]
    fn unseen_context_falls_back_to_uniform_component() {
        let seqs = vec![vec![0usize, 1, 2]];
        let lm = NgramLm::fit(NgramConfig::trigram(4), &seqs);
        // Context [3, 3] never occurs; probability must still be positive
        // and the distribution proper.
        let p = lm.token_prob(&[3, 3], 0);
        assert!(p > 0.0);
        let d = lm.predict_next_tokens(&[3, 3]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eos_is_scored_only_on_request() {
        let seqs = vec![vec![0usize, 1], vec![1, 0]];
        let lm = NgramLm::fit(NgramConfig::bigram(2), &seqs);
        let (_, n_no) = lm.sequence_log_likelihood(&[0, 1], false);
        let (_, n_yes) = lm.sequence_log_likelihood(&[0, 1], true);
        assert_eq!(n_no, 2);
        assert_eq!(n_yes, 3);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn fit_rejects_out_of_vocab() {
        NgramLm::fit(NgramConfig::bigram(2), &[vec![5]]);
    }

    #[test]
    fn deterministic_fit() {
        let seqs = markov_sequences(40, 5, 0.8);
        let a = NgramLm::fit(NgramConfig::trigram(4), &seqs);
        let b = NgramLm::fit(NgramConfig::trigram(4), &seqs);
        assert_eq!(a.predict_next(&[1, 2]), b.predict_next(&[1, 2]));
    }

    #[test]
    fn short_history_is_padded_with_bos() {
        let seqs = vec![vec![2usize, 0, 1], vec![2, 1, 0]];
        let lm = NgramLm::fit(NgramConfig::trigram(3), &seqs);
        // First product is always 2: p(2 | empty history) should dominate.
        let d = lm.predict_next(&[]);
        assert!(
            d[2] > d[0] && d[2] > d[1],
            "start-of-sequence structure: {d:?}"
        );
    }
}
