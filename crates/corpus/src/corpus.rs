//! The company corpus `C = {c_0, …, c_{N−1}}`.

use crate::company::{Company, CompanyId, Sic2};
use crate::vocab::{ProductId, Vocabulary};
use hlm_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A corpus of companies over a shared product-category vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    vocab: Vocabulary,
    companies: Vec<Company>,
}

impl Corpus {
    /// Builds a corpus, validating that every install event refers to a
    /// product inside the vocabulary.
    ///
    /// # Panics
    /// Panics if any event's product id is out of vocabulary range.
    pub fn new(vocab: Vocabulary, companies: Vec<Company>) -> Self {
        for (i, c) in companies.iter().enumerate() {
            for e in c.events() {
                assert!(
                    vocab.contains(e.product),
                    "company {i} ({}) has product {} outside the {}-category vocabulary",
                    c.name,
                    e.product,
                    vocab.len()
                );
            }
        }
        Corpus { vocab, companies }
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of companies (`N`).
    pub fn len(&self) -> usize {
        self.companies.len()
    }

    /// True when the corpus holds no companies.
    pub fn is_empty(&self) -> bool {
        self.companies.is_empty()
    }

    /// Borrow a company by index.
    ///
    /// # Panics
    /// Panics on out-of-range index.
    pub fn company(&self, id: CompanyId) -> &Company {
        &self.companies[id.index()]
    }

    /// All companies in order.
    pub fn companies(&self) -> &[Company] {
        &self.companies
    }

    /// Consumes the corpus, returning its vocabulary and companies (used by
    /// the streaming shard writer to avoid cloning a whole shard).
    pub fn into_parts(self) -> (Vocabulary, Vec<Company>) {
        (self.vocab, self.companies)
    }

    /// Iterates `(id, company)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CompanyId, &Company)> {
        self.companies
            .iter()
            .enumerate()
            .map(|(i, c)| (CompanyId(i as u32), c))
    }

    /// Ids in corpus order.
    pub fn ids(&self) -> impl Iterator<Item = CompanyId> {
        (0..self.companies.len() as u32).map(CompanyId)
    }

    /// Document frequency of every product: the number of companies owning
    /// it. Index by `ProductId::index`.
    pub fn document_frequencies(&self) -> Vec<usize> {
        let mut df = vec![0usize; self.vocab.len()];
        for c in &self.companies {
            for p in c.product_set() {
                df[p.index()] += 1;
            }
        }
        df
    }

    /// Empirical unigram distribution over products (token counts across all
    /// install bases, normalized). Products never observed get probability 0.
    pub fn unigram_distribution(&self) -> Vec<f64> {
        let mut counts = vec![0.0f64; self.vocab.len()];
        let mut total = 0.0;
        for c in &self.companies {
            for e in c.events() {
                counts[e.product.index()] += 1.0;
                total += 1.0;
            }
        }
        if total > 0.0 {
            counts.iter_mut().for_each(|x| *x /= total);
        }
        counts
    }

    /// Total number of product tokens across all companies.
    pub fn total_tokens(&self) -> usize {
        self.companies.iter().map(|c| c.product_count()).sum()
    }

    /// Mean install-base size.
    pub fn mean_products_per_company(&self) -> f64 {
        if self.companies.is_empty() {
            0.0
        } else {
            self.total_tokens() as f64 / self.companies.len() as f64
        }
    }

    /// The binary company-product matrix (`N x M`, Equation 3 stacked).
    pub fn binary_matrix(&self) -> Matrix {
        let m = self.vocab.len();
        let mut out = Matrix::zeros(self.companies.len(), m);
        for (i, c) in self.companies.iter().enumerate() {
            for e in c.events() {
                out.set(i, e.product.index(), 1.0);
            }
        }
        out
    }

    /// Binary matrix restricted to a subset of companies (used to build
    /// representations for a split).
    pub fn binary_matrix_for(&self, ids: &[CompanyId]) -> Matrix {
        let m = self.vocab.len();
        let mut out = Matrix::zeros(ids.len(), m);
        for (row, &id) in ids.iter().enumerate() {
            for e in self.company(id).events() {
                out.set(row, e.product.index(), 1.0);
            }
        }
        out
    }

    /// The set views `A_i` for a subset of companies, as id-index vectors —
    /// the "documents" fed to LDA.
    pub fn documents_for(&self, ids: &[CompanyId]) -> Vec<Vec<ProductId>> {
        ids.iter()
            .map(|&id| self.company(id).product_set())
            .collect()
    }

    /// The sequence views `AS_i` for a subset of companies — the inputs to
    /// the sequential models (LSTM, n-gram, CHH).
    pub fn sequences_for(&self, ids: &[CompanyId]) -> Vec<Vec<ProductId>> {
        ids.iter()
            .map(|&id| self.company(id).product_sequence())
            .collect()
    }

    /// The distinct SIC2 industries present, sorted.
    pub fn industries(&self) -> Vec<Sic2> {
        let mut v: Vec<Sic2> = self.companies.iter().map(|c| c.industry).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company::InstallEvent;
    use crate::time::Month;

    fn sample_corpus() -> Corpus {
        let vocab = Vocabulary::new(["a", "b", "c"]);
        let mut c0 = Company::new(10, "zero", Sic2(1), 0);
        c0.add_event(InstallEvent::at(ProductId(0), Month::from_ym(2000, 1)));
        c0.add_event(InstallEvent::at(ProductId(2), Month::from_ym(2001, 1)));
        let mut c1 = Company::new(11, "one", Sic2(2), 0);
        c1.add_event(InstallEvent::at(ProductId(0), Month::from_ym(2002, 1)));
        Corpus::new(vocab, vec![c0, c1])
    }

    #[test]
    fn basic_stats() {
        let c = sample_corpus();
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_tokens(), 3);
        assert_eq!(c.mean_products_per_company(), 1.5);
        assert_eq!(c.document_frequencies(), vec![2, 0, 1]);
        assert_eq!(c.industries(), vec![Sic2(1), Sic2(2)]);
    }

    #[test]
    fn unigram_distribution_normalizes() {
        let c = sample_corpus();
        let u = c.unigram_distribution();
        assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((u[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
    }

    #[test]
    fn binary_matrix_shape_and_content() {
        let c = sample_corpus();
        let m = c.binary_matrix();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(0), &[1.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
        let sub = c.binary_matrix_for(&[CompanyId(1)]);
        assert_eq!(sub.shape(), (1, 3));
        assert_eq!(sub.row(0), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn documents_and_sequences() {
        let c = sample_corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let docs = c.documents_for(&ids);
        assert_eq!(docs[0], vec![ProductId(0), ProductId(2)]);
        let seqs = c.sequences_for(&ids);
        assert_eq!(seqs[0], vec![ProductId(0), ProductId(2)]);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn rejects_out_of_vocab_products() {
        let vocab = Vocabulary::new(["a"]);
        let mut c = Company::new(1, "bad", Sic2(1), 0);
        c.add_event(InstallEvent::at(ProductId(5), Month::from_ym(2000, 1)));
        Corpus::new(vocab, vec![c]);
    }

    #[test]
    fn empty_corpus_is_fine() {
        let c = Corpus::new(Vocabulary::new(["a"]), vec![]);
        assert!(c.is_empty());
        assert_eq!(c.mean_products_per_company(), 0.0);
    }
}
