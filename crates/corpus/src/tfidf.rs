//! TF-IDF weighting of the company-product matrix.
//!
//! The paper evaluates TF-IDF ("product frequency — inverse company
//! frequency") both as a direct company representation and as an alternative
//! input to LDA. Term frequency is binary here (quantities are unknown in the
//! install-base data), so a cell's weight is `idf(product)` when the company
//! owns the product and 0 otherwise.

use crate::corpus::Corpus;
use crate::CompanyId;
use hlm_linalg::Matrix;

/// Inverse-document-frequency weights computed on a (training) corpus.
#[derive(Debug, Clone)]
pub struct TfIdf {
    idf: Vec<f64>,
}

impl TfIdf {
    /// Fits IDF weights `ln(N / df)` on the given companies of a corpus —
    /// the gensim-style weighting the paper used, under which ubiquitous
    /// products (df ≈ N) are weighted toward zero and therefore effectively
    /// dropped from the representation. Unseen products fall back to the
    /// maximum weight `ln(N / 1)`; a small floor keeps every owned product's
    /// weight strictly positive so weighted documents stay valid LDA input.
    pub fn fit(corpus: &Corpus, ids: &[CompanyId]) -> Self {
        let n = ids.len().max(1) as f64;
        let mut df = vec![0usize; corpus.vocab().len()];
        for &id in ids {
            for p in corpus.company(id).product_set() {
                df[p.index()] += 1;
            }
        }
        let idf = df
            .into_iter()
            .map(|d| (n / d.max(1) as f64).ln().max(Self::MIN_WEIGHT))
            .collect();
        TfIdf { idf }
    }

    /// Positive floor applied to IDF weights.
    pub const MIN_WEIGHT: f64 = 1e-3;

    /// Fits on the whole corpus.
    pub fn fit_all(corpus: &Corpus) -> Self {
        let ids: Vec<CompanyId> = corpus.ids().collect();
        Self::fit(corpus, &ids)
    }

    /// The IDF weight of each product.
    pub fn idf(&self) -> &[f64] {
        &self.idf
    }

    /// Transforms a binary company vector into its TF-IDF representation,
    /// L2-normalized (the sklearn `TfidfTransformer` default, which is what
    /// makes TF-IDF representations cluster far better than raw binary
    /// vectors in the paper's Figure 7).
    ///
    /// # Panics
    /// Panics if `binary.len()` does not match the fitted vocabulary size.
    pub fn transform_vector(&self, binary: &[f64]) -> Vec<f64> {
        assert_eq!(
            binary.len(),
            self.idf.len(),
            "TF-IDF vocabulary size mismatch"
        );
        let mut v: Vec<f64> = binary.iter().zip(&self.idf).map(|(&b, &w)| b * w).collect();
        hlm_linalg::vector::normalize(&mut v);
        v
    }

    /// Transforms a binary company-product matrix row by row (L2-normalized
    /// rows).
    ///
    /// # Panics
    /// Panics if the column count does not match the fitted vocabulary size.
    pub fn transform_matrix(&self, binary: &Matrix) -> Matrix {
        assert_eq!(
            binary.cols(),
            self.idf.len(),
            "TF-IDF vocabulary size mismatch"
        );
        let mut out = Matrix::from_fn(binary.rows(), binary.cols(), |r, c| {
            binary.get(r, c) * self.idf[c]
        });
        for r in 0..out.rows() {
            hlm_linalg::vector::normalize(out.row_mut(r));
        }
        out
    }

    /// TF-IDF matrix for a subset of companies in one step.
    pub fn matrix_for(&self, corpus: &Corpus, ids: &[CompanyId]) -> Matrix {
        self.transform_matrix(&corpus.binary_matrix_for(ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company::{Company, InstallEvent, Sic2};
    use crate::time::Month;
    use crate::vocab::{ProductId, Vocabulary};

    /// Three companies: product 0 owned by all, product 1 by one, product 2
    /// by none.
    fn corpus() -> Corpus {
        let vocab = Vocabulary::new(["ubiquitous", "rare", "absent"]);
        let companies = (0..3)
            .map(|i| {
                let mut c = Company::new(i, format!("c{i}"), Sic2(1), 0);
                c.add_event(InstallEvent::at(ProductId(0), Month::from_ym(2000, 1)));
                if i == 0 {
                    c.add_event(InstallEvent::at(ProductId(1), Month::from_ym(2001, 1)));
                }
                c
            })
            .collect();
        Corpus::new(vocab, companies)
    }

    #[test]
    fn rare_products_get_higher_weight() {
        let c = corpus();
        let tfidf = TfIdf::fit_all(&c);
        let idf = tfidf.idf();
        assert!(idf[1] > idf[0], "rare product must outweigh ubiquitous one");
        assert!(idf[2] >= idf[1], "absent product has the largest idf");
        // Ubiquitous product (df = N): ln(3/3) = 0, floored to MIN_WEIGHT.
        assert!((idf[0] - TfIdf::MIN_WEIGHT).abs() < 1e-12);
        // Rare product (df = 1 of 3): ln 3.
        assert!((idf[1] - 3.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn transform_zeroes_unowned() {
        let c = corpus();
        let tfidf = TfIdf::fit_all(&c);
        let v = tfidf.transform_vector(&[1.0, 0.0, 0.0]);
        assert!(v[0] > 0.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 0.0);
    }

    #[test]
    fn matrix_matches_vector_transform() {
        let c = corpus();
        let ids: Vec<CompanyId> = c.ids().collect();
        let tfidf = TfIdf::fit(&c, &ids);
        let m = tfidf.matrix_for(&c, &ids);
        for (row, &id) in ids.iter().enumerate() {
            let v = tfidf.transform_vector(&c.company(id).binary_vector(3));
            assert_eq!(m.row(row), v.as_slice());
        }
    }

    #[test]
    fn fit_on_subset_ignores_other_companies() {
        let c = corpus();
        // Fit only on company 1 and 2, which own just product 0.
        let tfidf = TfIdf::fit(&c, &[CompanyId(1), CompanyId(2)]);
        // df(product 1) = 0 on that subset → same weight as the absent one.
        assert_eq!(tfidf.idf()[1], tfidf.idf()[2]);
    }

    #[test]
    #[should_panic(expected = "vocabulary size mismatch")]
    fn rejects_wrong_length() {
        let c = corpus();
        TfIdf::fit_all(&c).transform_vector(&[1.0, 0.0]);
    }
}
