//! Product-category vocabulary.
//!
//! The paper restricts the 91 HG Data categories to the 38 hardware and
//! low-level hardware-management-software categories (`M = 38`). The exact
//! names below are taken from the t-SNE maps in Figures 8 and 9 of the paper
//! (including the paper's own spelling `mainframs`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a product category in a [`Vocabulary`] (a *word* in NLP terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProductId(pub u16);

impl ProductId {
    /// The index as a `usize`, for direct table addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProductId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The 38 product categories used throughout the paper's evaluation,
/// in the order they are referenced by the built-in generator topics.
pub const STANDARD_CATEGORIES: [&str; 38] = [
    "asset_performance",
    "cloud_infrastructure",
    "collaboration",
    "commerce",
    "communication_tech",
    "electronics_PCs_SW",
    "contact_center",
    "data_archiving",
    "storage_HW",
    "DBMS",
    "disaster_recovery",
    "document_management",
    "financial_apps",
    "HR_human_management",
    "HW_other",
    "hypervisor",
    "IT_infrastructure",
    "mainframs",
    "media",
    "midrange",
    "mobile_tech",
    "network_HW",
    "network_SW",
    "OS",
    "platform_as_a_service",
    "printers",
    "product_lifecycle",
    "remote",
    "retail",
    "search_engine",
    "security_management",
    "server_HW",
    "server_SW",
    "system_security_services",
    "telephony",
    "virtualization_apps",
    "virtualization_platform",
    "virtualization_server",
];

/// A fixed, ordered set of product-category names with name → id lookup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, ProductId>,
}

impl Vocabulary {
    /// Builds a vocabulary from category names.
    ///
    /// # Panics
    /// Panics on duplicate names, empty input, or more than `u16::MAX`
    /// categories.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "vocabulary cannot be empty");
        assert!(names.len() <= u16::MAX as usize, "too many categories");
        let mut index = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            let prev = index.insert(n.clone(), ProductId(i as u16));
            assert!(prev.is_none(), "duplicate category name {n:?}");
        }
        Vocabulary { names, index }
    }

    /// The paper's 38-category hardware / low-level-software vocabulary.
    pub fn standard() -> Self {
        Self::new(STANDARD_CATEGORIES)
    }

    /// Number of categories (`M` in the paper; 38 for [`standard`](Self::standard)).
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the vocabulary has no categories (never constructible).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a category.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn name(&self, id: ProductId) -> &str {
        &self.names[id.index()]
    }

    /// Looks up a category by name.
    pub fn id(&self, name: &str) -> Option<ProductId> {
        self.index.get(name).copied()
    }

    /// True when `id` addresses a category of this vocabulary.
    pub fn contains(&self, id: ProductId) -> bool {
        id.index() < self.names.len()
    }

    /// Iterates ids in order.
    pub fn ids(&self) -> impl Iterator<Item = ProductId> + '_ {
        (0..self.names.len()).map(|i| ProductId(i as u16))
    }

    /// Iterates `(id, name)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (ProductId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ProductId(i as u16), n.as_str()))
    }

    /// Appends a new category (a mid-stream product launch), returning its id.
    ///
    /// Existing ids keep their meaning: growth is append-only, so any model
    /// trained against a prefix of this vocabulary can still address it.
    ///
    /// # Panics
    /// Panics on a duplicate name or when the vocabulary is already at
    /// `u16::MAX` categories.
    pub fn push(&mut self, name: impl Into<String>) -> ProductId {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "duplicate category name {name:?}"
        );
        assert!(self.names.len() < u16::MAX as usize, "too many categories");
        let id = ProductId(self.names.len() as u16);
        self.index.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Rebuilds the name index (needed after `serde` deserialization, which
    /// skips the redundant map).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), ProductId(i as u16)))
            .collect();
    }
}

impl PartialEq for Vocabulary {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_38_categories() {
        let v = Vocabulary::standard();
        assert_eq!(v.len(), 38);
        assert_eq!(v.name(ProductId(23)), "OS");
        assert_eq!(v.id("server_HW"), Some(ProductId(31)));
        assert_eq!(v.id("nonexistent"), None);
    }

    #[test]
    fn ids_and_names_roundtrip() {
        let v = Vocabulary::standard();
        for (id, name) in v.iter() {
            assert_eq!(v.id(name), Some(id));
            assert!(v.contains(id));
        }
        assert!(!v.contains(ProductId(38)));
    }

    #[test]
    #[should_panic(expected = "duplicate category name")]
    fn rejects_duplicates() {
        Vocabulary::new(["a", "b", "a"]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn rejects_empty() {
        Vocabulary::new(Vec::<String>::new());
    }

    #[test]
    fn custom_vocabulary() {
        let v = Vocabulary::new(["x", "y"]);
        assert_eq!(v.len(), 2);
        assert_eq!(
            v.ids().collect::<Vec<_>>(),
            vec![ProductId(0), ProductId(1)]
        );
    }

    #[test]
    fn push_grows_append_only() {
        let mut v = Vocabulary::standard();
        let id = v.push("quantum_accelerators");
        assert_eq!(id, ProductId(38));
        assert_eq!(v.len(), 39);
        assert_eq!(v.name(id), "quantum_accelerators");
        assert_eq!(v.id("quantum_accelerators"), Some(id));
        // Existing ids are untouched.
        assert_eq!(v.id("OS"), Some(ProductId(23)));
        assert!(v.contains(id));
    }

    #[test]
    #[should_panic(expected = "duplicate category name")]
    fn push_rejects_duplicates() {
        let mut v = Vocabulary::standard();
        v.push("OS");
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut v = Vocabulary::standard();
        v.index.clear();
        assert_eq!(v.id("OS"), None);
        v.rebuild_index();
        assert_eq!(v.id("OS"), Some(ProductId(23)));
    }

    #[test]
    fn standard_names_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for n in STANDARD_CATEGORIES {
            assert!(!n.is_empty());
            assert!(seen.insert(n), "duplicate {n}");
        }
    }
}
