//! D-U-N-S-style site aggregation.
//!
//! In the HG Data database each business location carries its own D-U-N-S®
//! number and the numbers are organized hierarchically. The paper aggregates
//! all sites of a company within one country ("domestic" aggregation) and
//! unions their products. This module reproduces that data-integration step:
//! per-site records keyed by a domestic-ultimate parent id are rolled up into
//! [`Company`] entities, merging install events with earliest-first-seen /
//! latest-last-seen semantics.

use crate::company::{Company, InstallEvent, Sic2};
use crate::corpus::Corpus;
use crate::vocab::Vocabulary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One business location, as delivered by the (simulated) data provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteRecord {
    /// This site's own D-U-N-S-like identifier.
    pub site_duns: u64,
    /// The domestic-ultimate parent identifier all sibling sites share.
    pub domestic_parent_duns: u64,
    /// Parent company name.
    pub company_name: String,
    /// SIC2 industry of the parent.
    pub industry: Sic2,
    /// Country of the site.
    pub country: u16,
    /// Employees at this site.
    pub employees: u32,
    /// Revenue attributed to this site, millions of USD.
    pub revenue_musd: f64,
    /// Products confirmed at this site.
    pub events: Vec<InstallEvent>,
}

/// Aggregates site records into domestic companies and wraps them in a
/// corpus.
///
/// Grouping key is `(domestic_parent_duns, country)` — all sites of a company
/// in one country become one entity, exactly the paper's aggregation unit.
/// Employees and revenue are summed; the site count is recorded; install
/// events are unioned per product (earliest first-seen wins).
///
/// Output companies are ordered by `(domestic_parent_duns, country)` so the
/// mapping is deterministic regardless of input order.
pub fn aggregate_sites(vocab: Vocabulary, sites: Vec<SiteRecord>) -> Corpus {
    let mut groups: HashMap<(u64, u16), Company> = HashMap::new();
    for site in sites {
        let key = (site.domestic_parent_duns, site.country);
        let entry = groups.entry(key).or_insert_with(|| {
            let mut c = Company::new(
                site.domestic_parent_duns,
                site.company_name.clone(),
                site.industry,
                site.country,
            );
            c.site_count = 0;
            c
        });
        entry.site_count += 1;
        entry.employees += site.employees;
        entry.revenue_musd += site.revenue_musd;
        for ev in site.events {
            entry.add_event(ev);
        }
    }
    let mut keys: Vec<(u64, u16)> = groups.keys().copied().collect();
    keys.sort_unstable();
    let companies = keys
        .into_iter()
        .map(|k| groups.remove(&k).expect("key present"))
        .collect();
    Corpus::new(vocab, companies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Month;
    use crate::vocab::ProductId;

    fn ev(p: u16, y: i32) -> InstallEvent {
        InstallEvent::at(ProductId(p), Month::from_ym(y, 1))
    }

    fn site(site_duns: u64, parent: u64, country: u16, events: Vec<InstallEvent>) -> SiteRecord {
        SiteRecord {
            site_duns,
            domestic_parent_duns: parent,
            company_name: format!("corp{parent}"),
            industry: Sic2(42),
            country,
            employees: 100,
            revenue_musd: 5.0,
            events,
        }
    }

    #[test]
    fn sites_of_same_parent_and_country_merge() {
        let vocab = Vocabulary::new(["a", "b", "c"]);
        let corpus = aggregate_sites(
            vocab,
            vec![
                site(10, 1, 1, vec![ev(0, 2005), ev(1, 2007)]),
                site(11, 1, 1, vec![ev(1, 2003), ev(2, 2010)]),
            ],
        );
        assert_eq!(corpus.len(), 1);
        let c = &corpus.companies()[0];
        assert_eq!(c.site_count, 2);
        assert_eq!(c.employees, 200);
        assert_eq!(c.revenue_musd, 10.0);
        assert_eq!(c.product_count(), 3);
        // Product 1 keeps the earliest first_seen (2003).
        let e1 = c
            .events()
            .iter()
            .find(|e| e.product == ProductId(1))
            .unwrap();
        assert_eq!(e1.first_seen, Month::from_ym(2003, 1));
    }

    #[test]
    fn different_countries_stay_separate() {
        let vocab = Vocabulary::new(["a"]);
        let corpus = aggregate_sites(
            vocab,
            vec![
                site(10, 1, 1, vec![ev(0, 2000)]),
                site(11, 1, 2, vec![ev(0, 2001)]),
            ],
        );
        assert_eq!(corpus.len(), 2, "domestic aggregation keys on country");
    }

    #[test]
    fn different_parents_stay_separate() {
        let vocab = Vocabulary::new(["a"]);
        let corpus = aggregate_sites(
            vocab,
            vec![
                site(10, 1, 1, vec![ev(0, 2000)]),
                site(20, 2, 1, vec![ev(0, 2001)]),
            ],
        );
        assert_eq!(corpus.len(), 2);
    }

    #[test]
    fn output_order_is_deterministic() {
        let vocab = Vocabulary::new(["a"]);
        let a = aggregate_sites(
            vocab.clone(),
            vec![
                site(10, 2, 1, vec![]),
                site(11, 1, 1, vec![]),
                site(12, 1, 2, vec![]),
            ],
        );
        let b = aggregate_sites(
            vocab,
            vec![
                site(12, 1, 2, vec![]),
                site(10, 2, 1, vec![]),
                site(11, 1, 1, vec![]),
            ],
        );
        let key = |c: &Corpus| -> Vec<(u64, u16)> {
            c.companies().iter().map(|x| (x.duns, x.country)).collect()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(key(&a), vec![(1, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn empty_input_gives_empty_corpus() {
        let corpus = aggregate_sites(Vocabulary::new(["a"]), vec![]);
        assert!(corpus.is_empty());
    }
}
