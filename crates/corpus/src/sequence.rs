//! Sequence utilities shared by the sequential models: n-gram extraction
//! with begin/end-of-sequence markers and n-gram counting.

use crate::vocab::ProductId;
use std::collections::HashMap;

/// Token alphabet for language models over product sequences: the `M`
/// products plus begin-of-sequence and end-of-sequence markers.
///
/// The numeric layout is `0..M` products, `M` = BOS, `M+1` = EOS, so models
/// can use token values directly as embedding / softmax indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Token {
    /// A product category.
    Product(ProductId),
    /// Begin-of-sequence marker.
    Bos,
    /// End-of-sequence marker.
    Eos,
}

impl Token {
    /// Dense index in `0 .. vocab_len + 2`.
    pub fn index(self, vocab_len: usize) -> usize {
        match self {
            Token::Product(p) => {
                debug_assert!(p.index() < vocab_len);
                p.index()
            }
            Token::Bos => vocab_len,
            Token::Eos => vocab_len + 1,
        }
    }

    /// Inverse of [`Token::index`].
    ///
    /// # Panics
    /// Panics if `idx >= vocab_len + 2`.
    pub fn from_index(idx: usize, vocab_len: usize) -> Token {
        if idx < vocab_len {
            Token::Product(ProductId(idx as u16))
        } else if idx == vocab_len {
            Token::Bos
        } else if idx == vocab_len + 1 {
            Token::Eos
        } else {
            panic!("token index {idx} out of range for vocab of {vocab_len}")
        }
    }
}

/// Total number of token indices for a product vocabulary of `vocab_len`.
pub fn token_count(vocab_len: usize) -> usize {
    vocab_len + 2
}

/// Wraps a product sequence with BOS … EOS markers.
pub fn with_markers(seq: &[ProductId]) -> Vec<Token> {
    let mut out = Vec::with_capacity(seq.len() + 2);
    out.push(Token::Bos);
    out.extend(seq.iter().map(|&p| Token::Product(p)));
    out.push(Token::Eos);
    out
}

/// Iterates the `n`-grams of a slice (overlapping windows of length `n`).
pub fn ngrams<T>(seq: &[T], n: usize) -> impl Iterator<Item = &[T]> {
    assert!(n > 0, "n-gram order must be positive");
    seq.windows(n)
}

/// Counts n-grams of order `n` across many sequences, with BOS padding so
/// every position has a full left context (standard LM counting). Returns a
/// map from the n-gram token-index vector to its count.
pub fn count_ngrams(
    sequences: &[Vec<ProductId>],
    n: usize,
    vocab_len: usize,
) -> HashMap<Vec<usize>, u64> {
    assert!(n > 0, "n-gram order must be positive");
    let mut counts: HashMap<Vec<usize>, u64> = HashMap::new();
    for seq in sequences {
        // (n-1) BOS markers, the products, one EOS.
        let mut toks: Vec<usize> = Vec::with_capacity(seq.len() + n);
        for _ in 0..n.saturating_sub(1) {
            toks.push(Token::Bos.index(vocab_len));
        }
        toks.extend(seq.iter().map(|&p| Token::Product(p).index(vocab_len)));
        toks.push(Token::Eos.index(vocab_len));
        for w in toks.windows(n) {
            *counts.entry(w.to_vec()).or_insert(0) += 1;
        }
    }
    counts
}

/// Counts plain product n-grams (no markers) — the statistic the paper's
/// sequentiality test is computed on.
pub fn count_product_ngrams(
    sequences: &[Vec<ProductId>],
    n: usize,
) -> HashMap<Vec<ProductId>, u64> {
    assert!(n > 0, "n-gram order must be positive");
    let mut counts: HashMap<Vec<ProductId>, u64> = HashMap::new();
    for seq in sequences {
        for w in seq.windows(n) {
            *counts.entry(w.to_vec()).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProductId {
        ProductId(i)
    }

    #[test]
    fn token_index_roundtrip() {
        let m = 38;
        for idx in 0..token_count(m) {
            let t = Token::from_index(idx, m);
            assert_eq!(t.index(m), idx);
        }
        assert_eq!(Token::Bos.index(m), 38);
        assert_eq!(Token::Eos.index(m), 39);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn token_from_index_rejects_out_of_range() {
        Token::from_index(40, 38);
    }

    #[test]
    fn markers_wrap_sequence() {
        let toks = with_markers(&[p(3), p(7)]);
        assert_eq!(
            toks,
            vec![
                Token::Bos,
                Token::Product(p(3)),
                Token::Product(p(7)),
                Token::Eos
            ]
        );
    }

    #[test]
    fn ngrams_window() {
        let seq = [1, 2, 3, 4];
        let bigrams: Vec<&[i32]> = ngrams(&seq, 2).collect();
        assert_eq!(bigrams, vec![&[1, 2][..], &[2, 3], &[3, 4]]);
        assert_eq!(ngrams(&seq, 5).count(), 0);
    }

    #[test]
    fn count_ngrams_pads_with_bos_and_eos() {
        let seqs = vec![vec![p(0), p(1)]];
        let m = 2;
        let bigrams = count_ngrams(&seqs, 2, m);
        // BOS->0, 0->1, 1->EOS
        assert_eq!(bigrams.len(), 3);
        assert_eq!(bigrams[&vec![2, 0]], 1); // BOS index = m = 2
        assert_eq!(bigrams[&vec![0, 1]], 1);
        assert_eq!(bigrams[&vec![1, 3]], 1); // EOS index = 3
        let unigrams = count_ngrams(&seqs, 1, m);
        // 0, 1, EOS (no BOS for order 1).
        assert_eq!(unigrams.values().sum::<u64>(), 3);
    }

    #[test]
    fn count_product_ngrams_ignores_markers() {
        let seqs = vec![vec![p(0), p(1), p(0), p(1)]];
        let bi = count_product_ngrams(&seqs, 2);
        assert_eq!(bi[&vec![p(0), p(1)]], 2);
        assert_eq!(bi[&vec![p(1), p(0)]], 1);
        assert_eq!(bi.len(), 2);
    }

    #[test]
    fn counting_accumulates_across_sequences() {
        let seqs = vec![vec![p(0), p(1)], vec![p(0), p(1)], vec![p(1), p(0)]];
        let bi = count_product_ngrams(&seqs, 2);
        assert_eq!(bi[&vec![p(0), p(1)]], 2);
        assert_eq!(bi[&vec![p(1), p(0)]], 1);
    }
}
