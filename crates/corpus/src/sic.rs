//! Human-readable names for SIC2 industry codes.
//!
//! The paper's companies span 83 SIC2 industries ("Health Services",
//! "Agricultural Services", …). The full four-digit taxonomy is large; for
//! display purposes the two-digit *major group* name is what the sales tool
//! shows, and the division (range) name is a robust fallback for codes
//! without a specific entry.

use crate::company::Sic2;

/// Division name by SIC2 range (the top level of the SIC taxonomy).
pub fn division_name(code: Sic2) -> &'static str {
    match code.0 {
        1..=9 => "Agriculture, Forestry and Fishing",
        10..=14 => "Mining",
        15..=17 => "Construction",
        20..=39 => "Manufacturing",
        40..=49 => "Transportation and Public Utilities",
        50..=51 => "Wholesale Trade",
        52..=59 => "Retail Trade",
        60..=67 => "Finance, Insurance and Real Estate",
        70..=89 => "Services",
        91..=97 => "Public Administration",
        99 => "Nonclassifiable Establishments",
        _ => "Unknown",
    }
}

/// Major-group name for the SIC2 codes the install-base domain encounters
/// most, falling back to the division name.
pub fn major_group_name(code: Sic2) -> &'static str {
    match code.0 {
        1 => "Agricultural Production - Crops",
        2 => "Agricultural Production - Livestock",
        7 => "Agricultural Services",
        10 => "Metal Mining",
        13 => "Oil and Gas Extraction",
        15 => "General Building Contractors",
        20 => "Food and Kindred Products",
        27 => "Printing and Publishing",
        28 => "Chemicals and Allied Products",
        35 => "Industrial Machinery and Equipment",
        36 => "Electronic and Other Electric Equipment",
        37 => "Transportation Equipment",
        40 => "Railroad Transportation",
        45 => "Transportation by Air",
        48 => "Communications",
        49 => "Electric, Gas and Sanitary Services",
        50 => "Wholesale Trade - Durable Goods",
        51 => "Wholesale Trade - Nondurable Goods",
        53 => "General Merchandise Stores",
        58 => "Eating and Drinking Places",
        60 => "Depository Institutions",
        62 => "Security and Commodity Brokers",
        63 => "Insurance Carriers",
        65 => "Real Estate",
        70 => "Hotels and Other Lodging Places",
        73 => "Business Services",
        78 => "Motion Pictures",
        80 => "Health Services",
        82 => "Educational Services",
        87 => "Engineering and Management Services",
        91 => "Executive, Legislative and General Government",
        _ => division_name(code),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_resolve() {
        // The two industries the paper names explicitly.
        assert_eq!(major_group_name(Sic2(80)), "Health Services");
        assert_eq!(major_group_name(Sic2(7)), "Agricultural Services");
    }

    #[test]
    fn fallback_uses_division() {
        assert_eq!(major_group_name(Sic2(33)), "Manufacturing");
        assert_eq!(major_group_name(Sic2(55)), "Retail Trade");
        assert_eq!(major_group_name(Sic2(75)), "Services");
    }

    #[test]
    fn every_code_has_a_name() {
        for code in 0..=u8::MAX {
            let name = major_group_name(Sic2(code));
            assert!(!name.is_empty());
        }
        assert_eq!(division_name(Sic2(0)), "Unknown");
        assert_eq!(division_name(Sic2(98)), "Unknown");
    }

    #[test]
    fn divisions_cover_the_generator_range() {
        // The generator emits SIC2 codes 0..=82; all but 0 and the real SIC
        // gaps (18-19 and 68-69 are unassigned in the taxonomy) must
        // classify.
        for code in 1..=82u8 {
            if matches!(code, 18 | 19 | 68 | 69) {
                continue;
            }
            assert_ne!(division_name(Sic2(code)), "Unknown", "code {code}");
        }
    }
}
