//! Month-granularity time arithmetic and the sliding evaluation windows.
//!
//! HG Data timestamps are month-level first/last-confirmation dates, and the
//! paper's recommendation evaluation slides a 12-month window in 2-month
//! steps from 2013-01 to 2015-01 (13 windows). A compact "months since
//! 1970-01" integer covers the whole 1990–2016 span exactly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A calendar month, stored as months since 1970-01.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Month(pub i32);

impl Month {
    /// Builds a month from a calendar year and 1-based month number.
    ///
    /// # Panics
    /// Panics unless `1 <= month <= 12`.
    pub fn from_ym(year: i32, month: u32) -> Self {
        assert!(
            (1..=12).contains(&month),
            "month must be 1..=12, got {month}"
        );
        Month((year - 1970) * 12 + (month as i32 - 1))
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        1970 + self.0.div_euclid(12)
    }

    /// 1-based calendar month.
    pub fn month(self) -> u32 {
        (self.0.rem_euclid(12) + 1) as u32
    }

    /// The month `n` months later (or earlier for negative `n`).
    pub fn plus_months(self, n: i32) -> Month {
        Month(self.0 + n)
    }

    /// Whole months from `other` to `self`.
    pub fn months_since(self, other: Month) -> i32 {
        self.0 - other.0
    }
}

impl Add<i32> for Month {
    type Output = Month;
    fn add(self, rhs: i32) -> Month {
        self.plus_months(rhs)
    }
}

impl Sub<Month> for Month {
    type Output = i32;
    fn sub(self, rhs: Month) -> i32 {
        self.months_since(rhs)
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year(), self.month())
    }
}

/// A half-open month interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    /// First month inside the window.
    pub start: Month,
    /// First month after the window.
    pub end: Month,
}

impl TimeWindow {
    /// Builds a window of `months` months starting at `start`.
    ///
    /// # Panics
    /// Panics if `months == 0`.
    pub fn new(start: Month, months: u32) -> Self {
        assert!(months > 0, "window must span at least one month");
        TimeWindow {
            start,
            end: start.plus_months(months as i32),
        }
    }

    /// True when `m` falls inside `[start, end)`.
    pub fn contains(&self, m: Month) -> bool {
        self.start <= m && m < self.end
    }

    /// Window length in months.
    pub fn months(&self) -> u32 {
        (self.end - self.start) as u32
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Iterator of sliding windows `W_r`: a window of `window_months` months
/// sliding by `step_months`, yielding `count` windows.
///
/// The paper's configuration — 12-month windows from 2013-01 sliding by 2
/// months for 13 windows (last one 2015-01 … 2016-01) — is available as
/// [`SlidingWindows::paper_evaluation`].
#[derive(Debug, Clone)]
pub struct SlidingWindows {
    next_start: Month,
    window_months: u32,
    step_months: u32,
    remaining: usize,
}

impl SlidingWindows {
    /// Builds a sliding-window schedule.
    ///
    /// # Panics
    /// Panics if `window_months == 0` or `step_months == 0`.
    pub fn new(first_start: Month, window_months: u32, step_months: u32, count: usize) -> Self {
        assert!(window_months > 0, "window must span at least one month");
        assert!(step_months > 0, "step must be at least one month");
        SlidingWindows {
            next_start: first_start,
            window_months,
            step_months,
            remaining: count,
        }
    }

    /// The exact schedule of Section 5.1: r = 12 months, step 2 months,
    /// first window 2013-01…2014-01, last 2015-01…2016-01 — 13 windows.
    pub fn paper_evaluation() -> Self {
        Self::new(Month::from_ym(2013, 1), 12, 2, 13)
    }
}

impl Iterator for SlidingWindows {
    type Item = TimeWindow;

    fn next(&mut self) -> Option<TimeWindow> {
        if self.remaining == 0 {
            return None;
        }
        let w = TimeWindow::new(self.next_start, self.window_months);
        self.next_start = self.next_start.plus_months(self.step_months as i32);
        self.remaining -= 1;
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for SlidingWindows {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ym_roundtrip() {
        for year in [1990, 1999, 2013, 2016] {
            for month in 1..=12 {
                let m = Month::from_ym(year, month);
                assert_eq!(m.year(), year);
                assert_eq!(m.month(), month);
            }
        }
    }

    #[test]
    fn arithmetic_crosses_year_boundaries() {
        let m = Month::from_ym(2015, 11);
        assert_eq!(m.plus_months(3), Month::from_ym(2016, 2));
        assert_eq!(m.plus_months(-23), Month::from_ym(2013, 12));
        assert_eq!(Month::from_ym(2016, 1) - Month::from_ym(2013, 1), 36);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Month::from_ym(2013, 1).to_string(), "2013-01");
        assert_eq!(
            TimeWindow::new(Month::from_ym(2013, 1), 12).to_string(),
            "[2013-01, 2014-01)"
        );
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = TimeWindow::new(Month::from_ym(2013, 1), 12);
        assert!(w.contains(Month::from_ym(2013, 1)));
        assert!(w.contains(Month::from_ym(2013, 12)));
        assert!(!w.contains(Month::from_ym(2014, 1)));
        assert!(!w.contains(Month::from_ym(2012, 12)));
        assert_eq!(w.months(), 12);
    }

    #[test]
    fn paper_schedule_matches_section_5_1() {
        let windows: Vec<TimeWindow> = SlidingWindows::paper_evaluation().collect();
        assert_eq!(windows.len(), 13);
        assert_eq!(windows[0].start, Month::from_ym(2013, 1));
        assert_eq!(windows[0].end, Month::from_ym(2014, 1));
        assert_eq!(windows[12].start, Month::from_ym(2015, 1));
        assert_eq!(windows[12].end, Month::from_ym(2016, 1));
        // Successive windows slide by two months.
        for pair in windows.windows(2) {
            assert_eq!(pair[1].start - pair[0].start, 2);
        }
    }

    #[test]
    fn sliding_windows_size_hint() {
        let mut it = SlidingWindows::new(Month::from_ym(2000, 1), 6, 3, 4);
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn pre_1970_months_work() {
        let m = Month::from_ym(1969, 12);
        assert_eq!(m.0, -1);
        assert_eq!(m.year(), 1969);
        assert_eq!(m.month(), 12);
    }
}
