//! Out-of-core corpus shards.
//!
//! A [`ShardStore`] holds a corpus as fixed-size on-disk shards — contiguous
//! company ranges in a compact binary format — plus a JSON `manifest.json`
//! carrying the global vocabulary, per-shard company ranges, token counts and
//! FNV-1a checksums. Training streams one shard at a time through a
//! [`ShardReader`], so peak memory is one shard's companies instead of the
//! whole corpus.
//!
//! The [`CorpusSource`] trait abstracts over "companies arrive in shard-sized
//! batches": the in-memory [`Corpus`] implements it as a single borrowed
//! shard, and [`ShardStore`] implements it by decoding shard files on demand.
//! Both views expose the *same* companies in the *same* global order, which
//! is what lets sharded training reproduce in-memory training bit for bit.

use crate::company::{Company, InstallEvent, Sic2};
use crate::corpus::Corpus;
use crate::time::Month;
use crate::vocab::{ProductId, Vocabulary};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;
use std::path::{Path, PathBuf};

/// Shard boundaries are kept multiples of this, except for the final shard.
///
/// It equals the per-chunk document granularity of the AD-LDA Gibbs sweep
/// (`DOC_CHUNK` in `hlm-lda`), so a shard-local chunk index plus the shard's
/// global chunk offset addresses exactly the same document range — and hence
/// the same per-chunk RNG stream — as the in-memory sweep. `hlm-lda` pins the
/// correspondence with a test.
pub const SHARD_ALIGN: usize = 64;

/// File name of the shard-store manifest inside the store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Manifest schema version.
pub const MANIFEST_VERSION: u32 = 1;

/// Magic bytes opening every shard file.
const SHARD_MAGIC: &[u8; 8] = b"HLMSHRD1";

/// An error reading or writing a shard store: an I/O failure or a corrupt /
/// inconsistent on-disk artifact.
#[derive(Debug)]
pub struct ShardError {
    msg: String,
}

impl ShardError {
    fn new(msg: impl Into<String>) -> Self {
        ShardError { msg: msg.into() }
    }

    fn io(ctx: &str, path: &Path, e: std::io::Error) -> Self {
        ShardError::new(format!("{ctx} {}: {e}", path.display()))
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard store: {}", self.msg)
    }
}

impl std::error::Error for ShardError {}

/// A corpus seen as an ordered sequence of company shards.
///
/// Contract: shards partition `0..n_companies()` into contiguous, ascending
/// ranges; `shard(s)` returns exactly the companies of `shard_span(s)`, in
/// global order. Every span except the last must be a multiple of
/// [`SHARD_ALIGN`] long.
pub trait CorpusSource {
    /// The global vocabulary.
    fn vocab(&self) -> &Vocabulary;
    /// Total number of companies across all shards.
    fn n_companies(&self) -> usize;
    /// Number of shards.
    fn n_shards(&self) -> usize;
    /// Half-open global company range `[lo, hi)` of shard `s`.
    fn shard_span(&self, s: usize) -> (usize, usize);
    /// The companies of shard `s`, in global order. Borrowed for in-memory
    /// sources, owned (decoded from disk) for streaming sources.
    ///
    /// # Panics
    /// Streaming sources panic on I/O failure or checksum mismatch; use
    /// [`ShardStore::read_shard`] for recoverable access.
    fn shard(&self, s: usize) -> Cow<'_, [Company]>;
    /// Total install-base tokens across all shards.
    fn total_tokens(&self) -> usize;
}

impl CorpusSource for Corpus {
    fn vocab(&self) -> &Vocabulary {
        Corpus::vocab(self)
    }

    fn n_companies(&self) -> usize {
        self.len()
    }

    fn n_shards(&self) -> usize {
        1
    }

    fn shard_span(&self, s: usize) -> (usize, usize) {
        assert_eq!(s, 0, "in-memory corpus has exactly one shard");
        (0, self.len())
    }

    fn shard(&self, s: usize) -> Cow<'_, [Company]> {
        assert_eq!(s, 0, "in-memory corpus has exactly one shard");
        Cow::Borrowed(self.companies())
    }

    fn total_tokens(&self) -> usize {
        Corpus::total_tokens(self)
    }
}

/// An in-memory corpus exposed with a multi-shard layout — the RAM-backed
/// counterpart of [`ShardStore`] for layout-sensitive consumers (online VB's
/// minibatches) and for testing streaming paths against in-memory ones.
pub struct MemShardSource<'a> {
    corpus: &'a Corpus,
    shard_size: usize,
}

impl<'a> MemShardSource<'a> {
    /// Wraps `corpus` with shards of `shard_size` companies (the last one
    /// short).
    ///
    /// # Panics
    /// Panics unless `shard_size` is a positive multiple of [`SHARD_ALIGN`].
    pub fn new(corpus: &'a Corpus, shard_size: usize) -> Self {
        assert!(
            shard_size > 0 && shard_size.is_multiple_of(SHARD_ALIGN),
            "shard_size must be a positive multiple of {SHARD_ALIGN}, got {shard_size}"
        );
        MemShardSource { corpus, shard_size }
    }
}

impl CorpusSource for MemShardSource<'_> {
    fn vocab(&self) -> &Vocabulary {
        self.corpus.vocab()
    }

    fn n_companies(&self) -> usize {
        self.corpus.len()
    }

    fn n_shards(&self) -> usize {
        self.corpus.len().div_ceil(self.shard_size).max(1)
    }

    fn shard_span(&self, s: usize) -> (usize, usize) {
        let lo = s * self.shard_size;
        (
            lo.min(self.corpus.len()),
            (lo + self.shard_size).min(self.corpus.len()),
        )
    }

    fn shard(&self, s: usize) -> Cow<'_, [Company]> {
        let (lo, hi) = self.shard_span(s);
        Cow::Borrowed(&self.corpus.companies()[lo..hi])
    }

    fn total_tokens(&self) -> usize {
        Corpus::total_tokens(self.corpus)
    }
}

/// The shard size (companies per shard) that splits `n_companies` into
/// `n_shards` near-equal parts while keeping every boundary a multiple of
/// [`SHARD_ALIGN`]. The final shard absorbs the remainder.
pub fn aligned_shard_size(n_companies: usize, n_shards: usize) -> usize {
    assert!(n_shards > 0, "need at least one shard");
    let raw = n_companies.div_ceil(n_shards).max(1);
    raw.div_ceil(SHARD_ALIGN) * SHARD_ALIGN
}

/// 64-bit FNV-1a over a byte slice (shard-file integrity checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-shard manifest record: file name, company range, token/byte counts,
/// content checksum, and the number of distinct vocabulary entries the shard
/// actually uses (its "vocab delta" against an empty store).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardEntry {
    pub file: String,
    pub company_lo: u64,
    pub company_hi: u64,
    pub tokens: u64,
    pub bytes: u64,
    pub checksum: u64,
    pub products_used: u32,
}

/// The store manifest: global counts, the merged vocabulary, and one
/// [`ShardEntry`] per shard in company order. Everything `hlm stats` needs is
/// here, so stats at any scale are O(shards) memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    pub version: u32,
    pub n_companies: u64,
    pub shard_size: u64,
    pub total_tokens: u64,
    pub vocab: Vec<String>,
    pub shards: Vec<ShardEntry>,
}

/// Streaming writer: feed shards in company order, then [`finish`]
/// (writing the manifest) to obtain the readable [`ShardStore`].
///
/// [`finish`]: ShardWriter::finish
pub struct ShardWriter {
    dir: PathBuf,
    vocab: Vocabulary,
    shard_size: usize,
    entries: Vec<ShardEntry>,
    next_lo: usize,
    total_tokens: u64,
    closed: bool,
}

impl ShardWriter {
    /// Creates the store directory (if needed) and an empty writer. Every
    /// shard except the last must hold exactly `shard_size` companies, and
    /// `shard_size` must be a multiple of [`SHARD_ALIGN`].
    pub fn create(
        dir: impl Into<PathBuf>,
        vocab: Vocabulary,
        shard_size: usize,
    ) -> Result<Self, ShardError> {
        assert!(
            shard_size > 0 && shard_size.is_multiple_of(SHARD_ALIGN),
            "shard_size must be a positive multiple of {SHARD_ALIGN}, got {shard_size}"
        );
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ShardError::io("cannot create store directory", &dir, e))?;
        Ok(ShardWriter {
            dir,
            vocab,
            shard_size,
            entries: Vec::new(),
            next_lo: 0,
            total_tokens: 0,
            closed: false,
        })
    }

    /// Appends the next shard. `companies` must continue the global order:
    /// shard `s` covers companies `[s * shard_size, s * shard_size + len)`.
    pub fn write_shard(&mut self, companies: &[Company]) -> Result<(), ShardError> {
        assert!(!self.closed, "writer already finished");
        assert!(!companies.is_empty(), "empty shard");
        if let Some(last) = self.entries.last() {
            assert_eq!(
                (last.company_hi - last.company_lo) as usize,
                self.shard_size,
                "only the final shard may be short; shard {} was",
                self.entries.len() - 1
            );
        }
        assert!(
            companies.len() <= self.shard_size,
            "shard of {} companies exceeds shard_size {}",
            companies.len(),
            self.shard_size
        );
        for c in companies {
            for e in c.events() {
                assert!(
                    self.vocab.contains(e.product),
                    "company {} references product outside the vocabulary",
                    c.duns
                );
            }
        }
        let lo = self.next_lo;
        let hi = lo + companies.len();
        let bytes = encode_shard(lo, hi, companies);
        let file = shard_file_name(self.entries.len());
        let path = self.dir.join(&file);
        std::fs::write(&path, &bytes)
            .map_err(|e| ShardError::io("cannot write shard", &path, e))?;
        let tokens: u64 = companies.iter().map(|c| c.product_count() as u64).sum();
        let mut used = vec![false; self.vocab.len()];
        for c in companies {
            for e in c.events() {
                used[e.product.index()] = true;
            }
        }
        self.entries.push(ShardEntry {
            file,
            company_lo: lo as u64,
            company_hi: hi as u64,
            tokens,
            bytes: bytes.len() as u64,
            checksum: fnv1a(&bytes),
            products_used: used.iter().filter(|&&u| u).count() as u32,
        });
        self.next_lo = hi;
        self.total_tokens += tokens;
        Ok(())
    }

    /// Writes the manifest and reopens the store for reading.
    pub fn finish(mut self) -> Result<ShardStore, ShardError> {
        assert!(!self.entries.is_empty(), "store needs at least one shard");
        self.closed = true;
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            n_companies: self.next_lo as u64,
            shard_size: self.shard_size as u64,
            total_tokens: self.total_tokens,
            vocab: self.vocab.iter().map(|(_, n)| n.to_string()).collect(),
            shards: std::mem::take(&mut self.entries),
        };
        let path = self.dir.join(MANIFEST_FILE);
        let text = serde_json::to_string(&manifest)
            .map_err(|e| ShardError::new(format!("cannot encode manifest: {e}")))?;
        std::fs::write(&path, text)
            .map_err(|e| ShardError::io("cannot write manifest", &path, e))?;
        ShardStore::open(&self.dir)
    }
}

/// An on-disk sharded corpus, opened from its manifest. Reading a shard
/// decodes one file and verifies its FNV-1a checksum; the full corpus is
/// never materialised.
pub struct ShardStore {
    dir: PathBuf,
    manifest: Manifest,
    vocab: Vocabulary,
}

impl ShardStore {
    /// True when `dir` contains a shard-store manifest.
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join(MANIFEST_FILE).is_file()
    }

    /// Opens a store, validating the manifest's internal consistency
    /// (version, contiguous spans, token totals) without touching shard
    /// files.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ShardError> {
        let dir = dir.into();
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ShardError::io("cannot read manifest", &path, e))?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| ShardError::new(format!("corrupt manifest {}: {e}", path.display())))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(ShardError::new(format!(
                "manifest version {} unsupported (expected {MANIFEST_VERSION})",
                manifest.version
            )));
        }
        if manifest.shards.is_empty() {
            return Err(ShardError::new("manifest lists no shards"));
        }
        let mut expect_lo = 0u64;
        let mut tokens = 0u64;
        for (i, s) in manifest.shards.iter().enumerate() {
            if s.company_lo != expect_lo || s.company_hi <= s.company_lo {
                return Err(ShardError::new(format!(
                    "shard {i} span [{}, {}) does not continue at {expect_lo}",
                    s.company_lo, s.company_hi
                )));
            }
            let len = s.company_hi - s.company_lo;
            if i + 1 < manifest.shards.len() && len != manifest.shard_size {
                return Err(ShardError::new(format!(
                    "interior shard {i} holds {len} companies, expected {}",
                    manifest.shard_size
                )));
            }
            expect_lo = s.company_hi;
            tokens += s.tokens;
        }
        if expect_lo != manifest.n_companies || tokens != manifest.total_tokens {
            return Err(ShardError::new(
                "manifest totals disagree with per-shard entries",
            ));
        }
        let vocab = Vocabulary::new(manifest.vocab.clone());
        Ok(ShardStore {
            dir,
            manifest,
            vocab,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Reads and decodes shard `s`, verifying size, checksum and header
    /// against the manifest.
    pub fn read_shard(&self, s: usize) -> Result<Vec<Company>, ShardError> {
        let entry = &self.manifest.shards[s];
        let path = self.dir.join(&entry.file);
        let bytes =
            std::fs::read(&path).map_err(|e| ShardError::io("cannot read shard", &path, e))?;
        if bytes.len() as u64 != entry.bytes || fnv1a(&bytes) != entry.checksum {
            return Err(ShardError::new(format!(
                "shard {s} ({}) fails its checksum",
                path.display()
            )));
        }
        let (lo, hi, companies) = decode_shard(&bytes)
            .map_err(|msg| ShardError::new(format!("shard {s} ({}): {msg}", path.display())))?;
        if (lo, hi) != (entry.company_lo as usize, entry.company_hi as usize) {
            return Err(ShardError::new(format!(
                "shard {s} header span [{lo}, {hi}) disagrees with manifest"
            )));
        }
        Ok(companies)
    }

    /// Sequential reader over all shards in company order.
    pub fn reader(&self) -> ShardReader<'_> {
        ShardReader {
            store: self,
            next: 0,
        }
    }
}

impl CorpusSource for ShardStore {
    fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    fn n_companies(&self) -> usize {
        self.manifest.n_companies as usize
    }

    fn n_shards(&self) -> usize {
        self.manifest.shards.len()
    }

    fn shard_span(&self, s: usize) -> (usize, usize) {
        let e = &self.manifest.shards[s];
        (e.company_lo as usize, e.company_hi as usize)
    }

    fn shard(&self, s: usize) -> Cow<'_, [Company]> {
        Cow::Owned(
            self.read_shard(s)
                .unwrap_or_else(|e| panic!("unreadable shard while streaming: {e}")),
        )
    }

    fn total_tokens(&self) -> usize {
        self.manifest.total_tokens as usize
    }
}

/// Sequential shard iterator yielding `(shard_index, companies)`.
pub struct ShardReader<'a> {
    store: &'a ShardStore,
    next: usize,
}

impl Iterator for ShardReader<'_> {
    type Item = Result<(usize, Vec<Company>), ShardError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.store.n_shards() {
            return None;
        }
        let s = self.next;
        self.next += 1;
        Some(self.store.read_shard(s).map(|cs| (s, cs)))
    }
}

fn shard_file_name(index: usize) -> String {
    format!("shard_{index:05}.bin")
}

/// Binary layout (all integers little-endian):
///
/// ```text
/// magic "HLMSHRD1" · lo u64 · hi u64 · tokens u64
/// per company:
///   duns u64 · name_len u32 · name utf-8 · industry u8 · country u16
///   site_count u32 · employees u32 · revenue_musd f64-bits
///   n_events u32 · per event: product u16 · first_seen i32 · last_seen i32
///                             · confidence f32-bits
/// ```
fn encode_shard(lo: usize, hi: usize, companies: &[Company]) -> Vec<u8> {
    let tokens: u64 = companies.iter().map(|c| c.product_count() as u64).sum();
    let mut out = Vec::with_capacity(32 + companies.len() * 64);
    out.extend_from_slice(SHARD_MAGIC);
    out.extend_from_slice(&(lo as u64).to_le_bytes());
    out.extend_from_slice(&(hi as u64).to_le_bytes());
    out.extend_from_slice(&tokens.to_le_bytes());
    for c in companies {
        out.extend_from_slice(&c.duns.to_le_bytes());
        out.extend_from_slice(&(c.name.len() as u32).to_le_bytes());
        out.extend_from_slice(c.name.as_bytes());
        out.push(c.industry.0);
        out.extend_from_slice(&c.country.to_le_bytes());
        out.extend_from_slice(&c.site_count.to_le_bytes());
        out.extend_from_slice(&c.employees.to_le_bytes());
        out.extend_from_slice(&c.revenue_musd.to_bits().to_le_bytes());
        out.extend_from_slice(&(c.product_count() as u32).to_le_bytes());
        for e in c.events() {
            out.extend_from_slice(&e.product.0.to_le_bytes());
            out.extend_from_slice(&e.first_seen.0.to_le_bytes());
            out.extend_from_slice(&e.last_seen.0.to_le_bytes());
            out.extend_from_slice(&e.confidence.to_bits().to_le_bytes());
        }
    }
    out
}

fn decode_shard(bytes: &[u8]) -> Result<(usize, usize, Vec<Company>), String> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.take(8)? != SHARD_MAGIC {
        return Err("bad magic".to_string());
    }
    let lo = cur.u64()? as usize;
    let hi = cur.u64()? as usize;
    let tokens = cur.u64()?;
    if hi <= lo {
        return Err(format!("bad span [{lo}, {hi})"));
    }
    let mut companies = Vec::with_capacity(hi - lo);
    let mut seen_tokens = 0u64;
    for _ in lo..hi {
        let duns = cur.u64()?;
        let name_len = cur.u32()? as usize;
        let name = std::str::from_utf8(cur.take(name_len)?)
            .map_err(|_| "company name is not UTF-8".to_string())?
            .to_string();
        let industry = Sic2(cur.u8()?);
        let country = cur.u16()?;
        let mut c = Company::new(duns, name, industry, country);
        c.site_count = cur.u32()?;
        c.employees = cur.u32()?;
        c.revenue_musd = f64::from_bits(cur.u64()?);
        let n_events = cur.u32()? as usize;
        // Stored events are the already-merged install base — one event per
        // product, sorted by `(first_seen, product)` — so replaying them
        // through `add_event` reconstructs the company exactly.
        for _ in 0..n_events {
            let product = ProductId(cur.u16()?);
            let first_seen = Month(cur.i32()?);
            let last_seen = Month(cur.i32()?);
            let confidence = f32::from_bits(cur.u32()?);
            c.add_event(InstallEvent {
                product,
                first_seen,
                last_seen,
                confidence,
            });
        }
        if c.product_count() != n_events {
            return Err("duplicate product within a stored company".to_string());
        }
        seen_tokens += n_events as u64;
        companies.push(c);
    }
    if cur.pos != bytes.len() {
        return Err("trailing bytes after last company".to_string());
    }
    if seen_tokens != tokens {
        return Err("header token count disagrees with body".to_string());
    }
    Ok((lo, hi, companies))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "truncated shard".to_string())?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, String> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Writes an in-memory corpus out as a shard store (test/tooling helper; the
/// streaming generator in `hlm-datagen` never materialises the corpus).
pub fn write_corpus_sharded(
    corpus: &Corpus,
    dir: impl Into<PathBuf>,
    n_shards: usize,
) -> Result<ShardStore, ShardError> {
    let size = aligned_shard_size(corpus.len(), n_shards);
    let mut w = ShardWriter::create(dir, corpus.vocab().clone(), size)?;
    for chunk in corpus.companies().chunks(size) {
        w.write_shard(chunk)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus(n: usize) -> Corpus {
        let vocab = Vocabulary::standard();
        let companies = (0..n)
            .map(|i| {
                let mut c = Company::new(
                    10_000 + i as u64,
                    format!("company_{i}"),
                    Sic2((i % 83) as u8),
                    (i % 5) as u16,
                );
                c.site_count = 1 + (i % 3) as u32;
                c.employees = 10 * i as u32;
                c.revenue_musd = 0.25 * i as f64;
                for j in 0..(1 + i % 4) {
                    c.add_event(InstallEvent {
                        product: ProductId(((i * 7 + j * 11) % 38) as u16),
                        first_seen: Month::from_ym(2000 + (j as i32 % 10), 1 + (i as u32 % 12)),
                        last_seen: Month::from_ym(2015, 6),
                        confidence: 0.5 + 0.1 * j as f32,
                    });
                }
                c
            })
            .collect();
        Corpus::new(vocab, companies)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hlm_shard_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_companies_bit_for_bit() {
        let corpus = tiny_corpus(200);
        let dir = tmp_dir("round_trip");
        let store = write_corpus_sharded(&corpus, &dir, 3).unwrap();
        assert_eq!(store.n_companies(), 200);
        assert_eq!(
            store.n_shards(),
            200usize.div_ceil(aligned_shard_size(200, 3))
        );
        assert_eq!(store.total_tokens(), corpus.total_tokens());
        assert_eq!(store.vocab(), corpus.vocab());
        let mut all = Vec::new();
        for item in store.reader() {
            let (s, companies) = item.unwrap();
            let (lo, hi) = store.shard_span(s);
            assert_eq!(companies.len(), hi - lo);
            all.extend(companies);
        }
        assert_eq!(all.as_slice(), corpus.companies());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_is_a_single_shard_source() {
        let corpus = tiny_corpus(70);
        assert_eq!(CorpusSource::n_shards(&corpus), 1);
        assert_eq!(corpus.shard_span(0), (0, 70));
        assert_eq!(corpus.shard(0).as_ref(), corpus.companies());
        assert_eq!(CorpusSource::total_tokens(&corpus), corpus.total_tokens());
    }

    #[test]
    fn tampered_shard_is_rejected() {
        let corpus = tiny_corpus(64);
        let dir = tmp_dir("tamper");
        let store = write_corpus_sharded(&corpus, &dir, 1).unwrap();
        let path = dir.join(&store.manifest().shards[0].file);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        let err = store.read_shard(0).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inconsistent_manifest_is_rejected() {
        let corpus = tiny_corpus(130);
        let dir = tmp_dir("manifest");
        let store = write_corpus_sharded(&corpus, &dir, 2).unwrap();
        let mut manifest = store.manifest().clone();
        manifest.total_tokens += 1;
        let path = dir.join(MANIFEST_FILE);
        std::fs::write(&path, serde_json::to_string(&manifest).unwrap()).unwrap();
        assert!(ShardStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aligned_shard_size_is_aligned_and_covers() {
        for n in [1usize, 63, 64, 65, 1000, 4096] {
            for shards in 1..6 {
                let size = aligned_shard_size(n, shards);
                assert_eq!(size % SHARD_ALIGN, 0);
                assert!(size * shards >= n, "n={n} shards={shards} size={size}");
            }
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
