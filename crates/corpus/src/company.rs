//! Companies and their install bases.

use crate::time::Month;
use crate::vocab::ProductId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a company in a [`Corpus`](crate::Corpus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CompanyId(pub u32);

impl CompanyId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CompanyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Two-digit Standard Industrial Classification code (the paper's companies
/// span 83 SIC2 industries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sic2(pub u8);

impl fmt::Display for Sic2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIC{:02}", self.0)
    }
}

/// One confirmed product presence in a company's install base: the HG-style
/// record of a category with first and most recent confirmation dates and a
/// confidence indicator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstallEvent {
    /// The product category observed.
    pub product: ProductId,
    /// Month of first successful confirmation.
    pub first_seen: Month,
    /// Month of the most recent successful confirmation.
    pub last_seen: Month,
    /// Data-provider confidence in `[0, 1]`.
    pub confidence: f32,
}

impl InstallEvent {
    /// Convenience constructor with `last_seen == first_seen` and full
    /// confidence.
    pub fn at(product: ProductId, first_seen: Month) -> Self {
        InstallEvent {
            product,
            first_seen,
            last_seen: first_seen,
            confidence: 1.0,
        }
    }
}

/// A company entity (already aggregated to the domestic level) with profile
/// attributes used by the sales application's filters and its install base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Company {
    /// Synthetic domestic-ultimate D-U-N-S-like identifier.
    pub duns: u64,
    /// Display name.
    pub name: String,
    /// Two-digit SIC industry.
    pub industry: Sic2,
    /// ISO-like country code (generator uses small synthetic codes).
    pub country: u16,
    /// Number of sites aggregated into this entity.
    pub site_count: u32,
    /// Employee head count (sales-application filter attribute).
    pub employees: u32,
    /// Yearly revenue in millions of USD (sales-application filter attribute).
    pub revenue_musd: f64,
    /// Install base, kept sorted by `(first_seen, product)` with one event
    /// per product. Maintained by [`Company::add_event`].
    events: Vec<InstallEvent>,
}

impl Company {
    /// Creates a company with an empty install base.
    pub fn new(duns: u64, name: impl Into<String>, industry: Sic2, country: u16) -> Self {
        Company {
            duns,
            name: name.into(),
            industry,
            country,
            site_count: 1,
            employees: 0,
            revenue_musd: 0.0,
            events: Vec::new(),
        }
    }

    /// Adds (or merges) an install event, keeping one event per product with
    /// the earliest `first_seen`, the latest `last_seen`, and the maximum
    /// confidence — the same union rule the paper's site aggregation uses.
    ///
    /// The event vec stays sorted by `(first_seen, product)` via binary-search
    /// insertion: O(log n) to locate plus one `Vec` shift, instead of the full
    /// re-sort per insert that made long replay streams O(n² log n).
    pub fn add_event(&mut self, ev: InstallEvent) {
        if let Some(pos) = self.events.iter().position(|e| e.product == ev.product) {
            let existing = &mut self.events[pos];
            let lowered = ev.first_seen < existing.first_seen;
            existing.first_seen = existing.first_seen.min(ev.first_seen);
            existing.last_seen = existing.last_seen.max(ev.last_seen);
            existing.confidence = existing.confidence.max(ev.confidence);
            if lowered {
                // The key shrank, so the event may belong earlier; remove and
                // re-insert at its new sorted position.
                let merged = self.events.remove(pos);
                let at = self.insertion_point(&merged);
                self.events.insert(at, merged);
            }
        } else {
            let at = self.insertion_point(&ev);
            self.events.insert(at, ev);
        }
    }

    /// Sorted position for `ev` under the `(first_seen, product)` order.
    fn insertion_point(&self, ev: &InstallEvent) -> usize {
        self.events
            .binary_search_by_key(&(ev.first_seen, ev.product), |e| (e.first_seen, e.product))
            .unwrap_or_else(|i| i)
    }

    /// The install events, sorted by `(first_seen, product)`.
    pub fn events(&self) -> &[InstallEvent] {
        &self.events
    }

    /// Number of distinct products in the install base (`k` in Equation 1).
    pub fn product_count(&self) -> usize {
        self.events.len()
    }

    /// True when the given product is in the install base.
    pub fn owns(&self, product: ProductId) -> bool {
        self.events.iter().any(|e| e.product == product)
    }

    /// The set view `A_i`: distinct products, sorted by id.
    pub fn product_set(&self) -> Vec<ProductId> {
        let mut ids: Vec<ProductId> = self.events.iter().map(|e| e.product).collect();
        ids.sort_unstable();
        ids
    }

    /// The sequence view `AS_i`: products sorted by time of first appearance
    /// (ties broken by product id for determinism).
    pub fn product_sequence(&self) -> Vec<ProductId> {
        self.events.iter().map(|e| e.product).collect()
    }

    /// Products whose first appearance is strictly before `cutoff`, in
    /// acquisition order — the training history for a sliding window starting
    /// at `cutoff`.
    pub fn sequence_before(&self, cutoff: Month) -> Vec<ProductId> {
        self.events
            .iter()
            .filter(|e| e.first_seen < cutoff)
            .map(|e| e.product)
            .collect()
    }

    /// Products whose first appearance falls inside `[start, end)` — the
    /// ground-truth future purchases for a sliding window.
    pub fn products_first_seen_in(&self, start: Month, end: Month) -> Vec<ProductId> {
        self.events
            .iter()
            .filter(|e| start <= e.first_seen && e.first_seen < end)
            .map(|e| e.product)
            .collect()
    }

    /// Binary attribute vector `𝒜_i` of length `vocab_len` (Equation 3).
    ///
    /// Products with `index >= vocab_len` are skipped rather than asserted
    /// away: when the vocabulary has grown mid-stream, a model trained on the
    /// older, shorter vocabulary can still score this company over the
    /// categories it knows about.
    pub fn binary_vector(&self, vocab_len: usize) -> Vec<f64> {
        let mut v = vec![0.0; vocab_len];
        for e in &self.events {
            if e.product.index() < vocab_len {
                v[e.product.index()] = 1.0;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(y: i32, mo: u32) -> Month {
        Month::from_ym(y, mo)
    }

    fn company_with_events() -> Company {
        let mut c = Company::new(1, "Acme", Sic2(80), 1);
        c.add_event(InstallEvent::at(ProductId(23), m(2001, 5))); // OS
        c.add_event(InstallEvent::at(ProductId(21), m(1999, 2))); // network_HW
        c.add_event(InstallEvent::at(ProductId(8), m(2010, 7))); // storage_HW
        c
    }

    #[test]
    fn events_stay_sorted_by_time() {
        let c = company_with_events();
        let seq = c.product_sequence();
        assert_eq!(seq, vec![ProductId(21), ProductId(23), ProductId(8)]);
        let set = c.product_set();
        assert_eq!(set, vec![ProductId(8), ProductId(21), ProductId(23)]);
    }

    #[test]
    fn duplicate_products_merge() {
        let mut c = Company::new(1, "A", Sic2(1), 0);
        c.add_event(InstallEvent {
            product: ProductId(5),
            first_seen: m(2005, 1),
            last_seen: m(2006, 1),
            confidence: 0.6,
        });
        c.add_event(InstallEvent {
            product: ProductId(5),
            first_seen: m(2003, 1),
            last_seen: m(2004, 1),
            confidence: 0.9,
        });
        assert_eq!(c.product_count(), 1);
        let e = c.events()[0];
        assert_eq!(e.first_seen, m(2003, 1));
        assert_eq!(e.last_seen, m(2006, 1));
        assert!((e.confidence - 0.9).abs() < 1e-6);
    }

    #[test]
    fn binary_vector_marks_owned_products() {
        let c = company_with_events();
        let v = c.binary_vector(38);
        assert_eq!(v.iter().sum::<f64>(), 3.0);
        assert_eq!(v[23], 1.0);
        assert_eq!(v[0], 0.0);
        assert!(c.owns(ProductId(23)));
        assert!(!c.owns(ProductId(0)));
    }

    #[test]
    fn history_and_future_split_by_cutoff() {
        let c = company_with_events();
        let history = c.sequence_before(m(2005, 1));
        assert_eq!(history, vec![ProductId(21), ProductId(23)]);
        let future = c.products_first_seen_in(m(2005, 1), m(2012, 1));
        assert_eq!(future, vec![ProductId(8)]);
        // Boundary: first_seen == start is inside; == end is outside.
        let exact = c.products_first_seen_in(m(2010, 7), m(2010, 8));
        assert_eq!(exact, vec![ProductId(8)]);
        let after = c.products_first_seen_in(m(2010, 8), m(2011, 1));
        assert!(after.is_empty());
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let mut c = Company::new(1, "A", Sic2(1), 0);
        c.add_event(InstallEvent::at(ProductId(9), m(2000, 1)));
        c.add_event(InstallEvent::at(ProductId(3), m(2000, 1)));
        assert_eq!(c.product_sequence(), vec![ProductId(3), ProductId(9)]);
    }

    #[test]
    fn merge_that_lowers_first_seen_repositions_event() {
        let mut c = Company::new(1, "A", Sic2(1), 0);
        c.add_event(InstallEvent::at(ProductId(1), m(2000, 1)));
        c.add_event(InstallEvent::at(ProductId(2), m(2005, 1)));
        // A merge that moves product 2's first_seen before product 1's must
        // re-sort it to the front.
        c.add_event(InstallEvent::at(ProductId(2), m(1995, 1)));
        assert_eq!(c.product_sequence(), vec![ProductId(2), ProductId(1)]);
        assert_eq!(c.events()[0].first_seen, m(1995, 1));
        assert_eq!(c.events()[0].last_seen, m(2005, 1));
    }

    #[test]
    fn binary_vector_skips_products_beyond_model_vocab() {
        let mut c = Company::new(1, "A", Sic2(1), 0);
        c.add_event(InstallEvent::at(ProductId(3), m(2000, 1)));
        c.add_event(InstallEvent::at(ProductId(40), m(2015, 1))); // launched after training
        let v = c.binary_vector(38);
        assert_eq!(v.len(), 38);
        assert_eq!(v.iter().sum::<f64>(), 1.0);
        assert_eq!(v[3], 1.0);
        // With a grown vocabulary the newer product shows up.
        let v39 = c.binary_vector(41);
        assert_eq!(v39[40], 1.0);
    }

    /// Reference implementation: the old merge-then-full-sort behaviour that
    /// [`Company::add_event`]'s binary-search insertion must reproduce exactly.
    fn add_event_sort_everything(events: &mut Vec<InstallEvent>, ev: InstallEvent) {
        if let Some(existing) = events.iter_mut().find(|e| e.product == ev.product) {
            existing.first_seen = existing.first_seen.min(ev.first_seen);
            existing.last_seen = existing.last_seen.max(ev.last_seen);
            existing.confidence = existing.confidence.max(ev.confidence);
        } else {
            events.push(ev);
        }
        events.sort_by_key(|e| (e.first_seen, e.product));
    }

    use proptest::prelude::*;

    proptest! {
        // Interleaved adds and merges through the binary-search insertion path
        // must leave exactly the state the old sort-everything code produced:
        // same events, same order, same merged fields.
        #[test]
        fn add_event_matches_sort_everything_reference(
            raw in prop::collection::vec((0u16..12, 0i32..240, 0u32..36, 0u32..=10), 0..60)
        ) {
            let mut c = Company::new(1, "A", Sic2(1), 0);
            let mut reference: Vec<InstallEvent> = Vec::new();
            for (p, start, span, conf) in raw {
                let ev = InstallEvent {
                    product: ProductId(p),
                    first_seen: Month(start),
                    last_seen: Month(start + span as i32),
                    confidence: conf as f32 / 10.0,
                };
                c.add_event(ev);
                add_event_sort_everything(&mut reference, ev);
                prop_assert_eq!(c.events(), reference.as_slice());
            }
        }
    }
}
