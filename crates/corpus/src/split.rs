//! Train / validation / test splits.
//!
//! The paper uses 70% of the corpus for training, 10% for parameter
//! validation and 20% for testing, identically for the LDA and RNN
//! experiments. Splits here are seeded shuffles so every model sees the same
//! partition.

use crate::company::CompanyId;
use crate::corpus::Corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A partition of company ids into train / validation / test sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Split {
    /// Training companies (model estimation).
    pub train: Vec<CompanyId>,
    /// Validation companies (hyper-parameter selection).
    pub valid: Vec<CompanyId>,
    /// Test companies (reported perplexity / accuracy).
    pub test: Vec<CompanyId>,
}

impl Split {
    /// Splits a corpus by the given fractions with a seeded shuffle.
    ///
    /// `train_frac + valid_frac` must be at most 1; the remainder is the test
    /// set. Rounding assigns `floor(N * frac)` to train and validation so the
    /// test set absorbs the slack.
    ///
    /// # Panics
    /// Panics if a fraction is negative or the two fractions exceed 1.
    pub fn new(corpus: &Corpus, train_frac: f64, valid_frac: f64, seed: u64) -> Self {
        assert!(
            train_frac >= 0.0 && valid_frac >= 0.0,
            "fractions must be non-negative"
        );
        assert!(
            train_frac + valid_frac <= 1.0 + 1e-12,
            "train + valid fractions exceed 1"
        );
        let mut ids: Vec<CompanyId> = corpus.ids().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        hlm_linalg::dist::shuffle(&mut rng, &mut ids);

        let n = ids.len();
        let n_train = (n as f64 * train_frac).floor() as usize;
        let n_valid = (n as f64 * valid_frac).floor() as usize;
        let valid_end = (n_train + n_valid).min(n);
        Split {
            train: ids[..n_train].to_vec(),
            valid: ids[n_train..valid_end].to_vec(),
            test: ids[valid_end..].to_vec(),
        }
    }

    /// The paper's 70 / 10 / 20 split.
    pub fn paper(corpus: &Corpus, seed: u64) -> Self {
        Self::new(corpus, 0.7, 0.1, seed)
    }

    /// Total companies covered by the split.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// True when the split covers no companies.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company::{Company, Sic2};
    use crate::vocab::Vocabulary;
    use std::collections::HashSet;

    fn corpus(n: usize) -> Corpus {
        let companies = (0..n)
            .map(|i| Company::new(i as u64, format!("c{i}"), Sic2(1), 0))
            .collect();
        Corpus::new(Vocabulary::new(["a"]), companies)
    }

    #[test]
    fn paper_split_has_expected_sizes() {
        let c = corpus(1000);
        let s = Split::paper(&c, 1);
        assert_eq!(s.train.len(), 700);
        assert_eq!(s.valid.len(), 100);
        assert_eq!(s.test.len(), 200);
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn split_is_a_partition() {
        let c = corpus(137);
        let s = Split::paper(&c, 99);
        let mut seen = HashSet::new();
        for id in s.train.iter().chain(&s.valid).chain(&s.test) {
            assert!(seen.insert(*id), "company {id} appears twice");
        }
        assert_eq!(seen.len(), 137);
    }

    #[test]
    fn same_seed_same_split() {
        let c = corpus(50);
        let a = Split::paper(&c, 7);
        let b = Split::paper(&c, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seed_differs() {
        let c = corpus(200);
        let a = Split::paper(&c, 1);
        let b = Split::paper(&c, 2);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn degenerate_fractions() {
        let c = corpus(10);
        let all_train = Split::new(&c, 1.0, 0.0, 0);
        assert_eq!(all_train.train.len(), 10);
        assert!(all_train.valid.is_empty() && all_train.test.is_empty());
        let all_test = Split::new(&c, 0.0, 0.0, 0);
        assert_eq!(all_test.test.len(), 10);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_fractions_over_one() {
        let c = corpus(10);
        Split::new(&c, 0.8, 0.3, 0);
    }

    #[test]
    fn empty_corpus_split() {
        let c = corpus(0);
        let s = Split::paper(&c, 0);
        assert!(s.is_empty());
    }
}
