//! CSV import / export of install-base data.
//!
//! Adopters of the library will have their own (HG-style) feeds; this module
//! reads and writes a simple two-file CSV interchange format without pulling
//! in a CSV dependency:
//!
//! * **companies.csv** — `duns,name,sic2,country,site_count,employees,revenue_musd`
//! * **events.csv** — `duns,product,first_seen,last_seen,confidence` with
//!   months as `YYYY-MM` and products by category name.
//!
//! Fields containing commas or quotes are quoted with doubled inner quotes
//! (RFC-4180 style); the parser accepts both quoted and bare fields.

use crate::company::{Company, InstallEvent, Sic2};
use crate::corpus::Corpus;
use crate::time::Month;
use crate::vocab::Vocabulary;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors raised while parsing CSV install-base data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number of the offending record (0 for structural
    /// problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError {
        line,
        message: message.into(),
    }
}

/// Splits one CSV line into fields, honouring RFC-4180 quoting.
fn split_csv_line(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        cur.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                '"' => return Err(err(line_no, "unexpected quote inside bare field")),
                ',' => fields.push(std::mem::take(&mut cur)),
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err(err(line_no, "unterminated quoted field"));
    }
    fields.push(cur);
    Ok(fields)
}

/// Quotes a field if needed.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn parse_month(s: &str, line: usize) -> Result<Month, CsvError> {
    let (y, m) = s
        .split_once('-')
        .ok_or_else(|| err(line, format!("month {s:?} is not YYYY-MM")))?;
    let year: i32 = y
        .parse()
        .map_err(|_| err(line, format!("bad year in {s:?}")))?;
    let month: u32 = m
        .parse()
        .map_err(|_| err(line, format!("bad month in {s:?}")))?;
    if !(1..=12).contains(&month) {
        return Err(err(line, format!("month {month} out of range in {s:?}")));
    }
    Ok(Month::from_ym(year, month))
}

/// Serializes the corpus into `(companies_csv, events_csv)`.
pub fn to_csv(corpus: &Corpus) -> (String, String) {
    let mut companies = String::from("duns,name,sic2,country,site_count,employees,revenue_musd\n");
    let mut events = String::from("duns,product,first_seen,last_seen,confidence\n");
    for c in corpus.companies() {
        let _ = writeln!(
            companies,
            "{},{},{},{},{},{},{}",
            c.duns,
            quote(&c.name),
            c.industry.0,
            c.country,
            c.site_count,
            c.employees,
            c.revenue_musd
        );
        for e in c.events() {
            let _ = writeln!(
                events,
                "{},{},{},{},{}",
                c.duns,
                quote(corpus.vocab().name(e.product)),
                e.first_seen,
                e.last_seen,
                e.confidence
            );
        }
    }
    (companies, events)
}

/// Parses `(companies_csv, events_csv)` into a corpus over the given
/// vocabulary. Events referencing unknown companies or products are errors;
/// companies without events are kept (empty install bases).
///
/// # Errors
/// Returns a [`CsvError`] naming the offending line.
pub fn from_csv(
    vocab: Vocabulary,
    companies_csv: &str,
    events_csv: &str,
) -> Result<Corpus, CsvError> {
    let mut companies: Vec<Company> = Vec::new();
    let mut by_duns: HashMap<u64, usize> = HashMap::new();

    let mut lines = companies_csv.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty companies file"))?;
    if !header.starts_with("duns,") {
        return Err(err(1, "companies header must start with 'duns,'"));
    }
    for (i, line) in lines {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f = split_csv_line(line, line_no)?;
        if f.len() != 7 {
            return Err(err(
                line_no,
                format!("expected 7 company fields, got {}", f.len()),
            ));
        }
        let duns: u64 = f[0].parse().map_err(|_| err(line_no, "bad duns"))?;
        let sic: u8 = f[2].parse().map_err(|_| err(line_no, "bad sic2"))?;
        let country: u16 = f[3].parse().map_err(|_| err(line_no, "bad country"))?;
        let mut c = Company::new(duns, f[1].clone(), Sic2(sic), country);
        c.site_count = f[4].parse().map_err(|_| err(line_no, "bad site_count"))?;
        c.employees = f[5].parse().map_err(|_| err(line_no, "bad employees"))?;
        c.revenue_musd = f[6].parse().map_err(|_| err(line_no, "bad revenue"))?;
        if by_duns.insert(duns, companies.len()).is_some() {
            return Err(err(line_no, format!("duplicate company duns {duns}")));
        }
        companies.push(c);
    }

    let mut lines = events_csv.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty events file"))?;
    if !header.starts_with("duns,") {
        return Err(err(1, "events header must start with 'duns,'"));
    }
    for (i, line) in lines {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f = split_csv_line(line, line_no)?;
        if f.len() != 5 {
            return Err(err(
                line_no,
                format!("expected 5 event fields, got {}", f.len()),
            ));
        }
        let duns: u64 = f[0].parse().map_err(|_| err(line_no, "bad duns"))?;
        let &idx = by_duns
            .get(&duns)
            .ok_or_else(|| err(line_no, format!("event references unknown company {duns}")))?;
        let product = vocab
            .id(&f[1])
            .ok_or_else(|| err(line_no, format!("unknown product category {:?}", f[1])))?;
        let first_seen = parse_month(&f[2], line_no)?;
        let last_seen = parse_month(&f[3], line_no)?;
        if last_seen < first_seen {
            return Err(err(line_no, "last_seen precedes first_seen"));
        }
        let confidence: f32 = f[4].parse().map_err(|_| err(line_no, "bad confidence"))?;
        if !(0.0..=1.0).contains(&confidence) {
            return Err(err(line_no, "confidence outside [0, 1]"));
        }
        companies[idx].add_event(InstallEvent {
            product,
            first_seen,
            last_seen,
            confidence,
        });
    }

    Ok(Corpus::new(vocab, companies))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::ProductId;

    fn sample_corpus() -> Corpus {
        let vocab = Vocabulary::new(["OS", "weird, name", "plain"]);
        let mut a = Company::new(100, "Acme, Inc.", Sic2(80), 3);
        a.employees = 500;
        a.revenue_musd = 12.5;
        a.add_event(InstallEvent {
            product: ProductId(0),
            first_seen: Month::from_ym(2001, 5),
            last_seen: Month::from_ym(2015, 12),
            confidence: 0.9,
        });
        a.add_event(InstallEvent::at(ProductId(1), Month::from_ym(2010, 1)));
        let b = Company::new(200, "Empty \"Co\"", Sic2(1), 7);
        Corpus::new(vocab, vec![a, b])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let corpus = sample_corpus();
        let (companies_csv, events_csv) = to_csv(&corpus);
        let back = from_csv(corpus.vocab().clone(), &companies_csv, &events_csv)
            .expect("round trip parses");
        assert_eq!(back.len(), 2);
        for (orig, parsed) in corpus.companies().iter().zip(back.companies()) {
            assert_eq!(orig.duns, parsed.duns);
            assert_eq!(orig.name, parsed.name);
            assert_eq!(orig.industry, parsed.industry);
            assert_eq!(orig.country, parsed.country);
            assert_eq!(orig.employees, parsed.employees);
            assert_eq!(orig.revenue_musd, parsed.revenue_musd);
            assert_eq!(orig.events(), parsed.events());
        }
    }

    #[test]
    fn generated_corpus_round_trips() {
        // Integration with the full domain model: names with commas/quotes
        // survive, months and confidences stay exact.
        let corpus = sample_corpus();
        let (c_csv, e_csv) = to_csv(&corpus);
        assert!(c_csv.contains("\"Acme, Inc.\""));
        assert!(c_csv.contains("\"Empty \"\"Co\"\"\""));
        assert!(e_csv.contains("\"weird, name\""));
        let back = from_csv(corpus.vocab().clone(), &c_csv, &e_csv).unwrap();
        assert_eq!(back.companies()[0].name, "Acme, Inc.");
        assert_eq!(back.companies()[1].name, "Empty \"Co\"");
    }

    #[test]
    fn unknown_product_is_an_error_with_line_number() {
        let corpus = sample_corpus();
        let (c_csv, _) = to_csv(&corpus);
        let bad_events = "duns,product,first_seen,last_seen,confidence\n\
                          100,no_such_product,2001-05,2001-05,1\n";
        let e = from_csv(corpus.vocab().clone(), &c_csv, bad_events).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("no_such_product"), "{e}");
    }

    #[test]
    fn unknown_company_and_bad_month_are_errors() {
        let corpus = sample_corpus();
        let (c_csv, _) = to_csv(&corpus);
        let unknown = "duns,product,first_seen,last_seen,confidence\n\
                       999,OS,2001-05,2001-05,1\n";
        assert!(from_csv(corpus.vocab().clone(), &c_csv, unknown)
            .unwrap_err()
            .message
            .contains("unknown company"));
        let bad_month = "duns,product,first_seen,last_seen,confidence\n\
                         100,OS,200105,2001-05,1\n";
        assert!(from_csv(corpus.vocab().clone(), &c_csv, bad_month)
            .unwrap_err()
            .message
            .contains("YYYY-MM"));
        let inverted = "duns,product,first_seen,last_seen,confidence\n\
                        100,OS,2005-05,2001-05,1\n";
        assert!(from_csv(corpus.vocab().clone(), &c_csv, inverted)
            .unwrap_err()
            .message
            .contains("precedes"));
    }

    #[test]
    fn duplicate_duns_rejected() {
        let corpus = sample_corpus();
        let (mut c_csv, e_csv) = to_csv(&corpus);
        c_csv.push_str("100,dup,1,0,1,0,0\n");
        let e = from_csv(corpus.vocab().clone(), &c_csv, &e_csv).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn quoting_edge_cases_parse() {
        assert_eq!(
            split_csv_line("a,\"b,c\",\"d\"\"e\"", 1).unwrap(),
            vec!["a", "b,c", "d\"e"]
        );
        assert_eq!(split_csv_line("", 1).unwrap(), vec![""]);
        assert!(split_csv_line("\"open", 1).is_err());
        assert!(split_csv_line("ab\"cd", 1).is_err());
    }

    #[test]
    fn datagen_corpus_full_round_trip() {
        // Full pipeline with the simulator's output is exercised in the
        // integration tests; here a small direct check that blank lines are
        // tolerated.
        let corpus = sample_corpus();
        let (c_csv, e_csv) = to_csv(&corpus);
        let with_blanks = format!("{c_csv}\n\n");
        let back = from_csv(corpus.vocab().clone(), &with_blanks, &e_csv).unwrap();
        assert_eq!(back.len(), 2);
    }
}
