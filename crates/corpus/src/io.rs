//! CSV import / export of install-base data.
//!
//! Adopters of the library will have their own (HG-style) feeds; this module
//! reads and writes a simple two-file CSV interchange format without pulling
//! in a CSV dependency:
//!
//! * **companies.csv** — `duns,name,sic2,country,site_count,employees,revenue_musd`
//! * **events.csv** — `duns,product,first_seen,last_seen,confidence` with
//!   months as `YYYY-MM` and products by category name.
//!
//! Fields containing commas or quotes are quoted with doubled inner quotes
//! (RFC-4180 style); the parser accepts both quoted and bare fields.

use crate::company::{Company, InstallEvent, Sic2};
use crate::corpus::Corpus;
use crate::time::Month;
use crate::vocab::Vocabulary;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors raised while parsing CSV install-base data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number of the offending record (0 for structural
    /// problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError {
        line,
        message: message.into(),
    }
}

/// Splits one CSV line into fields, honouring RFC-4180 quoting.
fn split_csv_line(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        cur.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                '"' => return Err(err(line_no, "unexpected quote inside bare field")),
                ',' => fields.push(std::mem::take(&mut cur)),
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err(err(line_no, "unterminated quoted field"));
    }
    fields.push(cur);
    Ok(fields)
}

/// Quotes a field if needed.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn parse_month(s: &str, line: usize) -> Result<Month, CsvError> {
    let (y, m) = s
        .split_once('-')
        .ok_or_else(|| err(line, format!("month {s:?} is not YYYY-MM")))?;
    let year: i32 = y
        .parse()
        .map_err(|_| err(line, format!("bad year in {s:?}")))?;
    let month: u32 = m
        .parse()
        .map_err(|_| err(line, format!("bad month in {s:?}")))?;
    if !(1..=12).contains(&month) {
        return Err(err(line, format!("month {month} out of range in {s:?}")));
    }
    Ok(Month::from_ym(year, month))
}

/// Serializes the corpus into `(companies_csv, events_csv)`.
pub fn to_csv(corpus: &Corpus) -> (String, String) {
    let mut companies = String::from("duns,name,sic2,country,site_count,employees,revenue_musd\n");
    let mut events = String::from("duns,product,first_seen,last_seen,confidence\n");
    for c in corpus.companies() {
        let _ = writeln!(
            companies,
            "{},{},{},{},{},{},{}",
            c.duns,
            quote(&c.name),
            c.industry.0,
            c.country,
            c.site_count,
            c.employees,
            c.revenue_musd
        );
        for e in c.events() {
            let _ = writeln!(
                events,
                "{},{},{},{},{}",
                c.duns,
                quote(corpus.vocab().name(e.product)),
                e.first_seen,
                e.last_seen,
                e.confidence
            );
        }
    }
    (companies, events)
}

/// Parses and validates one company row (already split off the header).
fn parse_company_row(line: &str, line_no: usize) -> Result<Company, CsvError> {
    let f = split_csv_line(line, line_no)?;
    if f.len() != 7 {
        return Err(err(
            line_no,
            format!("expected 7 company fields, got {}", f.len()),
        ));
    }
    let duns: u64 = f[0].parse().map_err(|_| err(line_no, "bad duns"))?;
    let sic: u8 = f[2].parse().map_err(|_| err(line_no, "bad sic2"))?;
    let country: u16 = f[3].parse().map_err(|_| err(line_no, "bad country"))?;
    let mut c = Company::new(duns, f[1].clone(), Sic2(sic), country);
    c.site_count = f[4].parse().map_err(|_| err(line_no, "bad site_count"))?;
    c.employees = f[5].parse().map_err(|_| err(line_no, "bad employees"))?;
    c.revenue_musd = f[6].parse().map_err(|_| err(line_no, "bad revenue"))?;
    Ok(c)
}

/// Parses and validates one event row, resolving the owning company through
/// `by_duns`. Returns the company's index and the event.
fn parse_event_row(
    line: &str,
    line_no: usize,
    vocab: &Vocabulary,
    by_duns: &HashMap<u64, usize>,
) -> Result<(usize, InstallEvent), CsvError> {
    let f = split_csv_line(line, line_no)?;
    if f.len() != 5 {
        return Err(err(
            line_no,
            format!("expected 5 event fields, got {}", f.len()),
        ));
    }
    let duns: u64 = f[0].parse().map_err(|_| err(line_no, "bad duns"))?;
    let &idx = by_duns
        .get(&duns)
        .ok_or_else(|| err(line_no, format!("event references unknown company {duns}")))?;
    let product = vocab
        .id(&f[1])
        .ok_or_else(|| err(line_no, format!("unknown product category {:?}", f[1])))?;
    let first_seen = parse_month(&f[2], line_no)?;
    let last_seen = parse_month(&f[3], line_no)?;
    if last_seen < first_seen {
        return Err(err(line_no, "last_seen precedes first_seen"));
    }
    let confidence: f32 = f[4].parse().map_err(|_| err(line_no, "bad confidence"))?;
    if !(0.0..=1.0).contains(&confidence) {
        return Err(err(line_no, "confidence outside [0, 1]"));
    }
    Ok((
        idx,
        InstallEvent {
            product,
            first_seen,
            last_seen,
            confidence,
        },
    ))
}

/// Validates a file's header line and yields its `(line_no, line)` records,
/// skipping blanks. `what` names the file in structural errors.
fn records<'a>(
    csv: &'a str,
    what: &str,
) -> Result<impl Iterator<Item = (usize, &'a str)>, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(0, format!("empty {what} file")))?;
    if !header.starts_with("duns,") {
        return Err(err(1, format!("{what} header must start with 'duns,'")));
    }
    Ok(lines
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| (i + 1, line)))
}

/// Parses `(companies_csv, events_csv)` into a corpus over the given
/// vocabulary. Events referencing unknown companies or products are errors;
/// companies without events are kept (empty install bases). The first
/// malformed row aborts the parse — see [`from_csv_lenient`] for the
/// quarantine-and-continue alternative.
///
/// # Errors
/// Returns a [`CsvError`] naming the offending line.
pub fn from_csv(
    vocab: Vocabulary,
    companies_csv: &str,
    events_csv: &str,
) -> Result<Corpus, CsvError> {
    let mut companies: Vec<Company> = Vec::new();
    let mut by_duns: HashMap<u64, usize> = HashMap::new();

    for (line_no, line) in records(companies_csv, "companies")? {
        let c = parse_company_row(line, line_no)?;
        if by_duns.insert(c.duns, companies.len()).is_some() {
            return Err(err(line_no, format!("duplicate company duns {}", c.duns)));
        }
        companies.push(c);
    }

    for (line_no, line) in records(events_csv, "events")? {
        let (idx, event) = parse_event_row(line, line_no, &vocab, &by_duns)?;
        companies[idx].add_event(event);
    }

    Ok(Corpus::new(vocab, companies))
}

/// Which of the two CSV files a quarantined row came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvFile {
    /// `companies.csv`.
    Companies,
    /// `events.csv`.
    Events,
}

impl std::fmt::Display for CsvFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CsvFile::Companies => "companies",
            CsvFile::Events => "events",
        })
    }
}

/// One malformed row set aside by [`from_csv_lenient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// The file the row came from.
    pub file: CsvFile,
    /// 1-based line number within that file.
    pub line: usize,
    /// Why the row was rejected.
    pub reason: String,
}

/// Everything [`from_csv_lenient`] set aside instead of aborting on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    rows: Vec<QuarantinedRow>,
}

impl QuarantineReport {
    /// The quarantined rows, in file order (companies before events).
    pub fn rows(&self) -> &[QuarantinedRow] {
        &self.rows
    }

    /// Number of quarantined rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when every row parsed cleanly.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One-line human summary, e.g.
    /// `quarantined 3 malformed rows (companies: 1, events: 2)`.
    pub fn summary(&self) -> String {
        let companies = self
            .rows
            .iter()
            .filter(|r| r.file == CsvFile::Companies)
            .count();
        format!(
            "quarantined {} malformed row{} (companies: {companies}, events: {})",
            self.len(),
            if self.len() == 1 { "" } else { "s" },
            self.len() - companies,
        )
    }
}

/// How tolerant [`from_csv_lenient`] is before giving up.
#[derive(Debug, Clone)]
pub struct LenientOptions {
    /// Error budget: parsing aborts once more than this many rows have been
    /// quarantined (a feed that is mostly garbage should fail loudly, not
    /// produce a near-empty corpus).
    pub max_quarantined: usize,
}

impl Default for LenientOptions {
    fn default() -> Self {
        LenientOptions {
            max_quarantined: 100,
        }
    }
}

/// Like [`from_csv`], but quarantines malformed rows — bad fields, unknown
/// companies/products, duplicate duns, inverted date ranges, out-of-range
/// confidences — into a [`QuarantineReport`] and keeps going, up to the
/// error budget in `opts`. Structural problems (missing file content, bad
/// headers) are still hard errors: they mean the *file* is wrong, not a row.
///
/// # Errors
/// Returns a [`CsvError`] for structural problems, or when the quarantine
/// exceeds [`LenientOptions::max_quarantined`] (the error names the line
/// that blew the budget).
pub fn from_csv_lenient(
    vocab: Vocabulary,
    companies_csv: &str,
    events_csv: &str,
    opts: &LenientOptions,
) -> Result<(Corpus, QuarantineReport), CsvError> {
    let mut companies: Vec<Company> = Vec::new();
    let mut by_duns: HashMap<u64, usize> = HashMap::new();
    let mut report = QuarantineReport::default();

    let quarantine =
        |report: &mut QuarantineReport, file: CsvFile, e: CsvError| -> Result<(), CsvError> {
            report.rows.push(QuarantinedRow {
                file,
                line: e.line,
                reason: e.message,
            });
            if report.rows.len() > opts.max_quarantined {
                return Err(err(
                    e.line,
                    format!(
                        "error budget exhausted: more than {} malformed rows",
                        opts.max_quarantined
                    ),
                ));
            }
            Ok(())
        };

    for (line_no, line) in records(companies_csv, "companies")? {
        match parse_company_row(line, line_no) {
            Ok(c) => {
                if let std::collections::hash_map::Entry::Vacant(slot) = by_duns.entry(c.duns) {
                    slot.insert(companies.len());
                    companies.push(c);
                } else {
                    quarantine(
                        &mut report,
                        CsvFile::Companies,
                        err(line_no, format!("duplicate company duns {}", c.duns)),
                    )?;
                }
            }
            Err(e) => quarantine(&mut report, CsvFile::Companies, e)?,
        }
    }

    for (line_no, line) in records(events_csv, "events")? {
        match parse_event_row(line, line_no, &vocab, &by_duns) {
            Ok((idx, event)) => companies[idx].add_event(event),
            Err(e) => quarantine(&mut report, CsvFile::Events, e)?,
        }
    }

    Ok((Corpus::new(vocab, companies), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::ProductId;

    fn sample_corpus() -> Corpus {
        let vocab = Vocabulary::new(["OS", "weird, name", "plain"]);
        let mut a = Company::new(100, "Acme, Inc.", Sic2(80), 3);
        a.employees = 500;
        a.revenue_musd = 12.5;
        a.add_event(InstallEvent {
            product: ProductId(0),
            first_seen: Month::from_ym(2001, 5),
            last_seen: Month::from_ym(2015, 12),
            confidence: 0.9,
        });
        a.add_event(InstallEvent::at(ProductId(1), Month::from_ym(2010, 1)));
        let b = Company::new(200, "Empty \"Co\"", Sic2(1), 7);
        Corpus::new(vocab, vec![a, b])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let corpus = sample_corpus();
        let (companies_csv, events_csv) = to_csv(&corpus);
        let back = from_csv(corpus.vocab().clone(), &companies_csv, &events_csv)
            .expect("round trip parses");
        assert_eq!(back.len(), 2);
        for (orig, parsed) in corpus.companies().iter().zip(back.companies()) {
            assert_eq!(orig.duns, parsed.duns);
            assert_eq!(orig.name, parsed.name);
            assert_eq!(orig.industry, parsed.industry);
            assert_eq!(orig.country, parsed.country);
            assert_eq!(orig.employees, parsed.employees);
            assert_eq!(orig.revenue_musd, parsed.revenue_musd);
            assert_eq!(orig.events(), parsed.events());
        }
    }

    #[test]
    fn generated_corpus_round_trips() {
        // Integration with the full domain model: names with commas/quotes
        // survive, months and confidences stay exact.
        let corpus = sample_corpus();
        let (c_csv, e_csv) = to_csv(&corpus);
        assert!(c_csv.contains("\"Acme, Inc.\""));
        assert!(c_csv.contains("\"Empty \"\"Co\"\"\""));
        assert!(e_csv.contains("\"weird, name\""));
        let back = from_csv(corpus.vocab().clone(), &c_csv, &e_csv).unwrap();
        assert_eq!(back.companies()[0].name, "Acme, Inc.");
        assert_eq!(back.companies()[1].name, "Empty \"Co\"");
    }

    #[test]
    fn unknown_product_is_an_error_with_line_number() {
        let corpus = sample_corpus();
        let (c_csv, _) = to_csv(&corpus);
        let bad_events = "duns,product,first_seen,last_seen,confidence\n\
                          100,no_such_product,2001-05,2001-05,1\n";
        let e = from_csv(corpus.vocab().clone(), &c_csv, bad_events).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("no_such_product"), "{e}");
    }

    #[test]
    fn unknown_company_and_bad_month_are_errors() {
        let corpus = sample_corpus();
        let (c_csv, _) = to_csv(&corpus);
        let unknown = "duns,product,first_seen,last_seen,confidence\n\
                       999,OS,2001-05,2001-05,1\n";
        assert!(from_csv(corpus.vocab().clone(), &c_csv, unknown)
            .unwrap_err()
            .message
            .contains("unknown company"));
        let bad_month = "duns,product,first_seen,last_seen,confidence\n\
                         100,OS,200105,2001-05,1\n";
        assert!(from_csv(corpus.vocab().clone(), &c_csv, bad_month)
            .unwrap_err()
            .message
            .contains("YYYY-MM"));
        let inverted = "duns,product,first_seen,last_seen,confidence\n\
                        100,OS,2005-05,2001-05,1\n";
        assert!(from_csv(corpus.vocab().clone(), &c_csv, inverted)
            .unwrap_err()
            .message
            .contains("precedes"));
    }

    #[test]
    fn duplicate_duns_rejected() {
        let corpus = sample_corpus();
        let (mut c_csv, e_csv) = to_csv(&corpus);
        c_csv.push_str("100,dup,1,0,1,0,0\n");
        let e = from_csv(corpus.vocab().clone(), &c_csv, &e_csv).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn quoting_edge_cases_parse() {
        assert_eq!(
            split_csv_line("a,\"b,c\",\"d\"\"e\"", 1).unwrap(),
            vec!["a", "b,c", "d\"e"]
        );
        assert_eq!(split_csv_line("", 1).unwrap(), vec![""]);
        assert!(split_csv_line("\"open", 1).is_err());
        assert!(split_csv_line("ab\"cd", 1).is_err());
    }

    #[test]
    fn datagen_corpus_full_round_trip() {
        // Full pipeline with the simulator's output is exercised in the
        // integration tests; here a small direct check that blank lines are
        // tolerated.
        let corpus = sample_corpus();
        let (c_csv, e_csv) = to_csv(&corpus);
        let with_blanks = format!("{c_csv}\n\n");
        let back = from_csv(corpus.vocab().clone(), &with_blanks, &e_csv).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn confidence_outside_unit_interval_is_rejected_with_line_number() {
        let corpus = sample_corpus();
        let (c_csv, _) = to_csv(&corpus);
        for bad in ["1.5", "-0.1", "NaN", "inf"] {
            let events = format!(
                "duns,product,first_seen,last_seen,confidence\n100,OS,2001-05,2001-05,{bad}\n"
            );
            let e = from_csv(corpus.vocab().clone(), &c_csv, &events).unwrap_err();
            assert_eq!(e.line, 2, "confidence {bad}");
            assert!(
                e.message.contains("confidence"),
                "confidence {bad}: {}",
                e.message
            );
        }
    }

    #[test]
    fn lenient_parse_quarantines_bad_rows_and_keeps_the_rest() {
        let corpus = sample_corpus();
        let (mut c_csv, mut e_csv) = to_csv(&corpus);
        c_csv.push_str("100,dup,1,0,1,0,0\n"); // duplicate duns
        c_csv.push_str("bogus,x,1,0,1,0,0\n"); // bad duns
        e_csv.push_str("999,OS,2001-05,2001-05,1\n"); // unknown company
        e_csv.push_str("100,OS,2001-05,2001-05,7\n"); // confidence out of range
        e_csv.push_str("200,plain,2003-01,2003-06,0.5\n"); // fine

        let (back, report) = from_csv_lenient(
            corpus.vocab().clone(),
            &c_csv,
            &e_csv,
            &LenientOptions::default(),
        )
        .expect("lenient parse succeeds under budget");

        assert_eq!(back.len(), 2, "good companies survive");
        assert_eq!(back.companies()[1].events().len(), 1, "good row applied");
        assert_eq!(report.len(), 4);
        let files: Vec<CsvFile> = report.rows().iter().map(|r| r.file).collect();
        assert_eq!(
            files,
            vec![
                CsvFile::Companies,
                CsvFile::Companies,
                CsvFile::Events,
                CsvFile::Events
            ]
        );
        assert!(report.rows()[0].reason.contains("duplicate"));
        assert!(report.rows()[3].reason.contains("confidence"));
        assert_eq!(report.rows()[2].line, 4);
        assert_eq!(
            report.summary(),
            "quarantined 4 malformed rows (companies: 2, events: 2)"
        );
    }

    #[test]
    fn lenient_parse_matches_strict_on_clean_input() {
        let corpus = sample_corpus();
        let (c_csv, e_csv) = to_csv(&corpus);
        let strict = from_csv(corpus.vocab().clone(), &c_csv, &e_csv).unwrap();
        let (lenient, report) = from_csv_lenient(
            corpus.vocab().clone(),
            &c_csv,
            &e_csv,
            &LenientOptions::default(),
        )
        .unwrap();
        assert!(report.is_empty());
        assert_eq!(strict.len(), lenient.len());
        for (s, l) in strict.companies().iter().zip(lenient.companies()) {
            assert_eq!(s.duns, l.duns);
            assert_eq!(s.events(), l.events());
        }
    }

    #[test]
    fn lenient_parse_enforces_the_error_budget() {
        let corpus = sample_corpus();
        let (c_csv, mut e_csv) = to_csv(&corpus);
        for _ in 0..3 {
            e_csv.push_str("999,OS,2001-05,2001-05,1\n");
        }
        let opts = LenientOptions { max_quarantined: 2 };
        let e = from_csv_lenient(corpus.vocab().clone(), &c_csv, &e_csv, &opts).unwrap_err();
        assert!(e.message.contains("error budget"), "{e}");

        let generous = LenientOptions { max_quarantined: 3 };
        assert!(from_csv_lenient(corpus.vocab().clone(), &c_csv, &e_csv, &generous).is_ok());
    }

    #[test]
    fn lenient_parse_keeps_structural_errors_hard() {
        let corpus = sample_corpus();
        let (c_csv, e_csv) = to_csv(&corpus);
        let opts = LenientOptions::default();
        assert!(from_csv_lenient(corpus.vocab().clone(), "", &e_csv, &opts)
            .unwrap_err()
            .message
            .contains("empty companies"));
        let bad_header = "name,duns\n";
        assert!(
            from_csv_lenient(corpus.vocab().clone(), &c_csv, bad_header, &opts)
                .unwrap_err()
                .message
                .contains("header")
        );
    }
}
