//! Domain model for company IT install bases.
//!
//! This crate formalizes Section 2 of the paper:
//!
//! * a [`Vocabulary`] of `M = 38` hardware / low-level-software product
//!   categories (the category layer of the HG Data hierarchy),
//! * a [`Company`] `c_i` with its install base — a set of products
//!   `A_i ⊂ A` (Equation 1) together with first-seen timestamps, so the
//!   time-sorted sequence view `AS_i` is available too,
//! * the [`Corpus`] `C = {c_0, …, c_{N−1}}` with binary company-product
//!   vectors `𝒜_i` (Equations 2–3) and TF-IDF weighted variants,
//! * 70/10/20 train/validation/test [`split::Split`]s,
//! * [`time::Month`] arithmetic and the sliding evaluation windows `W_r`
//!   (Section 4.3), and
//! * D-U-N-S-style [`aggregate`]: per-site records rolled up into domestic
//!   company entities, mirroring the paper's data-integration step.

pub mod aggregate;
pub mod company;
pub mod corpus;
pub mod io;
pub mod sequence;
pub mod shard;
pub mod sic;
pub mod split;
pub mod tfidf;
pub mod time;
pub mod vocab;

pub use company::{Company, CompanyId, InstallEvent, Sic2};
pub use corpus::Corpus;
pub use shard::{
    CorpusSource, Manifest, MemShardSource, ShardEntry, ShardError, ShardReader, ShardStore,
    ShardWriter, SHARD_ALIGN,
};
pub use split::Split;
pub use time::{Month, SlidingWindows, TimeWindow};
pub use vocab::{ProductId, Vocabulary};
