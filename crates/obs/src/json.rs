//! Hand-rolled JSON emission helpers with a finiteness guard.
//!
//! Every JSON emitter in the workspace (the event-log sink here, the CLI
//! `--json` outputs, `hlm-bench`) must never serialize a non-finite float:
//! `serde_json` and naive `{:.6}` formatting both turn NaN/∞ into `null` or
//! invalid tokens, which silently poisons downstream tooling. [`Num`] is the
//! single choke point: debug builds assert finiteness so the offending call
//! site is caught in CI, release builds sanitize to `0.0` so emitted JSON
//! stays parseable.

use std::fmt;

/// A JSON number that is guaranteed to serialize as a finite value.
///
/// Debug builds panic on non-finite input; release builds substitute `0.0`.
/// `Display` uses Rust's shortest round-trip float formatting, which never
/// emits exponents or non-finite tokens — always valid JSON.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Num(pub f64);

impl fmt::Display for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", finite_or(self.0, 0.0))
    }
}

/// Returns `v` if finite, else `fallback`. Debug builds assert instead, so
/// non-finite values surface as panics during tests.
pub fn finite_or(v: f64, fallback: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        debug_assert!(v.is_finite(), "non-finite value at JSON boundary: {v}");
        fallback
    }
}

/// Escapes a string for inclusion inside JSON double quotes.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Validates that a JSON text contains no non-finite artifacts: the tokens
/// `NaN`, `Infinity`, `-Infinity`, or `null` (our emitters have no legal
/// nulls — a `null` means a NaN slipped through a serializer). Returns the
/// offending token on failure. Used by tests and the CI metrics-artifact
/// check.
pub fn check_finite(text: &str) -> Result<(), String> {
    for token in ["NaN", "Infinity", "null"] {
        if let Some(pos) = text.find(token) {
            let line = text[..pos].matches('\n').count() + 1;
            return Err(format!("non-finite JSON token `{token}` at line {line}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_displays_shortest_roundtrip() {
        assert_eq!(Num(0.5).to_string(), "0.5");
        assert_eq!(Num(3.0).to_string(), "3");
        assert_eq!(Num(1e-7).to_string(), "0.0000001");
        let v: f64 = 0.1 + 0.2;
        assert_eq!(Num(v).to_string().parse::<f64>().unwrap(), v);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite"))]
    fn num_sanitizes_non_finite() {
        // Release builds sanitize to 0; debug builds panic on the first call
        // (covered by the conditional should_panic above).
        assert_eq!(Num(f64::NAN).to_string(), "0");
        assert_eq!(Num(f64::INFINITY).to_string(), "0");
        assert_eq!(Num(f64::NEG_INFINITY).to_string(), "0");
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn check_finite_flags_bad_tokens() {
        assert!(check_finite("{\"a\":1.5}").is_ok());
        let err = check_finite("{\"a\":1}\n{\"b\":null}").unwrap_err();
        assert!(err.contains("null") && err.contains("line 2"), "{err}");
        assert!(check_finite("{\"a\":NaN}").is_err());
        assert!(check_finite("{\"a\":-Infinity}").is_err());
    }
}
