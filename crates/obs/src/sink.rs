//! Snapshot rendering: JSON-lines event log and Prometheus text exposition.

use crate::json::{esc, finite_or, Num};
use crate::{Snapshot, BUCKET_BOUNDS};
use std::fmt::Write as _;

impl Snapshot {
    /// Renders the JSON-lines event log. One object per line; the first line
    /// is a `meta` record carrying the schema version and record counts, so
    /// consumers can validate before parsing the rest. The schema (field
    /// names and types per record `type`) is pinned by a golden test:
    ///
    /// ```text
    /// {"type":"meta","schema":2,"spans":2,"counters":1,"gauges":1,"histograms":1,"traces":2}
    /// {"type":"span","seq":3,"path":"cli.topics/engine.train","start_ms":0.2,"duration_ms":41.7}
    /// {"type":"counter","name":"par.tasks","value":96}
    /// {"type":"gauge","name":"process.peak_rss_bytes","value":73400320}
    /// {"type":"histogram","name":"lda.gibbs.sweep_seconds","count":20,"sum":0.81,
    ///  "min":0.03,"max":0.06,"buckets":[{"le":"1e-6","n":0}, …, {"le":"+Inf","n":0}]}
    /// {"type":"trace","seq":1,"name":"lda.gibbs.log_likelihood","iteration":0,"value":-5417.3}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"schema\":{},\"spans\":{},\"counters\":{},\"gauges\":{},\"histograms\":{},\"traces\":{}}}",
            self.schema,
            self.spans.len(),
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len(),
            self.traces.len()
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"seq\":{},\"path\":\"{}\",\"start_ms\":{},\"duration_ms\":{}}}",
                s.seq,
                esc(&s.path),
                Num(s.start_ms),
                Num(s.duration_ms)
            );
        }
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                esc(name)
            );
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                esc(name),
                Num(*v)
            );
        }
        for (name, h) in &self.histograms {
            let mut buckets = String::new();
            for (i, n) in h.buckets.iter().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                let _ = write!(buckets, "{{\"le\":\"{}\",\"n\":{n}}}", bound_label(i));
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{buckets}]}}",
                esc(name),
                h.count,
                Num(h.sum),
                Num(h.min),
                Num(h.max)
            );
        }
        for t in &self.traces {
            let _ = writeln!(
                out,
                "{{\"type\":\"trace\",\"seq\":{},\"name\":\"{}\",\"iteration\":{},\"value\":{}}}",
                t.seq,
                esc(&t.name),
                t.iteration,
                Num(t.value)
            );
        }
        out
    }

    /// Renders a Prometheus text-format snapshot: counters and histograms
    /// (with cumulative `le` buckets, `_sum`, `_count`), plus spans and
    /// traces flattened to labeled gauges. Metric names are sanitized
    /// (`.`/`/` → `_`) and prefixed `hlm_`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = prom_name(name);
            let _ = writeln!(out, "# TYPE {m} counter");
            let _ = writeln!(out, "{m} {v}");
        }
        for (name, v) in &self.gauges {
            let m = prom_name(name);
            let _ = writeln!(out, "# TYPE {m} gauge");
            let _ = writeln!(out, "{m} {}", Num(*v));
        }
        for (name, h) in &self.histograms {
            let m = prom_name(name);
            let _ = writeln!(out, "# TYPE {m} histogram");
            let mut cum = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cum += n;
                let _ = writeln!(out, "{m}_bucket{{le=\"{}\"}} {cum}", bound_label(i));
            }
            let _ = writeln!(out, "{m}_sum {}", Num(h.sum));
            let _ = writeln!(out, "{m}_count {}", h.count);
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "# TYPE hlm_span_duration_ms gauge");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "hlm_span_duration_ms{{path=\"{}\",seq=\"{}\"}} {}",
                    s.path,
                    s.seq,
                    Num(s.duration_ms)
                );
            }
        }
        if !self.traces.is_empty() {
            let _ = writeln!(out, "# TYPE hlm_trace_value gauge");
            for t in &self.traces {
                let _ = writeln!(
                    out,
                    "hlm_trace_value{{name=\"{}\",iteration=\"{}\"}} {}",
                    prom_name(&t.name),
                    t.iteration,
                    Num(t.value)
                );
            }
        }
        out
    }
}

/// The `le` label for bucket `i`: the bound in exponent notation, or `+Inf`
/// for the overflow bucket.
fn bound_label(i: usize) -> String {
    match BUCKET_BOUNDS.get(i) {
        Some(b) => format!("{:e}", finite_or(*b, 0.0)),
        None => "+Inf".to_string(),
    }
}

/// Sanitizes a dotted/slashed metric name into a Prometheus identifier.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("hlm_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::json::check_finite;
    use crate::Recorder;

    fn sample() -> crate::Snapshot {
        let rec = Recorder::enabled();
        rec.add("par.tasks", 96);
        rec.set_gauge("process.peak_rss_bytes", 73400320.0);
        rec.observe("sweep.seconds", 0.02);
        rec.observe("sweep.seconds", 3.5);
        rec.trace("lda.gibbs.log_likelihood", 0, -5417.25);
        drop(rec.span("cli.stats"));
        rec.snapshot()
    }

    #[test]
    fn jsonl_is_finite_and_line_structured() {
        let text = sample().to_jsonl();
        check_finite(&text).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + span + counter + gauge + histogram + trace
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("{\"type\":\"meta\",\"schema\":2,"));
        assert!(lines[0].contains("\"gauges\":1"));
        assert!(text.contains(
            "{\"type\":\"gauge\",\"name\":\"process.peak_rss_bytes\",\"value\":73400320}"
        ));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE hlm_par_tasks counter\nhlm_par_tasks 96\n"));
        assert!(text.contains(
            "# TYPE hlm_process_peak_rss_bytes gauge\nhlm_process_peak_rss_bytes 73400320\n"
        ));
        // 0.02 lands in le=1e-1; 3.5 in le=1e1; +Inf must equal the count.
        assert!(text.contains("hlm_sweep_seconds_bucket{le=\"1e-1\"} 1"));
        assert!(text.contains("hlm_sweep_seconds_bucket{le=\"1e1\"} 2"));
        assert!(text.contains("hlm_sweep_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hlm_sweep_seconds_count 2"));
        assert!(text.contains(
            "hlm_trace_value{name=\"hlm_lda_gibbs_log_likelihood\",iteration=\"0\"} -5417.25"
        ));
    }
}
