//! Structured observability for the hidden-layer-models workspace.
//!
//! Everything here is std-only and allocation-light: a cheap [`Recorder`]
//! handle (a no-op unless explicitly enabled) behind which live
//!
//! * **hierarchical spans** — wall-clock timed scopes with `/`-separated
//!   paths (`engine.train/lda.gibbs.sweep`), recorded on drop;
//! * **monotonic counters** — `u64` totals keyed by dotted names;
//! * **fixed-bucket histograms** — one shared log-scale bucket layout
//!   ([`BUCKET_BOUNDS`]) so snapshots from different runs line up;
//! * **traces** — per-iteration scalar series (log-likelihood, NLL) for
//!   convergence plots.
//!
//! Two sinks render a [`Snapshot`]: a JSON-lines event log with a stable,
//! golden-tested schema ([`Snapshot::to_jsonl`]) and a Prometheus-style text
//! snapshot ([`Snapshot::to_prometheus`]).
//!
//! # Determinism contract
//!
//! The recorder composes with `hlm-par`'s determinism guarantee: metrics are
//! *read-only observers* of the computation — nothing downstream ever
//! branches on a recorded value — so enabling observability cannot change
//! model outputs. Parallel hot loops use [`LocalMetrics`]: each fixed chunk
//! accumulates into its own local table and the caller merges them **in
//! chunk order** via [`Recorder::absorb`], so counter and bucket totals are
//! identical at any thread count. (Wall-clock figures — span durations,
//! per-worker busy time — naturally vary run to run; integer totals do
//! not.)
//!
//! Hot paths obtain the process-wide handle via [`global`]; it is a no-op
//! until [`install`] replaces it (the CLI does this for `--metrics`).

pub mod json;
mod sink;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Version tag of the JSON-lines event-log schema. Bump only with the
/// golden-schema test. (v2 added gauges.)
pub const SCHEMA_VERSION: u32 = 2;

/// Upper bounds (inclusive) of the shared fixed histogram buckets, in the
/// metric's natural unit (seconds for timings, bytes for sizes, …). One
/// log-scale layout for every histogram keeps snapshots comparable across
/// runs and metrics; values above the last bound land in an overflow
/// bucket.
pub const BUCKET_BOUNDS: [f64; 13] = [
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6,
];

/// Counter incremented (instead of recording) when a non-finite value is
/// handed to [`Recorder::observe`] / [`Recorder::trace`] in release builds;
/// debug builds panic so the offending call site is found.
pub const NON_FINITE_DROPPED: &str = "obs.non_finite_dropped";

/// A fixed-bucket histogram: cumulative-free per-bucket counts plus
/// count/sum/min/max. Bucket `i` holds values `v <= BUCKET_BOUNDS[i]` (and
/// greater than the previous bound); the final slot is the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts; the last entry is the overflow bucket.
    pub buckets: [u64; BUCKET_BOUNDS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (0 until the first observation).
    pub min: f64,
    /// Largest observed value (0 until the first observation).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }
}

impl Histogram {
    /// Records one finite value. (Non-finite values are filtered before this
    /// point by [`Recorder::observe`].)
    fn record(&mut self, v: f64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Merges another histogram into this one. Bucket counts add exactly;
    /// `sum` adds in call order (callers merge in chunk order, pinning the
    /// floating-point accumulation).
    fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// One completed span: a timed scope with a hierarchical `/`-separated path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Order of completion within the recorder (stable tiebreak for logs).
    pub seq: u64,
    /// Hierarchical path, e.g. `cli.topics/engine.train`.
    pub path: String,
    /// Start offset in milliseconds since the recorder was created.
    pub start_ms: f64,
    /// Wall-clock duration in milliseconds.
    pub duration_ms: f64,
}

/// One point of a per-iteration scalar series (loss curves, likelihood
/// traces).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Order of recording within the recorder.
    pub seq: u64,
    /// Series name, e.g. `lda.gibbs.log_likelihood`.
    pub name: String,
    /// Iteration / sweep / epoch index within the series.
    pub iteration: u64,
    /// The observed value (always finite).
    pub value: f64,
}

#[derive(Default)]
struct State {
    seq: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<SpanRecord>,
    traces: Vec<TraceRecord>,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// A cheap, clonable handle to a metrics store — or a no-op. Every recording
/// method on a no-op recorder returns immediately without locking or
/// allocating, so instrumentation can stay in hot paths unconditionally.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder: every method is free and records nothing.
    pub const fn noop() -> Self {
        Recorder { inner: None }
    }

    /// An active recorder with an empty metrics store.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to the named monotonic counter.
    pub fn add(&self, name: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("obs state lock");
        *st.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the named gauge to `value` — a last-write-wins point-in-time
    /// level (peak RSS, queue depth), unlike the monotonic counters.
    /// Non-finite values are handled as in [`Recorder::observe`].
    pub fn set_gauge(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        if !value.is_finite() {
            debug_assert!(value.is_finite(), "non-finite gauge value for {name}");
            self.add(NON_FINITE_DROPPED, 1);
            return;
        }
        let mut st = inner.state.lock().expect("obs state lock");
        st.gauges.insert(name.to_string(), value);
    }

    /// The value of one gauge (`None` when never set or disabled).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().expect("obs state lock");
        st.gauges.get(name).copied()
    }

    /// Records one value into the named fixed-bucket histogram. Non-finite
    /// values panic in debug builds and are counted under
    /// [`NON_FINITE_DROPPED`] (not recorded) in release builds.
    pub fn observe(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        if !value.is_finite() {
            debug_assert!(value.is_finite(), "non-finite observation for {name}");
            self.add(NON_FINITE_DROPPED, 1);
            return;
        }
        let mut st = inner.state.lock().expect("obs state lock");
        st.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Appends one point to the named per-iteration series. Non-finite
    /// values are handled as in [`Recorder::observe`].
    pub fn trace(&self, name: &str, iteration: u64, value: f64) {
        let Some(inner) = &self.inner else { return };
        if !value.is_finite() {
            debug_assert!(value.is_finite(), "non-finite trace point for {name}");
            self.add(NON_FINITE_DROPPED, 1);
            return;
        }
        let mut st = inner.state.lock().expect("obs state lock");
        let seq = st.seq;
        st.seq += 1;
        st.traces.push(TraceRecord {
            seq,
            name: name.to_string(),
            iteration,
            value,
        });
    }

    /// Opens a root span. The span records its wall-clock duration when
    /// dropped; derive children with [`Span::child`] for hierarchy.
    pub fn span(&self, name: &str) -> Span {
        Span::open(self.clone(), name.to_string())
    }

    /// A detached local table for one parallel chunk: workers accumulate
    /// without touching the shared lock, and the coordinator merges the
    /// locals **in chunk order** with [`Recorder::absorb`]. Mirrors the
    /// recorder's enabled state, so disabled runs pay nothing.
    pub fn local(&self) -> LocalMetrics {
        LocalMetrics {
            enabled: self.is_enabled(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Merges a chunk-local table into the shared store. Call in chunk order
    /// so histogram sums accumulate along one canonical order.
    pub fn absorb(&self, local: LocalMetrics) {
        let Some(inner) = &self.inner else { return };
        if !local.enabled || (local.counters.is_empty() && local.histograms.is_empty()) {
            return;
        }
        let mut st = inner.state.lock().expect("obs state lock");
        for (name, n) in local.counters {
            *st.counters.entry(name).or_insert(0) += n;
        }
        for (name, h) in local.histograms {
            st.histograms.entry(name).or_default().merge(&h);
        }
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let st = inner.state.lock().expect("obs state lock");
        Snapshot {
            schema: SCHEMA_VERSION,
            counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: st
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            spans: st.spans.clone(),
            traces: st.traces.clone(),
        }
    }

    /// The value of one counter (0 when absent or disabled). Convenience for
    /// tests and summary lines.
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let st = inner.state.lock().expect("obs state lock");
        st.counters.get(name).copied().unwrap_or(0)
    }

    fn finish_span(&self, path: &str, start_ms: f64, duration_ms: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("obs state lock");
        let seq = st.seq;
        st.seq += 1;
        st.spans.push(SpanRecord {
            seq,
            path: path.to_string(),
            start_ms,
            duration_ms,
        });
    }
}

/// An open timed scope. Records a [`SpanRecord`] when dropped; children
/// created via [`Span::child`] extend the path with `/`.
pub struct Span {
    rec: Recorder,
    path: String,
    started: Option<(Instant, f64)>,
}

impl Span {
    fn open(rec: Recorder, path: String) -> Self {
        let started = rec
            .inner
            .as_ref()
            .map(|inner| (Instant::now(), inner.epoch.elapsed().as_secs_f64() * 1e3));
        Span { rec, path, started }
    }

    /// Opens a child span (`parent_path/name`).
    pub fn child(&self, name: &str) -> Span {
        Span::open(self.rec.clone(), format!("{}/{name}", self.path))
    }

    /// The span's hierarchical path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, start_ms)) = self.started {
            let duration_ms = start.elapsed().as_secs_f64() * 1e3;
            self.rec.finish_span(&self.path, start_ms, duration_ms);
        }
    }
}

/// A lock-free per-chunk metrics table (see [`Recorder::local`]).
#[derive(Debug, Default)]
pub struct LocalMetrics {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl LocalMetrics {
    /// Whether the parent recorder records (skip measurement work when not).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Records one value into the named histogram (non-finite values are
    /// dropped, as in [`Recorder::observe`]).
    pub fn observe(&mut self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        if !value.is_finite() {
            debug_assert!(value.is_finite(), "non-finite observation for {name}");
            self.add(NON_FINITE_DROPPED, 1);
            return;
        }
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }
}

/// A point-in-time copy of a recorder's contents, ready for rendering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Event-log schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels (last write wins), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Trace points, in recording order.
    pub traces: Vec<TraceRecord>,
}

impl Snapshot {
    /// Span count and summed duration (milliseconds) of *root* spans (paths
    /// without `/`) — children are already contained in their parents, so
    /// the root sum is total instrumented wall-clock without double
    /// counting.
    pub fn span_totals(&self) -> (usize, f64) {
        // Explicit +0.0 seed: the empty float `sum()` is -0.0, which would
        // leak a "-0.0ms" into the summary line.
        let root_ms: f64 = self
            .spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .map(|s| s.duration_ms)
            .fold(0.0, |a, b| a + b);
        (self.spans.len(), root_ms)
    }
}

/// Gauge name under which the CLI and bench record [`peak_rss_bytes`].
pub const PEAK_RSS_GAUGE: &str = "process.peak_rss_bytes";

/// Canonical metric names shared by the serving stack (`hlm-serve`, the CLI
/// `serve` command, the load generator) and its dashboards. Keeping the
/// strings here — next to the sinks that render them — means a renamed
/// metric breaks one constant, not N scattered literals.
pub mod names {
    /// Gauge: requests currently waiting in the admission queue. Updated on
    /// every enqueue/dequeue, so the last snapshot value is the depth at
    /// snapshot time.
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Counter: requests rejected with 503 because the admission queue was
    /// full (explicit load shedding, never unbounded queueing).
    pub const SERVE_SHED: &str = "serve.shed";
    /// Counter: admitted requests dropped with 504 because their deadline
    /// expired before (or while) a worker could answer them.
    pub const SERVE_DEADLINE_EXCEEDED: &str = "serve.deadline_exceeded";
    /// Counter: successful hot model swaps (candidate passed its canary).
    pub const SERVE_HOT_SWAP: &str = "serve.hot_swap";
    /// Counter: rejected hot-swap candidates — the canary probe failed and
    /// the server kept serving the previous model.
    pub const SERVE_ROLLBACK: &str = "serve.rollback";
    /// Counter: `latest_good` checkpoint reads that *errored* (not "no
    /// checkpoint found" — a real IO/listing failure). These used to be
    /// silently swallowed on the engine's divergence-rollback path.
    pub const ENGINE_LATEST_GOOD_ERRORS: &str = "engine.latest_good_errors";
    /// Counter: stream events applied by the replay driver (acquisitions,
    /// company arrivals, product launches).
    pub const REPLAY_EVENTS: &str = "replay.events";
    /// Counter: drift checks run by the replay driver (valid reports only —
    /// windows with too little data to test are not counted).
    pub const REPLAY_DRIFT_CHECKS: &str = "replay.drift_checks";
    /// Counter: retrains the replay driver started (drift-triggered or
    /// periodic, per its policy).
    pub const REPLAY_RETRAINS: &str = "replay.retrains";
    /// Counter: serving-model swaps completed by the replay driver (via
    /// `POST /admin/swap` when a server is attached, in-process otherwise).
    pub const REPLAY_SWAPS: &str = "replay.swaps";
}

/// The process's high-water-mark resident set size in bytes, read from
/// `VmHWM` in `/proc/self/status`. Returns `None` on platforms without
/// procfs or if the field is missing — callers treat that as "unknown", not
/// zero.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            // Format: "VmHWM:     123456 kB"
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

static GLOBAL: RwLock<Recorder> = RwLock::new(Recorder::noop());

/// Installs the process-wide recorder returned by [`global`]. Hot paths pick
/// it up on their next call; installing [`Recorder::noop`] turns recording
/// back off.
pub fn install(recorder: Recorder) {
    *GLOBAL.write().expect("obs global lock") = recorder;
}

/// The process-wide recorder (a no-op until [`install`] is called). Cloning
/// is one `Option<Arc>` clone — cheap enough for per-sweep use.
pub fn global() -> Recorder {
    GLOBAL.read().expect("obs global lock").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_records_nothing() {
        let rec = Recorder::noop();
        assert!(!rec.is_enabled());
        rec.add("a", 3);
        rec.observe("h", 1.0);
        rec.trace("t", 0, 1.0);
        drop(rec.span("s"));
        let snap = rec.snapshot();
        assert_eq!(snap, Snapshot::default());
        assert_eq!(rec.counter("a"), 0);
    }

    #[test]
    fn counters_accumulate() {
        let rec = Recorder::enabled();
        rec.add("x.y", 2);
        rec.add("x.y", 3);
        rec.add("z", 1);
        assert_eq!(rec.counter("x.y"), 5);
        let snap = rec.snapshot();
        assert_eq!(
            snap.counters,
            vec![("x.y".to_string(), 5), ("z".to_string(), 1)]
        );
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let rec = Recorder::enabled();
        for v in [5e-7, 2e-6, 0.5, 2e7] {
            rec.observe("h", v);
        }
        let snap = rec.snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "h");
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 1); // 5e-7 <= 1e-6
        assert_eq!(h.buckets[1], 1); // 2e-6 <= 1e-5
        assert_eq!(h.buckets[6], 1); // 0.5 <= 1.0
        assert_eq!(h.buckets[BUCKET_BOUNDS.len()], 1); // overflow
        assert_eq!(h.min, 5e-7);
        assert_eq!(h.max, 2e7);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite"))]
    fn non_finite_observation_is_dropped_and_counted() {
        let rec = Recorder::enabled();
        rec.observe("h", f64::NAN);
        // Release builds reach here: the value is dropped, not recorded.
        let snap = rec.snapshot();
        assert!(snap.histograms.is_empty());
        assert_eq!(rec.counter(NON_FINITE_DROPPED), 1);
    }

    #[test]
    fn spans_nest_by_path_and_record_on_drop() {
        let rec = Recorder::enabled();
        {
            let root = rec.span("outer");
            let _child = root.child("inner");
            assert_eq!(root.path(), "outer");
        }
        let snap = rec.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        // The child drops first.
        assert_eq!(paths, vec!["outer/inner", "outer"]);
        assert!(snap.spans.iter().all(|s| s.duration_ms >= 0.0));
        let (n, total) = snap.span_totals();
        assert_eq!(n, 2);
        // Only the root contributes to the total.
        assert!((total - snap.spans[1].duration_ms).abs() < 1e-12);
    }

    #[test]
    fn traces_keep_order_and_iteration() {
        let rec = Recorder::enabled();
        rec.trace("ll", 0, -10.0);
        rec.trace("ll", 1, -9.0);
        let snap = rec.snapshot();
        assert_eq!(snap.traces.len(), 2);
        assert_eq!(snap.traces[1].iteration, 1);
        assert!(snap.traces[0].seq < snap.traces[1].seq);
    }

    #[test]
    fn local_metrics_merge_exactly() {
        let rec = Recorder::enabled();
        // Simulate two chunks merged in chunk order.
        let mut a = rec.local();
        let mut b = rec.local();
        assert!(a.is_enabled());
        a.add("c", 2);
        b.add("c", 3);
        a.observe("h", 0.5);
        b.observe("h", 5.0);
        rec.absorb(a);
        rec.absorb(b);
        assert_eq!(rec.counter("c"), 5);
        let snap = rec.snapshot();
        let h = &snap.histograms[0].1;
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 5.0);
        // A local from a noop recorder is inert.
        let mut noop_local = Recorder::noop().local();
        noop_local.add("c", 100);
        assert_eq!(Recorder::noop().counter("c"), 0);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let rec = Recorder::enabled();
        assert_eq!(rec.gauge("rss"), None);
        rec.set_gauge("rss", 10.0);
        rec.set_gauge("rss", 7.0);
        rec.set_gauge("depth", 3.0);
        assert_eq!(rec.gauge("rss"), Some(7.0));
        let snap = rec.snapshot();
        assert_eq!(
            snap.gauges,
            vec![("depth".to_string(), 3.0), ("rss".to_string(), 7.0)]
        );
        // Disabled recorders stay inert.
        let noop = Recorder::noop();
        noop.set_gauge("rss", 1.0);
        assert_eq!(noop.gauge("rss"), None);
    }

    #[test]
    fn peak_rss_probe_reports_plausible_linux_values() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            let bytes = rss.expect("Linux exposes VmHWM in /proc/self/status");
            // A running test binary surely holds over 1 MiB and (here) under
            // 1 TiB — catches unit mix-ups (kB vs bytes) either way.
            assert!(bytes > 1 << 20, "peak RSS {bytes} implausibly small");
            assert!(bytes < 1 << 40, "peak RSS {bytes} implausibly large");
        }
    }

    #[test]
    fn serving_metric_names_surface_in_both_sinks() {
        let rec = Recorder::enabled();
        rec.set_gauge(names::SERVE_QUEUE_DEPTH, 4.0);
        rec.add(names::SERVE_SHED, 2);
        rec.add(names::SERVE_DEADLINE_EXCEEDED, 1);
        rec.add(names::SERVE_HOT_SWAP, 3);
        rec.add(names::SERVE_ROLLBACK, 1);
        rec.add(names::ENGINE_LATEST_GOOD_ERRORS, 1);
        let snap = rec.snapshot();

        let jsonl = snap.to_jsonl();
        assert!(jsonl.contains("{\"type\":\"gauge\",\"name\":\"serve.queue_depth\",\"value\":4}"));
        for counter in [
            "serve.shed",
            "serve.deadline_exceeded",
            "serve.hot_swap",
            "serve.rollback",
            "engine.latest_good_errors",
        ] {
            assert!(
                jsonl.contains(&format!("{{\"type\":\"counter\",\"name\":\"{counter}\"")),
                "{counter} missing from JSONL:\n{jsonl}"
            );
        }

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE hlm_serve_queue_depth gauge\nhlm_serve_queue_depth 4\n"));
        assert!(prom.contains("# TYPE hlm_serve_shed counter\nhlm_serve_shed 2\n"));
        assert!(prom.contains("hlm_serve_deadline_exceeded 1\n"));
        assert!(prom.contains("hlm_serve_hot_swap 3\n"));
        assert!(prom.contains("hlm_serve_rollback 1\n"));
        assert!(prom.contains("hlm_engine_latest_good_errors 1\n"));
    }

    #[test]
    fn clones_share_the_store() {
        let rec = Recorder::enabled();
        let other = rec.clone();
        other.add("shared", 1);
        assert_eq!(rec.counter("shared"), 1);
    }
}
