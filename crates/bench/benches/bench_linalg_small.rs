//! Criterion micro-benchmarks guarding the small-size fast path of the
//! linalg kernels touched by the parallel runtime work: cache-blocked
//! matmul with the transpose-B variant, the parallel cutoff, the sparsity
//! probe, and the unrolled dot/axpy.
//!
//! Everything here sits *below* the parallel-dispatch cutoff on purpose —
//! the point is that the blocking, probing and unrolling added for large
//! shapes must not cost anything at the paper's actual working sizes
//! (38-product vocabulary, 3–16 topic factors, 64×64 Cholesky inputs).

use criterion::{criterion_group, criterion_main, Criterion};
use hlm_linalg::vector::{axpy, dot};
use hlm_linalg::Matrix;
use std::hint::black_box;

fn mat(r: usize, c: usize, salt: usize) -> Matrix {
    Matrix::from_fn(r, c, |i, j| {
        ((i * 31 + j * 17 + salt) % 13) as f64 / 13.0 - 0.4
    })
}

fn bench_small_matmul(c: &mut Criterion) {
    for n in [8usize, 16, 32, 64] {
        let a = mat(n, n, 1);
        let b = mat(n, n, 2);
        c.bench_function(&format!("matmul_{n}x{n}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        c.bench_function(&format!("matmul_nt_{n}x{n}"), |bch| {
            bch.iter(|| black_box(&a).matmul_nt(black_box(&b)))
        });
    }
    // The paper's shapes: representations (n×38 by 38×k) and factor products.
    let reps = mat(1000, 38, 3);
    let proj = mat(38, 3, 4);
    c.bench_function("matmul_1000x38_by_38x3", |bch| {
        bch.iter(|| black_box(&reps).matmul(black_box(&proj)))
    });
}

fn bench_small_matvec(c: &mut Criterion) {
    for (r, k) in [(38usize, 3usize), (64, 64), (300, 38)] {
        let m = mat(r, k, 5);
        let v: Vec<f64> = (0..k).map(|i| (i % 7) as f64 / 7.0).collect();
        c.bench_function(&format!("matvec_{r}x{k}"), |bch| {
            bch.iter(|| black_box(&m).matvec(black_box(&v)))
        });
    }
}

fn bench_dot_axpy(c: &mut Criterion) {
    for n in [38usize, 300, 4096] {
        let a: Vec<f64> = (0..n).map(|i| (i % 11) as f64 / 11.0).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 3) % 13) as f64 / 13.0).collect();
        c.bench_function(&format!("dot_{n}"), |bch| {
            bch.iter(|| dot(black_box(&a), black_box(&b)))
        });
        c.bench_function(&format!("axpy_{n}"), |bch| {
            let mut y = a.clone();
            bch.iter(|| axpy(black_box(&mut y), 0.5, black_box(&b)))
        });
    }
}

criterion_group!(
    benches,
    bench_small_matmul,
    bench_small_matvec,
    bench_dot_axpy
);
criterion_main!(benches);
