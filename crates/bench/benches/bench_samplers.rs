//! Criterion micro-benchmarks of the three Gibbs token-sampler kernels —
//! dense scan, SparseLDA-style buckets, and LightLDA-style alias tables
//! with Metropolis-Hastings correction — across the topic counts where
//! `SamplerChoice::Auto` switches between them (≤16 dense, ≤64 bucket,
//! above that alias-MH).
//!
//! Each benchmark times a short fixed-sweep fit on the same synthetic
//! corpus, so the numbers compare kernels, not convergence. Like
//! `bench_linalg_small`, this is the regression guard for the kernel
//! crossover: the forced choices let CI catch a kernel that regresses at
//! a topic count `Auto` would not route to it.

use criterion::{criterion_group, criterion_main, Criterion};
use hlm_lda::{GibbsTrainer, LdaConfig, SamplerChoice, WeightedDoc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VOCAB: usize = 38;

/// A fixed 200-document corpus over the paper's 38-product vocabulary.
fn corpus() -> Vec<WeightedDoc> {
    let mut rng = StdRng::seed_from_u64(20190326);
    (0..200)
        .map(|_| {
            let len = rng.gen_range(4..16);
            (0..len).map(|_| (rng.gen_range(0..VOCAB), 1.0)).collect()
        })
        .collect()
}

fn cfg(k: usize, sampler: SamplerChoice) -> LdaConfig {
    LdaConfig {
        n_topics: k,
        vocab_size: VOCAB,
        // Short fixed schedule: enough sweeps to exercise steady-state
        // tables, few enough that one fit is a sensible criterion sample.
        n_iters: 4,
        burn_in: 2,
        sample_lag: 1,
        seed: 7,
        sampler,
        ..Default::default()
    }
}

fn bench_samplers(c: &mut Criterion) {
    let docs = corpus();
    let mut group = c.benchmark_group("gibbs_samplers");
    group.sample_size(10);
    for k in [3usize, 16, 64, 256] {
        for (name, sampler) in [
            ("dense", SamplerChoice::Dense),
            ("bucket", SamplerChoice::Bucket),
            ("alias", SamplerChoice::AliasMh),
        ] {
            group.bench_function(&format!("{name}_k{k}"), |b| {
                b.iter(|| {
                    let model = GibbsTrainer::new(cfg(k, sampler)).fit(&docs);
                    std::hint::black_box(model)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
