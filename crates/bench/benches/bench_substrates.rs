//! Criterion micro-benchmarks of the substrates: data generation,
//! aggregation, clustering, t-SNE, similarity search and the evaluation
//! harness plumbing.

use criterion::{criterion_group, criterion_main, Criterion};
use hlm_cluster::{kmeans, silhouette_score, tsne, KmeansOptions, TsneOptions};
use hlm_core::{top_k_similar, DistanceMetric};
use hlm_corpus::tfidf::TfIdf;
use hlm_datagen::GeneratorConfig;
use std::hint::black_box;

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(20);
    group.bench_function("generate_1000_companies", |b| {
        b.iter(|| hlm_datagen::generate(black_box(&GeneratorConfig::with_size_and_seed(1000, 9))))
    });
    group.finish();
}

fn bench_corpus_ops(c: &mut Criterion) {
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(2000, 9));
    let ids: Vec<_> = corpus.ids().collect();
    c.bench_function("binary_matrix_2000x38", |b| {
        b.iter(|| corpus.binary_matrix())
    });
    c.bench_function("tfidf_fit_and_transform_2000", |b| {
        b.iter(|| {
            let t = TfIdf::fit(&corpus, &ids);
            t.matrix_for(&corpus, &ids)
        })
    });
    c.bench_function("document_frequencies_2000", |b| {
        b.iter(|| corpus.document_frequencies())
    });
}

fn bench_clustering(c: &mut Criterion) {
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(600, 9));
    let ids: Vec<_> = corpus.ids().collect();
    let m = corpus.binary_matrix_for(&ids);
    c.bench_function("kmeans_k10_600x38", |b| {
        b.iter(|| kmeans(black_box(&m), &KmeansOptions::new(10)))
    });
    let res = kmeans(&m, &KmeansOptions::new(10));
    let mut group = c.benchmark_group("silhouette");
    group.sample_size(20);
    group.bench_function("silhouette_600x38", |b| {
        b.iter(|| silhouette_score(black_box(&m), &res.assignments))
    });
    group.finish();
}

fn bench_tsne(c: &mut Criterion) {
    // 38 products in 3-D topic space, the Figure-8 workload.
    let emb = hlm_linalg::Matrix::from_fn(38, 3, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
    let mut group = c.benchmark_group("tsne");
    group.sample_size(10);
    group.bench_function("tsne_38_products_300_iters", |b| {
        b.iter(|| {
            tsne(
                black_box(&emb),
                &TsneOptions {
                    n_iters: 300,
                    perplexity: 5.0,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(5000, 9));
    let ids: Vec<_> = corpus.ids().collect();
    let reps = corpus.binary_matrix_for(&ids);
    c.bench_function("top_k_similar_5000x38_cosine", |b| {
        b.iter(|| top_k_similar(black_box(&reps), 17, 10, DistanceMetric::Cosine))
    });
    c.bench_function("top_k_similar_5000x38_euclidean", |b| {
        b.iter(|| top_k_similar(black_box(&reps), 17, 10, DistanceMetric::Euclidean))
    });
}

fn bench_linalg(c: &mut Criterion) {
    use hlm_linalg::{Cholesky, Matrix};
    let n = 64;
    let base = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0);
    let mut spd = base.matmul(&base.transpose());
    for i in 0..n {
        spd.add_at(i, i, n as f64);
    }
    c.bench_function("matmul_64x64", |b| b.iter(|| base.matmul(black_box(&base))));
    c.bench_function("cholesky_64x64", |b| {
        b.iter(|| Cholesky::decompose(black_box(&spd)).expect("spd"))
    });
}

fn bench_svd_gmm_cocluster(c: &mut Criterion) {
    use hlm_cluster::{spectral_cocluster, Gmm, GmmOptions};
    use hlm_linalg::truncated_svd;
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(600, 9));
    let ids: Vec<_> = corpus.ids().collect();
    let binary = corpus.binary_matrix_for(&ids);

    c.bench_function("truncated_svd_rank3_600x38", |b| {
        b.iter(|| truncated_svd(black_box(&binary), 3, 1))
    });
    let mut group = c.benchmark_group("cocluster_gmm");
    group.sample_size(10);
    group.bench_function("spectral_cocluster_k5_600x38", |b| {
        b.iter(|| spectral_cocluster(black_box(&binary), 5, 1))
    });
    let emb = hlm_linalg::Matrix::from_fn(38, 3, |i, j| ((i * 5 + j) % 7) as f64 / 7.0);
    group.bench_function("gmm_fit_k3_38x3", |b| {
        b.iter(|| Gmm::fit(black_box(&emb), &GmmOptions::new(3)))
    });
    let gmm = Gmm::fit(&emb, &GmmOptions::new(3));
    let rows: Vec<&[f64]> = (0..10).map(|i| emb.row(i)).collect();
    group.bench_function("fisher_vector_10_products", |b| {
        b.iter(|| gmm.fisher_vector(black_box(&rows)))
    });
    group.finish();
}

fn bench_clustered_index(c: &mut Criterion) {
    use hlm_core::ClusteredIndex;
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(5000, 9));
    let ids: Vec<_> = corpus.ids().collect();
    let reps = corpus.binary_matrix_for(&ids);

    let mut group = c.benchmark_group("clustered_index");
    group.sample_size(20);
    group.bench_function("build_64_cells_5000x38", |b| {
        b.iter(|| ClusteredIndex::build(reps.clone(), 64, DistanceMetric::Cosine, 1))
    });
    group.finish();
    let index = ClusteredIndex::build(reps, 64, DistanceMetric::Cosine, 1).expect("valid cells");
    c.bench_function("ivf_query_4probes_5000x38", |b| {
        b.iter(|| index.query_row(black_box(17), 10, 4))
    });
}

criterion_group!(
    benches,
    bench_datagen,
    bench_corpus_ops,
    bench_clustering,
    bench_tsne,
    bench_similarity,
    bench_linalg,
    bench_svd_gmm_cocluster,
    bench_clustered_index
);
criterion_main!(benches);
