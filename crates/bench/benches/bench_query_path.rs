//! Criterion micro-benchmarks of the serving read-path kernels
//! (DESIGN.md §3.10): the pre-store scalar scan, the `RepStore` exact f64
//! single-query kernel, the blocked multi-query kernel, and the opt-in f32
//! kernel, at K ∈ {16, 64} over n ∈ {20k, 200k} companies.
//!
//! Threads are pinned to 1 so the numbers compare *kernels*, not
//! parallelism — the same no-parallelism-credit rule the `hlm-bench`
//! phase-6 gate uses. Blocked-kernel ids report the per-iteration time of a
//! 16-query micro-batch; divide by 16 for per-query cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hlm_core::repstore::{PreparedQuery, RepStore, StorePrecision};
use hlm_core::{top_k_similar_scalar, DistanceMetric};
use hlm_linalg::Matrix;
use std::cell::Cell;
use std::sync::Arc;

const DIMS: usize = 16;
const CENTERS: usize = 64;
const BATCH: usize = 16;

/// Clustered blobs — the representation shape IVF (and the f32 recall gate)
/// assumes; same generator family as the phase-6 harness.
fn blob_matrix(rows: usize, seed: u64) -> Matrix {
    let mut state = seed.max(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let centroids: Vec<Vec<f64>> = (0..CENTERS)
        .map(|_| (0..DIMS).map(|_| next() * 10.0).collect())
        .collect();
    let mut m = Matrix::zeros(rows, DIMS);
    for i in 0..rows {
        let c = &centroids[i % CENTERS];
        for (j, &cj) in c.iter().enumerate() {
            m.set(i, j, cj + (next() - 0.5) * 0.5);
        }
    }
    m
}

fn bench_query_path(c: &mut Criterion) {
    // Kernel comparison only: no parallelism credit.
    hlm_engine::set_threads(1);
    let metric = DistanceMetric::Cosine;
    for n in [20_000usize, 200_000] {
        let reps = Arc::new(blob_matrix(n, 20190326));
        let f64_store = RepStore::flat(Arc::clone(&reps), metric, StorePrecision::F64);
        let f32_store = RepStore::flat(Arc::clone(&reps), metric, StorePrecision::F32);
        let queries: Vec<usize> = (0..BATCH).map(|i| (i * 997) % n).collect();
        let pqs64: Vec<PreparedQuery> = queries
            .iter()
            .map(|&q| f64_store.prepare(reps.row(q)))
            .collect();
        let pqs32: Vec<PreparedQuery> = queries
            .iter()
            .map(|&q| f32_store.prepare(reps.row(q)))
            .collect();
        let excludes: Vec<Option<usize>> = queries.iter().map(|&q| Some(q)).collect();
        let mut group = c.benchmark_group(&format!("query_path_n{}k", n / 1000));
        group.sample_size(10);
        for k in [16usize, 64] {
            let turn = Cell::new(0usize);
            group.bench_function(&format!("scalar_f64_k{k}"), |b| {
                b.iter(|| {
                    let i = turn.get();
                    turn.set((i + 1) % BATCH);
                    std::hint::black_box(top_k_similar_scalar(&reps, queries[i], k, metric))
                })
            });
            let turn = Cell::new(0usize);
            group.bench_function(&format!("store_f64_k{k}"), |b| {
                b.iter(|| {
                    let i = turn.get();
                    turn.set((i + 1) % BATCH);
                    std::hint::black_box(f64_store.top_k(&pqs64[i], None, k, Some(queries[i])))
                })
            });
            group.bench_function(&format!("blocked_f64_k{k}_batch{BATCH}"), |b| {
                b.iter(|| std::hint::black_box(f64_store.top_k_batch(&pqs64, k, &excludes)))
            });
            let turn = Cell::new(0usize);
            group.bench_function(&format!("store_f32_k{k}"), |b| {
                b.iter(|| {
                    let i = turn.get();
                    turn.set((i + 1) % BATCH);
                    std::hint::black_box(f32_store.top_k(&pqs32[i], None, k, Some(queries[i])))
                })
            });
            group.bench_function(&format!("blocked_f32_k{k}_batch{BATCH}"), |b| {
                b.iter(|| std::hint::black_box(f32_store.top_k_batch(&pqs32, k, &excludes)))
            });
        }
        group.finish();
    }
    hlm_engine::set_threads(0);
}

criterion_group!(benches, bench_query_path);
criterion_main!(benches);
