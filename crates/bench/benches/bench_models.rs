//! Criterion micro-benchmarks of the model families: training throughput
//! and prediction latency on a fixed synthetic corpus.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hlm_bpmf::{BpmfConfig, Rating};
use hlm_chh::ExactChh;
use hlm_datagen::GeneratorConfig;
use hlm_lda::{GibbsTrainer, LdaConfig};
use hlm_lstm::{LstmConfig, LstmLm};
use hlm_ngram::{NgramConfig, NgramLm};
use std::hint::black_box;

type Fixture = (hlm_corpus::Corpus, Vec<Vec<usize>>, Vec<Vec<(usize, f64)>>);

fn fixture() -> Fixture {
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(500, 7));
    let ids: Vec<_> = corpus.ids().collect();
    let seqs: Vec<Vec<usize>> = ids
        .iter()
        .map(|&id| {
            corpus
                .company(id)
                .product_sequence()
                .into_iter()
                .map(|p| p.index())
                .collect()
        })
        .collect();
    let docs = hlm_core::representations::binary_docs(&corpus, &ids);
    (corpus, seqs, docs)
}

fn bench_lda(c: &mut Criterion) {
    let (_, _, docs) = fixture();
    let cfg = LdaConfig {
        n_topics: 3,
        vocab_size: 38,
        n_iters: 20,
        burn_in: 10,
        sample_lag: 2,
        seed: 1,
        alpha: None,
        beta: 0.1,
        ..Default::default()
    };
    c.bench_function("lda_gibbs_20_sweeps_500_docs", |b| {
        b.iter(|| GibbsTrainer::new(cfg.clone()).fit(black_box(&docs)))
    });
    let model = GibbsTrainer::new(cfg).fit(&docs);
    c.bench_function("lda_fold_in_theta", |b| {
        b.iter(|| model.infer_theta(black_box(&docs[0])))
    });
    c.bench_function("lda_predict_products", |b| {
        b.iter(|| model.predict_products(black_box(&docs[0])))
    });
}

fn bench_lstm(c: &mut Criterion) {
    let (_, seqs, _) = fixture();
    let seq = seqs
        .iter()
        .find(|s| s.len() >= 8)
        .expect("long sequence")
        .clone();
    for &h in &[50usize, 200] {
        let model = LstmLm::new(
            LstmConfig {
                vocab_size: 38,
                hidden_size: h,
                n_layers: 1,
                dropout: 0.2,
                ..Default::default()
            },
            3,
        );
        c.bench_function(&format!("lstm_train_sequence_h{h}"), |b| {
            b.iter_batched(
                || model.clone(),
                |mut m| {
                    let out = m.train_sequence(black_box(&seq));
                    black_box(out)
                },
                BatchSize::SmallInput,
            )
        });
        c.bench_function(&format!("lstm_predict_next_h{h}"), |b| {
            b.iter(|| model.predict_next(black_box(&seq)))
        });
    }
}

fn bench_ngram_chh(c: &mut Criterion) {
    let (_, seqs, _) = fixture();
    c.bench_function("ngram_fit_trigram_500_seqs", |b| {
        b.iter(|| NgramLm::fit(NgramConfig::trigram(38), black_box(&seqs)))
    });
    let lm = NgramLm::fit(NgramConfig::trigram(38), &seqs);
    c.bench_function("ngram_predict_next", |b| {
        b.iter(|| lm.predict_next(black_box(&seqs[0][..3.min(seqs[0].len())])))
    });
    c.bench_function("chh_fit_depth2_500_seqs", |b| {
        b.iter(|| ExactChh::fit(2, 38, black_box(&seqs)))
    });
    let chh = ExactChh::fit(2, 38, &seqs);
    c.bench_function("chh_predict_next", |b| {
        b.iter(|| chh.predict_next(black_box(&seqs[0])))
    });
}

fn bench_bpmf(c: &mut Criterion) {
    let (corpus, _, _) = fixture();
    let ids: Vec<_> = corpus.ids().take(150).collect();
    let mut ratings = Vec::new();
    for (row, &id) in ids.iter().enumerate() {
        for p in corpus.company(id).product_set() {
            ratings.push(Rating {
                row,
                col: p.index(),
                value: 1.0,
            });
        }
    }
    let cfg = BpmfConfig {
        n_iters: 10,
        burn_in: 4,
        n_factors: 8,
        ..Default::default()
    };
    let mut group = c.benchmark_group("bpmf");
    group.sample_size(10);
    group.bench_function("bpmf_gibbs_10_sweeps_150x38", |b| {
        b.iter(|| hlm_bpmf::fit(150, 38, black_box(&ratings), &cfg, Some((0.0, 1.0))))
    });
    group.finish();
}

criterion_group!(benches, bench_lda, bench_lstm, bench_ngram_chh, bench_bpmf);
criterion_main!(benches);
