//! Criterion micro-benchmarks of the three PR 5 hot paths: one collapsed
//! Gibbs sweep, one LSTM minibatch forward+backward, and one
//! `find_similar` serving query (cold scan vs. warm cache).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hlm_core::{CompanyFilter, DistanceMetric, SalesApplication, ServingCache};
use hlm_datagen::GeneratorConfig;
use hlm_lda::{GibbsTrainer, LdaConfig};
use hlm_lstm::{LstmConfig, LstmLm};
use std::hint::black_box;
use std::sync::Arc;

fn fixture() -> (Arc<hlm_corpus::Corpus>, Vec<hlm_lda::WeightedDoc>) {
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(1_000, 7));
    let ids: Vec<_> = corpus.ids().collect();
    let docs = hlm_core::representations::binary_docs(&corpus, &ids);
    (Arc::new(corpus), docs)
}

/// One collapsed Gibbs sweep over the full corpus (the allocation-free
/// inner loop of `hlm-lda`): `n_iters: 1` isolates a single sweep plus the
/// one-time arena setup.
fn bench_gibbs_sweep(c: &mut Criterion) {
    let (_, docs) = fixture();
    let cfg = LdaConfig {
        n_topics: 3,
        vocab_size: 38,
        n_iters: 1,
        burn_in: 0,
        sample_lag: 1,
        seed: 11,
        ..Default::default()
    };
    c.bench_function("gibbs_single_sweep_1000_docs", |b| {
        b.iter(|| GibbsTrainer::new(cfg.clone()).fit(black_box(&docs)))
    });
}

/// One 32-sequence minibatch of masked forward+backward passes — the
/// per-batch unit of work each pool worker runs in `hlm-lstm`'s trainer.
fn bench_lstm_minibatch(c: &mut Criterion) {
    let corpus = hlm_datagen::generate(&GeneratorConfig::with_size_and_seed(200, 3));
    let seqs: Vec<Vec<usize>> = corpus
        .ids()
        .map(|id| {
            corpus
                .company(id)
                .product_sequence()
                .into_iter()
                .map(|p| p.index())
                .collect()
        })
        .take(32)
        .collect();
    let mut model = LstmLm::new(
        LstmConfig {
            vocab_size: 38,
            hidden_size: 100,
            n_layers: 1,
            dropout: 0.2,
            ..Default::default()
        },
        5,
    );
    let masks: Vec<_> = seqs.iter().map(|s| model.draw_masks(s)).collect();
    c.bench_function("lstm_minibatch_32seqs_h100", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| {
                let mut nll = 0.0;
                for (seq, mask) in seqs.iter().zip(&masks) {
                    nll += m.train_sequence_masked(black_box(seq), mask).0;
                }
                black_box(nll)
            },
            BatchSize::LargeInput,
        )
    });
}

/// A `find_similar` serving query over LDA representations: the cold path
/// is the k-bounded exact scan, the warm path a `ServingCache` hit.
fn bench_find_similar(c: &mut Criterion) {
    let (corpus, docs) = fixture();
    let model = GibbsTrainer::new(LdaConfig {
        n_topics: 3,
        vocab_size: 38,
        n_iters: 30,
        burn_in: 15,
        sample_lag: 3,
        seed: 13,
        ..Default::default()
    })
    .fit(&docs);
    let reps = hlm_core::representations::lda_representations(&model, &docs);
    let query = corpus.ids().next().expect("non-empty corpus");
    let filter = CompanyFilter::default();

    let app = SalesApplication::new(Arc::clone(&corpus), reps.clone(), DistanceMetric::Cosine)
        .expect("rows match corpus");
    c.bench_function("find_similar_k10_1000_rows_cold", |b| {
        b.iter(|| app.find_similar(black_box(query), 10, &filter).unwrap())
    });

    let cached_app = SalesApplication::new(corpus, reps, DistanceMetric::Cosine)
        .expect("rows match corpus")
        .with_cache(Arc::new(ServingCache::default()));
    cached_app.find_similar(query, 10, &filter).unwrap();
    c.bench_function("find_similar_k10_1000_rows_warm_cache", |b| {
        b.iter(|| {
            cached_app
                .find_similar(black_box(query), 10, &filter)
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_gibbs_sweep,
    bench_lstm_minibatch,
    bench_find_similar
);
criterion_main!(benches);
