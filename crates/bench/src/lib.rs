//! Experiment harness: one module per paper table/figure, plus shared
//! scaling configuration.
//!
//! Every experiment is a library function returning rendered
//! [`hlm_eval::report::Table`]s, so the per-figure binaries and `run_all`
//! share one implementation. Scale is controlled by the `HLM_SCALE`
//! environment variable (`smoke`, `small`, `medium`, `paper`) — absolute
//! corpus sizes differ from the paper's 860k companies, but every
//! qualitative comparison is stable from `small` upward (see
//! EXPERIMENTS.md).

pub mod experiments;
pub mod scale;

pub use scale::ExpScale;

/// Prints a rendered table to stdout with surrounding blank lines.
pub fn emit(table: &hlm_eval::report::Table) {
    println!();
    println!("{}", table.render());
}
