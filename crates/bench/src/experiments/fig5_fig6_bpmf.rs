//! Figures 5 and 6: the BPMF comparator.
//!
//! Paper results: fed the binary ranking transform (owned product → rating
//! 1), BPMF's recommendation scores pile up in `[0.9, 1.0]` (Figure 5's
//! boxplot), and sweeping the recommendation-score threshold over
//! `[0.90, 0.99]` barely changes anything — essentially the full product
//! set is recommended to every company (Figure 6), so BPMF is useless on
//! this dense install-base data.

use crate::ExpScale;
use hlm_bpmf::BpmfConfig;
use hlm_core::{evaluate_bpmf, BpmfEvaluation};
use hlm_eval::report::{fmt_ci, fmt_f, Table};
use hlm_eval::stats::five_number_summary;

/// Score thresholds swept in Figure 6.
pub fn thresholds() -> Vec<f64> {
    (0..10).map(|i| 0.90 + i as f64 * 0.01).collect()
}

/// Runs the BPMF protocol at the given scale.
pub fn evaluate(scale: &ExpScale) -> BpmfEvaluation {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let cfg = BpmfConfig {
        n_factors: 8,
        n_iters: scale.bpmf_iters,
        burn_in: scale.bpmf_iters / 3,
        seed: scale.seed,
        ..Default::default()
    };
    let windows: Vec<_> = hlm_corpus::SlidingWindows::paper_evaluation().collect();
    eprintln!(
        "[fig5/6] fitting BPMF ({} companies, {} sweeps)…",
        split.test.len(),
        cfg.n_iters
    );
    evaluate_bpmf(
        &corpus,
        &split.test,
        &windows,
        &thresholds(),
        &cfg,
        scale.retrain_per_window,
    )
}

/// Runs the experiment and renders the Figure-5 boxplot summary and the
/// Figure-6 accuracy table.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let eval = evaluate(scale);

    let f = five_number_summary(&eval.scores);
    let mut fig5 = Table::new(
        format!(
            "Figure 5 — BPMF recommendation score distribution (scale: {})",
            scale.name
        ),
        &["statistic", "value"],
    );
    fig5.add_row(vec!["min".into(), fmt_f(f.min, 4)]);
    fig5.add_row(vec!["Q1".into(), fmt_f(f.q1, 4)]);
    fig5.add_row(vec!["median".into(), fmt_f(f.median, 4)]);
    fig5.add_row(vec!["Q3".into(), fmt_f(f.q3, 4)]);
    fig5.add_row(vec!["max".into(), fmt_f(f.max, 4)]);
    let high = eval.scores.iter().filter(|&&s| s >= 0.9).count();
    fig5.add_row(vec![
        "fraction of scores ≥ 0.9".into(),
        fmt_f(high as f64 / eval.scores.len() as f64, 3),
    ]);

    let mut fig6 = Table::new(
        format!(
            "Figure 6 — BPMF precision / recall / F1 vs recommendation-score threshold (scale: {})",
            scale.name
        ),
        &[
            "threshold",
            "Precision_BPMF",
            "Recall_BPMF",
            "F1_BPMF",
            "retrieved",
        ],
    );
    for p in &eval.points {
        fig6.add_row(vec![
            fmt_f(p.phi, 2),
            fmt_ci(&p.precision, 3),
            fmt_ci(&p.recall, 3),
            fmt_ci(&p.f1, 3),
            fmt_ci(&p.retrieved, 0),
        ]);
    }
    vec![fig5, fig6]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bpmf_degeneracy_reproduces() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 300;
        scale.bpmf_iters = 25;
        let eval = evaluate(&scale);

        // Figure 5: bulk of the scores near 1.
        let f = five_number_summary(&eval.scores);
        assert!(f.median > 0.85, "median {}", f.median);

        // Figure 6: flat accuracy across the low thresholds — retrieval at
        // 0.90 and 0.93 differ by less than a factor 2 (no cliff).
        let r0 = eval.points[0].retrieved.mean;
        let r3 = eval.points[3].retrieved.mean;
        assert!(r0 > 0.0);
        assert!(r3 > 0.4 * r0, "flat retrieval expected: {r0} vs {r3}");
        // Precision stays near the base rate — BPMF recommends everything.
        assert!(eval.points[0].precision.mean < 0.4);
    }
}
