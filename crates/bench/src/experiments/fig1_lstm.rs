//! Figure 1: LSTM test perplexity per product vs embedding size (= nodes
//! per layer), for 1/2/3 stacked layers.
//!
//! Paper result: best perplexity 11.6 at 1 layer × 200 nodes; deeper stacks
//! do not help at this corpus size.

use crate::ExpScale;
use hlm_corpus::Corpus;
use hlm_engine::ModelSpec;
use hlm_eval::report::{fmt_f, Table};
use hlm_lstm::{AdamOptions, LstmConfig, TrainOptions};

/// Extracts non-empty product sequences for a split subset.
pub fn sequences(corpus: &Corpus, ids: &[hlm_corpus::CompanyId]) -> Vec<Vec<usize>> {
    ids.iter()
        .filter_map(|&id| {
            let s: Vec<usize> = corpus
                .company(id)
                .product_sequence()
                .into_iter()
                .map(|p| p.index())
                .collect();
            if s.is_empty() {
                None
            } else {
                Some(s)
            }
        })
        .collect()
}

/// The engine spec for one Figure-1 grid point. `epochs: 0` yields the
/// untrained random-init baseline.
pub fn lstm_spec(
    scale: &ExpScale,
    vocab_size: usize,
    nodes: usize,
    layers: usize,
    epochs: usize,
) -> ModelSpec {
    ModelSpec::Lstm {
        config: LstmConfig {
            vocab_size,
            hidden_size: nodes,
            n_layers: layers,
            dropout: if epochs == 0 { 0.0 } else { 0.2 },
            ..Default::default()
        },
        train: TrainOptions {
            epochs,
            batch_size: 16,
            adam: AdamOptions {
                learning_rate: 5e-3,
                ..Default::default()
            },
            patience: 3,
            seed: scale.seed,
            verbose: false,
            ..Default::default()
        },
        seed: scale.seed ^ (nodes as u64) << 8 ^ layers as u64,
    }
}

/// Trains one LSTM architecture through the engine and returns its test
/// perplexity.
pub fn train_and_eval(
    scale: &ExpScale,
    vocab_size: usize,
    nodes: usize,
    layers: usize,
    train: &[Vec<usize>],
    valid: &[Vec<usize>],
    test: &[Vec<usize>],
) -> f64 {
    let spec = lstm_spec(scale, vocab_size, nodes, layers, scale.lstm_epochs);
    let model = spec.fit_sequences(train, valid).expect("valid LSTM spec");
    model.perplexity(test).expect("LSTM supports perplexity")
}

/// One grid point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct LstmPoint {
    /// Nodes per layer (= embedding size).
    pub nodes: usize,
    /// Stacked layers.
    pub layers: usize,
    /// Test perplexity.
    pub perplexity: f64,
}

/// Runs the architecture sweep.
pub fn sweep(scale: &ExpScale) -> Vec<LstmPoint> {
    let corpus = scale.corpus();
    let split = scale.split(&corpus);
    let train = sequences(&corpus, &split.train);
    let valid = sequences(&corpus, &split.valid);
    let test = sequences(&corpus, &split.test);
    let m = corpus.vocab().len();

    let mut out = Vec::new();
    for &layers in &scale.lstm_layers {
        for &nodes in &scale.lstm_nodes {
            eprintln!("[fig1] LSTM {layers} layer(s) × {nodes} nodes…");
            let ppl = train_and_eval(scale, m, nodes, layers, &train, &valid, &test);
            eprintln!("[fig1]   test perplexity {ppl:.3}");
            out.push(LstmPoint {
                nodes,
                layers,
                perplexity: ppl,
            });
        }
    }
    out
}

/// Runs the experiment and renders the Figure-1 series (one column per
/// layer count).
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let points = sweep(scale);
    let mut headers = vec!["nodes (= embedding size)".to_string()];
    for &l in &scale.lstm_layers {
        headers.push(format!(
            "perplexity ({l} layer{})",
            if l == 1 { "" } else { "s" }
        ));
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        format!(
            "Figure 1 — LSTM average perplexity per product on test data (scale: {})",
            scale.name
        ),
        &header_refs,
    );
    for &nodes in &scale.lstm_nodes {
        let mut row = vec![nodes.to_string()];
        for &layers in &scale.lstm_layers {
            let p = points
                .iter()
                .find(|p| p.nodes == nodes && p.layers == layers)
                .expect("grid point computed");
            row.push(fmt_f(p.perplexity, 3));
        }
        t.add_row(row);
    }

    let best = points
        .iter()
        .min_by(|a, b| a.perplexity.partial_cmp(&b.perplexity).expect("finite"))
        .expect("non-empty grid");
    let mut summary = Table::new(
        "Figure 1 — best architecture",
        &["layers", "nodes", "test perplexity"],
    );
    summary.add_row(vec![
        best.layers.to_string(),
        best.nodes.to_string(),
        fmt_f(best.perplexity, 3),
    ]);
    vec![t, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_lstm_beats_untrained_baseline() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 300;
        scale.lstm_epochs = 6;
        let corpus = scale.corpus();
        let split = scale.split(&corpus);
        let train = sequences(&corpus, &split.train);
        let test = sequences(&corpus, &split.test);
        let m = corpus.vocab().len();

        let untrained = lstm_spec(&scale, m, 64, 1, 0)
            .fit_sequences(&train, &[])
            .expect("valid spec")
            .perplexity(&test)
            .expect("LSTM supports perplexity");
        let trained = train_and_eval(&scale, m, 64, 1, &train, &[], &test);
        assert!(
            trained < untrained * 0.8,
            "training must help: {untrained} -> {trained}"
        );
        assert!(trained < 38.0, "beats uniform over products");
    }
}
