//! Figures 3 and 4: recommendation accuracy of LDA3, LSTM and CHH over the
//! sliding-window protocol, swept over the probability threshold φ.
//!
//! Paper results: LDA3's recall and F1 dominate for φ ≤ 0.2; LSTM and CHH
//! retrieve similar numbers of true products but CHH produces more false
//! positives; everything dies past φ ≈ 0.5; the uniform random baseline
//! retrieves everything for φ ≤ 1/38 and nothing above.

use crate::ExpScale;
use hlm_corpus::Corpus;
use hlm_engine::{LdaEstimator, ModelSpec};
use hlm_eval::report::{fmt_ci, fmt_f, Table};
use hlm_eval::{evaluate_recommender, RandomRecommender, RecEvalConfig, ThresholdPoint};
use hlm_lda::LdaConfig;
use hlm_lstm::{AdamOptions, LstmConfig, TrainOptions};

/// The evaluated method families, in figure order.
pub const METHODS: [&str; 4] = ["CHH", "LSTM", "LDA3", "random"];

/// Evaluation output per method.
pub struct MethodCurves {
    /// Method label.
    pub method: String,
    /// One point per threshold φ.
    pub points: Vec<ThresholdPoint>,
}

/// The shared protocol configuration for this experiment.
pub fn protocol(scale: &ExpScale) -> RecEvalConfig {
    RecEvalConfig {
        windows: hlm_corpus::SlidingWindows::paper_evaluation().collect(),
        thresholds: (0..=10).map(|i| i as f64 * 0.05).collect(),
        retrain_per_window: scale.retrain_per_window,
        require_history: true,
    }
}

/// Runs the three recommenders plus the random baseline.
pub fn sweep(scale: &ExpScale, corpus: &Corpus) -> Vec<MethodCurves> {
    let split = scale.split(corpus);
    let cfg = protocol(scale);
    let m = corpus.vocab().len();

    let lda = ModelSpec::Lda {
        config: LdaConfig {
            n_topics: 3,
            vocab_size: m,
            n_iters: scale.lda_iters,
            burn_in: scale.lda_iters / 2,
            sample_lag: 5,
            seed: scale.seed,
            alpha: None,
            beta: 0.1,
            ..Default::default()
        },
        estimator: LdaEstimator::Gibbs,
    };
    let lstm = ModelSpec::Lstm {
        config: LstmConfig {
            vocab_size: m,
            hidden_size: 100,
            n_layers: 1,
            dropout: 0.2,
            ..Default::default()
        },
        train: TrainOptions {
            epochs: scale.lstm_epochs,
            batch_size: 16,
            adam: AdamOptions {
                learning_rate: 3e-3,
                ..Default::default()
            },
            patience: 0,
            seed: scale.seed,
            verbose: false,
            ..Default::default()
        },
        seed: scale.seed ^ 0x157,
    };
    let chh = ModelSpec::ChhExact {
        depth: 2,
        vocab_size: m,
    };
    let random = RandomRecommender::new(m);

    let mut out = Vec::new();
    for (name, spec) in [("CHH", &chh), ("LSTM", &lstm), ("LDA3", &lda)] {
        eprintln!("[fig3/4] evaluating {name}…");
        let factory = spec.factory().expect("registry covers this family");
        let points =
            evaluate_recommender(factory.as_ref(), corpus, &split.train, &split.test, &cfg);
        out.push(MethodCurves {
            method: name.to_string(),
            points,
        });
    }
    eprintln!("[fig3/4] evaluating random…");
    let points = evaluate_recommender(&random, corpus, &split.train, &split.test, &cfg);
    out.push(MethodCurves {
        method: "random".to_string(),
        points,
    });
    out
}

/// Runs the experiment and renders the Figure-3 (recall / F1) and Figure-4
/// (counts) tables.
pub fn run(scale: &ExpScale) -> Vec<Table> {
    let corpus = scale.corpus();
    let curves = sweep(scale, &corpus);
    let thresholds: Vec<f64> = curves[0].points.iter().map(|p| p.phi).collect();

    let mut fig3 = Table::new(
        format!(
            "Figure 3 — recall and F1 (mean ± 95% CI over {} windows) vs threshold φ (scale: {})",
            protocol(scale).windows.len(),
            scale.name
        ),
        &[
            "phi",
            "Recall_CHH",
            "F1_CHH",
            "Recall_LSTM",
            "F1_LSTM",
            "Recall_LDA3",
            "F1_LDA3",
            "Recall_random",
        ],
    );
    for (i, &phi) in thresholds.iter().enumerate() {
        let get = |m: &str| -> &ThresholdPoint {
            &curves
                .iter()
                .find(|c| c.method == m)
                .expect("method present")
                .points[i]
        };
        fig3.add_row(vec![
            fmt_f(phi, 2),
            fmt_ci(&get("CHH").recall, 3),
            fmt_ci(&get("CHH").f1, 3),
            fmt_ci(&get("LSTM").recall, 3),
            fmt_ci(&get("LSTM").f1, 3),
            fmt_ci(&get("LDA3").recall, 3),
            fmt_ci(&get("LDA3").f1, 3),
            fmt_ci(&get("random").recall, 3),
        ]);
    }

    let mut fig4 = Table::new(
        format!(
            "Figure 4 — average number of retrieved / correctly retrieved / relevant products per window (scale: {})",
            scale.name
        ),
        &[
            "phi",
            "retrieved_CHH",
            "correct_CHH",
            "retrieved_LSTM",
            "correct_LSTM",
            "retrieved_LDA3",
            "correct_LDA3",
            "relevant (ground truth)",
        ],
    );
    for (i, &phi) in thresholds.iter().enumerate() {
        let get = |m: &str| -> &ThresholdPoint {
            &curves
                .iter()
                .find(|c| c.method == m)
                .expect("method present")
                .points[i]
        };
        fig4.add_row(vec![
            fmt_f(phi, 2),
            fmt_ci(&get("CHH").retrieved, 0),
            fmt_ci(&get("CHH").correct, 0),
            fmt_ci(&get("LSTM").retrieved, 0),
            fmt_ci(&get("LSTM").correct, 0),
            fmt_ci(&get("LDA3").retrieved, 0),
            fmt_ci(&get("LDA3").correct, 0),
            fmt_ci(&get("LDA3").relevant, 0),
        ]);
    }
    vec![fig3, fig4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lda_recall_dominates_at_low_thresholds() {
        let mut scale = ExpScale::smoke();
        scale.n_companies = 400;
        scale.lda_iters = 60;
        scale.lstm_epochs = 2;
        let corpus = scale.corpus();
        let curves = sweep(&scale, &corpus);
        let get = |m: &str| curves.iter().find(|c| c.method == m).expect("present");

        // φ = 0.05 and 0.10 (indices 1, 2): LDA3 recall ≥ CHH recall.
        for idx in [1usize, 2] {
            let lda = get("LDA3").points[idx].recall.mean;
            let chh = get("CHH").points[idx].recall.mean;
            assert!(
                lda >= chh * 0.9,
                "phi index {idx}: LDA recall {lda} vs CHH {chh}"
            );
        }
        // Everything retrieves nothing at φ = 0.5 except possibly CHH
        // deterministic rules; recall far below the low-threshold regime.
        let lda_hi = get("LDA3").points[10].recall.mean;
        let lda_lo = get("LDA3").points[1].recall.mean;
        assert!(lda_hi < lda_lo * 0.5, "high-threshold recall must collapse");
        // Random baseline: recall 1 at φ = 0 and 0 at φ = 0.05 (> 1/38).
        assert!((get("random").points[0].recall.mean - 1.0).abs() < 1e-9);
        assert_eq!(get("random").points[1].recall.mean, 0.0);
    }
}
